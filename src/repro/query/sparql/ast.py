"""Abstract syntax for the SPARQL fragment used in the evaluation.

The fragment covers the paper's workload queries (Section 5.2): SELECT
(optionally DISTINCT) over a basic graph pattern with FILTER expressions
and LIMIT, e.g.::

    SELECT ?e ?p WHERE { ?e a schema:ShoppingCenter ; dbp:address ?p . }
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...rdf.terms import IRI, BlankNode, Literal


@dataclass(frozen=True)
class Var:
    """A SPARQL variable, e.g. ``?e``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


#: A pattern term: a variable or a concrete RDF term.
PatternTerm = Var | IRI | BlankNode | Literal


@dataclass(frozen=True)
class TriplePattern:
    """One ``s p o`` pattern inside a basic graph pattern."""

    s: PatternTerm
    p: PatternTerm
    o: PatternTerm

    def variables(self) -> set[str]:
        """Names of the variables occurring in this pattern."""
        return {t.name for t in (self.s, self.p, self.o) if isinstance(t, Var)}

    def __str__(self) -> str:
        def term(t: PatternTerm) -> str:
            return str(t) if isinstance(t, Var) else t.n3()

        return f"{term(self.s)} {term(self.p)} {term(self.o)} ."


@dataclass(frozen=True)
class Comparison:
    """A FILTER comparison ``lhs op rhs`` (op in =, !=, <, <=, >, >=)."""

    op: str
    lhs: "Expression"
    rhs: "Expression"


@dataclass(frozen=True)
class BooleanOp:
    """``&&`` / ``||`` combination of filter expressions."""

    op: str  # "and" | "or"
    operands: tuple["Expression", ...]


@dataclass(frozen=True)
class NotOp:
    """Logical negation ``!expr``."""

    operand: "Expression"


@dataclass(frozen=True)
class IsLiteralFn:
    """``isLiteral(?v)`` builtin."""

    operand: "Expression"


@dataclass(frozen=True)
class IsIriFn:
    """``isIRI(?v)`` builtin."""

    operand: "Expression"


@dataclass(frozen=True)
class StrFn:
    """``STR(?v)`` builtin: the lexical/IRI string of a term."""

    operand: "Expression"


@dataclass(frozen=True)
class RegexFn:
    """``REGEX(?v, "pattern")`` builtin (case-sensitive)."""

    operand: "Expression"
    pattern: str


#: Filter expression nodes.
Expression = (
    Var | IRI | Literal | Comparison | BooleanOp | NotOp
    | IsLiteralFn | IsIriFn | StrFn | RegexFn
)


@dataclass(frozen=True)
class OrderKey:
    """One ORDER BY sort key."""

    var: Var
    descending: bool = False


@dataclass
class SelectQuery:
    """A parsed SELECT query.

    Attributes:
        variables: projected variables; empty means ``SELECT *``.
        patterns: the basic graph pattern.
        optionals: OPTIONAL groups (each a list of patterns, left-joined).
        unions: alternatives of one ``{ A } UNION { B }`` group (each a
            list of patterns); empty when the query has no UNION.
        filters: FILTER expressions (conjunctive).
        distinct: SELECT DISTINCT.
        order_by: ORDER BY keys (applied before LIMIT).
        limit: LIMIT value, or None.
        count: when set, the query is ``SELECT (COUNT(*) AS ?name)``.
        ask: True for ``ASK { ... }`` queries (boolean result).
    """

    variables: list[Var] = field(default_factory=list)
    patterns: list[TriplePattern] = field(default_factory=list)
    optionals: list[list[TriplePattern]] = field(default_factory=list)
    unions: list[list[TriplePattern]] = field(default_factory=list)
    filters: list[Expression] = field(default_factory=list)
    distinct: bool = False
    order_by: list[OrderKey] = field(default_factory=list)
    limit: int | None = None
    count: str | None = None
    ask: bool = False

    def all_variables(self) -> list[str]:
        """All variable names bound by the BGP (including optional
        groups), in first-use order."""
        seen: list[str] = []
        groups = [self.patterns, *self.optionals]
        for group in groups:
            for pattern in group:
                for term in (pattern.s, pattern.p, pattern.o):
                    if isinstance(term, Var) and term.name not in seen:
                        seen.append(term.name)
        return seen
