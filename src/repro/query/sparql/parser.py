"""Parser for the SPARQL SELECT fragment (see :mod:`.ast`).

Grammar (informal)::

    query    := prologue SELECT [DISTINCT] (vars | * | (COUNT(*) AS ?v))
                WHERE { block } [LIMIT n]
    prologue := (PREFIX name: <iri>)*
    block    := (triples | FILTER(expr))*
    triples  := subject pov (';' pov)* '.'
    pov      := predicate object (',' object)*
"""

from __future__ import annotations

import re

from ...errors import QueryError
from ...namespaces import RDF_TYPE, XSD
from ...rdf.namespace import PrefixMap
from ...rdf.terms import IRI, Literal
from .ast import (
    BooleanOp,
    Comparison,
    Expression,
    IsIriFn,
    IsLiteralFn,
    NotOp,
    OrderKey,
    RegexFn,
    SelectQuery,
    StrFn,
    TriplePattern,
    Var,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>\s]*>)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<double>[-+]?(?:\d+\.\d*|\.\d+|\d+)[eE][-+]?\d+)
  | (?P<decimal>[-+]?\d*\.\d+)
  | (?P<integer>[-+]?\d+)
  | (?P<dtype>\^\^)
  | (?P<langtag>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<op><=|>=|!=|=|<|>|&&|\|\||!)
  | (?P<word>[A-Za-z_][\w]*(?::[\w.%-]*)?|:[\w.%-]*)
  | (?P<punct>[{}().;,*])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "distinct", "where", "filter", "limit", "prefix", "a",
    "count", "as", "regex", "isliteral", "isiri", "str",
}


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str):
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryError(f"unexpected character {text[pos]!r} in SPARQL query")
        kind = match.lastgroup or "word"
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, match.group()))
        pos = match.end()
    tokens.append(_Token("eof", ""))
    return tokens


class SparqlParser:
    """Recursive-descent parser for the supported SELECT fragment."""

    def __init__(self, prefixes: PrefixMap | None = None):
        self.prefixes = prefixes or PrefixMap.with_defaults()
        self._tokens: list[_Token] = []
        self._index = 0

    def parse(self, text: str) -> SelectQuery:
        """Parse ``text``; raises :class:`QueryError` on invalid input."""
        self._tokens = _tokenize(text)
        self._index = 0
        query = SelectQuery()
        self._parse_prologue()
        if self._at_word("ask"):
            self._next()
            query.ask = True
            if self._at_word("where"):
                self._next()
        else:
            self._expect_word("select")
            if self._at_word("distinct"):
                self._next()
                query.distinct = True
            self._parse_projection(query)
            self._expect_word("where")
        self._expect_punct("{")
        while not self._at_punct("}"):
            if self._at_word("filter"):
                self._next()
                self._expect_punct("(")
                query.filters.append(self._parse_expression())
                self._expect_punct(")")
                if self._at_punct("."):
                    self._next()
                continue
            if self._at_punct("{"):
                # { A } UNION { B } [ UNION { C } ... ]
                if query.unions:
                    raise QueryError("only one UNION group is supported")
                alternatives = [self._parse_group_patterns()]
                while self._at_word("union"):
                    self._next()
                    alternatives.append(self._parse_group_patterns())
                if len(alternatives) < 2:
                    raise QueryError("a braced group must be part of a UNION")
                query.unions = alternatives
                if self._at_punct("."):
                    self._next()
                continue
            if self._at_word("optional"):
                self._next()
                self._expect_punct("{")
                group = SelectQuery()
                while not self._at_punct("}"):
                    self._parse_triples_block(group)
                self._expect_punct("}")
                query.optionals.append(group.patterns)
                if self._at_punct("."):
                    self._next()
                continue
            self._parse_triples_block(query)
        self._expect_punct("}")
        if self._at_word("order"):
            self._next()
            self._expect_word("by")
            while True:
                token = self._peek()
                if token.kind == "var":
                    self._next()
                    query.order_by.append(OrderKey(Var(token.text[1:])))
                elif token.kind == "word" and token.text.lower() in ("asc", "desc"):
                    descending = token.text.lower() == "desc"
                    self._next()
                    self._expect_punct("(")
                    var_token = self._next()
                    if var_token.kind != "var":
                        raise QueryError("ORDER BY ASC/DESC requires a variable")
                    self._expect_punct(")")
                    query.order_by.append(
                        OrderKey(Var(var_token.text[1:]), descending=descending)
                    )
                else:
                    break
            if not query.order_by:
                raise QueryError("ORDER BY requires at least one key")
        if self._at_word("limit"):
            self._next()
            token = self._next()
            if token.kind != "integer":
                raise QueryError("LIMIT requires an integer")
            query.limit = int(token.text)
        if not self._at("eof"):
            raise QueryError(f"trailing content: {self._peek().text!r}")
        return query

    # ------------------------------------------------------------------ #

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _at(self, kind: str) -> bool:
        return self._peek().kind == kind

    def _at_word(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "word" and token.text.lower() == word

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "punct" and token.text == text

    def _expect_word(self, word: str) -> None:
        if not self._at_word(word):
            raise QueryError(f"expected {word.upper()}, found {self._peek().text!r}")
        self._next()

    def _expect_punct(self, text: str) -> None:
        if not self._at_punct(text):
            raise QueryError(f"expected {text!r}, found {self._peek().text!r}")
        self._next()

    def _parse_group_patterns(self) -> list[TriplePattern]:
        """Parse ``{ triples... }`` into a pattern list."""
        self._expect_punct("{")
        group = SelectQuery()
        while not self._at_punct("}"):
            self._parse_triples_block(group)
        self._expect_punct("}")
        return group.patterns

    # ------------------------------------------------------------------ #

    def _parse_prologue(self) -> None:
        while self._at_word("prefix"):
            self._next()
            name_token = self._next()
            if name_token.kind != "word" or not name_token.text.endswith(":"):
                raise QueryError("PREFIX requires 'name:'")
            iri_token = self._next()
            if iri_token.kind != "iri":
                raise QueryError("PREFIX requires an <iri>")
            self.prefixes.bind(name_token.text[:-1], iri_token.text[1:-1])

    def _parse_projection(self, query: SelectQuery) -> None:
        if self._at_punct("*"):
            self._next()
            return
        if self._at_punct("("):
            # (COUNT(*) AS ?name)
            self._next()
            self._expect_word("count")
            self._expect_punct("(")
            self._expect_punct("*")
            self._expect_punct(")")
            self._expect_word("as")
            var_token = self._next()
            if var_token.kind != "var":
                raise QueryError("COUNT(*) AS requires a variable")
            self._expect_punct(")")
            query.count = var_token.text[1:]
            return
        while self._at("var"):
            query.variables.append(Var(self._next().text[1:]))
        if not query.variables:
            raise QueryError("SELECT requires variables, *, or COUNT(*)")

    def _parse_triples_block(self, query: SelectQuery) -> None:
        subject = self._parse_term(position="subject")
        while True:
            predicate = self._parse_term(position="predicate")
            while True:
                obj = self._parse_term(position="object")
                query.patterns.append(TriplePattern(subject, predicate, obj))
                if self._at_punct(","):
                    self._next()
                    continue
                break
            if self._at_punct(";"):
                self._next()
                if self._at_punct(".") or self._at_punct("}"):
                    break
                continue
            break
        if self._at_punct("."):
            self._next()

    def _parse_term(self, position: str):
        token = self._next()
        if token.kind == "var":
            return Var(token.text[1:])
        if token.kind == "iri":
            return IRI(token.text[1:-1])
        if token.kind == "word":
            lowered = token.text.lower()
            if lowered == "a" and position == "predicate":
                return IRI(RDF_TYPE)
            if ":" in token.text:
                try:
                    return IRI(self.prefixes.expand(token.text))
                except Exception as exc:
                    raise QueryError(str(exc)) from exc
            raise QueryError(f"unexpected word {token.text!r} as {position}")
        if token.kind == "string" and position == "object":
            return self._finish_literal(token)
        if token.kind == "integer" and position == "object":
            return Literal(token.text, XSD.integer)
        if token.kind in ("decimal", "double") and position == "object":
            return Literal(token.text, XSD.double)
        raise QueryError(f"invalid {position} term {token.text!r}")

    def _finish_literal(self, token: _Token) -> Literal:
        lexical = token.text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
        nxt = self._peek()
        if nxt.kind == "langtag":
            self._next()
            return Literal(lexical, language=nxt.text[1:])
        if nxt.kind == "dtype":
            self._next()
            dt_token = self._next()
            if dt_token.kind == "iri":
                return Literal(lexical, dt_token.text[1:-1])
            if dt_token.kind == "word" and ":" in dt_token.text:
                return Literal(lexical, self.prefixes.expand(dt_token.text))
            raise QueryError("expected datatype after ^^")
        return Literal(lexical)

    # ------------------------------------------------------------------ #
    # FILTER expressions (precedence: || < && < ! < comparison)
    # ------------------------------------------------------------------ #

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._peek().kind == "op" and self._peek().text == "||":
            self._next()
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("or", tuple(operands))

    def _parse_and(self) -> Expression:
        operands = [self._parse_not()]
        while self._peek().kind == "op" and self._peek().text == "&&":
            self._next()
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("and", tuple(operands))

    def _parse_not(self) -> Expression:
        if self._peek().kind == "op" and self._peek().text == "!":
            self._next()
            return NotOp(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        lhs = self._parse_primary()
        token = self._peek()
        if token.kind == "op" and token.text in ("=", "!=", "<", "<=", ">", ">="):
            self._next()
            rhs = self._parse_primary()
            return Comparison(token.text, lhs, rhs)
        return lhs

    def _parse_primary(self) -> Expression:
        token = self._next()
        if token.kind == "var":
            return Var(token.text[1:])
        if token.kind == "iri":
            return IRI(token.text[1:-1])
        if token.kind == "string":
            return self._finish_literal(token)
        if token.kind == "integer":
            return Literal(token.text, XSD.integer)
        if token.kind in ("decimal", "double"):
            return Literal(token.text, XSD.double)
        if token.kind == "word":
            lowered = token.text.lower()
            if lowered in ("isliteral", "isiri", "str", "regex"):
                self._expect_punct("(")
                operand = self._parse_expression()
                if lowered == "regex":
                    self._expect_punct(",")
                    pat_token = self._next()
                    if pat_token.kind != "string":
                        raise QueryError("REGEX requires a string pattern")
                    self._expect_punct(")")
                    return RegexFn(operand, pat_token.text[1:-1])
                self._expect_punct(")")
                if lowered == "isliteral":
                    return IsLiteralFn(operand)
                if lowered == "isiri":
                    return IsIriFn(operand)
                return StrFn(operand)
            if ":" in token.text:
                return IRI(self.prefixes.expand(token.text))
        if token.kind == "punct" and token.text == "(":
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        raise QueryError(f"invalid expression token {token.text!r}")


def parse_sparql(text: str, prefixes: PrefixMap | None = None) -> SelectQuery:
    """Parse a SPARQL SELECT query (module-level convenience)."""
    return SparqlParser(prefixes).parse(text)
