"""SPARQL subset: parser and evaluator over the RDF substrate."""

from .ast import (
    BooleanOp,
    Comparison,
    Expression,
    IsIriFn,
    IsLiteralFn,
    NotOp,
    OrderKey,
    RegexFn,
    SelectQuery,
    StrFn,
    TriplePattern,
    Var,
)
from .evaluator import SparqlEngine, evaluate
from .parser import SparqlParser, parse_sparql

__all__ = [
    "BooleanOp",
    "Comparison",
    "Expression",
    "IsIriFn",
    "IsLiteralFn",
    "NotOp",
    "OrderKey",
    "RegexFn",
    "SelectQuery",
    "SparqlEngine",
    "SparqlParser",
    "StrFn",
    "TriplePattern",
    "Var",
    "evaluate",
    "parse_sparql",
]
