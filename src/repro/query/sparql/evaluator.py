"""Evaluation of the SPARQL fragment over the indexed RDF store.

Basic graph patterns are evaluated by iterative binding extension with a
greedy join order: at each step the pattern with the most bound positions
(under the current bindings) is evaluated next, which keeps the common
``?e a :C ; :p ?v`` workload queries index-driven.
"""

from __future__ import annotations

import re
import time
from collections.abc import Iterator

from ... import obs
from ...errors import QueryError
from ...rdf.graph import Graph
from ...rdf.terms import IRI, BlankNode, Literal, Term
from .ast import (
    BooleanOp,
    Comparison,
    Expression,
    IsIriFn,
    IsLiteralFn,
    NotOp,
    RegexFn,
    SelectQuery,
    StrFn,
    TriplePattern,
    Var,
)

#: A solution mapping: variable name -> bound term.
Binding = dict[str, Term]


class _EvalStats:
    """Per-query operator tallies (flushed to obs after evaluation)."""

    __slots__ = ("matches", "selections", "selectivity")

    def __init__(self) -> None:
        #: Bindings yielded by triple-pattern matches.
        self.matches = 0
        #: Greedy join-order decisions taken.
        self.selections = 0
        #: How often the chosen pattern had 0/1/2/3 bound positions —
        #: the selectivity profile of the join order.
        self.selectivity = [0, 0, 0, 0]


def _resolve(term, binding: Binding):
    """Bound value of a pattern term under ``binding`` (None if unbound)."""
    if isinstance(term, Var):
        return binding.get(term.name)
    return term


def _pattern_selectivity(pattern: TriplePattern, binding: Binding) -> int:
    """Number of positions that are concrete under the current bindings."""
    return sum(
        1
        for term in (pattern.s, pattern.p, pattern.o)
        if _resolve(term, binding) is not None
    )


def _match_pattern(
    graph: Graph,
    pattern: TriplePattern,
    binding: Binding,
    stats: _EvalStats | None = None,
) -> Iterator[Binding]:
    s = _resolve(pattern.s, binding)
    p = _resolve(pattern.p, binding)
    o = _resolve(pattern.o, binding)
    if p is not None and not isinstance(p, IRI):
        return  # a bound predicate that is not an IRI can never match
    if s is not None and isinstance(s, Literal):
        return
    for triple in graph.triples(
        s if isinstance(s, (IRI, BlankNode)) else None,
        p,
        o,
    ):
        extended = dict(binding)
        ok = True
        for term, value in ((pattern.s, triple.s), (pattern.p, triple.p), (pattern.o, triple.o)):
            if isinstance(term, Var):
                bound = extended.get(term.name)
                if bound is None:
                    extended[term.name] = value
                elif bound != value:
                    ok = False
                    break
        if ok:
            if stats is not None:
                stats.matches += 1
            yield extended


def _evaluate_optional_group(
    graph: Graph,
    group: list[TriplePattern],
    binding: Binding,
    stats: _EvalStats | None = None,
) -> Iterator[Binding]:
    """All extensions of ``binding`` that satisfy the optional group."""

    def extend(current: Binding, remaining: list[TriplePattern]) -> Iterator[Binding]:
        if not remaining:
            yield current
            return
        best_index = max(
            range(len(remaining)),
            key=lambda i: _pattern_selectivity(remaining[i], current),
        )
        pattern = remaining[best_index]
        if stats is not None:
            stats.selections += 1
            stats.selectivity[_pattern_selectivity(pattern, current)] += 1
        rest = remaining[:best_index] + remaining[best_index + 1:]
        for extended in _match_pattern(graph, pattern, current, stats):
            yield from extend(extended, rest)

    yield from extend(binding, list(group))


def _evaluate_bgp(
    graph: Graph,
    patterns: list[TriplePattern],
    stats: _EvalStats | None = None,
) -> Iterator[Binding]:
    if not patterns:
        yield {}
        return

    def extend(binding: Binding, remaining: list[TriplePattern]) -> Iterator[Binding]:
        if not remaining:
            yield binding
            return
        best_index = max(
            range(len(remaining)),
            key=lambda i: _pattern_selectivity(remaining[i], binding),
        )
        pattern = remaining[best_index]
        if stats is not None:
            stats.selections += 1
            stats.selectivity[_pattern_selectivity(pattern, binding)] += 1
        rest = remaining[:best_index] + remaining[best_index + 1:]
        for extended in _match_pattern(graph, pattern, binding, stats):
            yield from extend(extended, rest)

    yield from extend({}, list(patterns))


# --------------------------------------------------------------------- #
# FILTER evaluation
# --------------------------------------------------------------------- #

def _effective_value(term: object) -> object:
    """The comparison value of a term: literals compare by typed value,
    IRIs/blank nodes by their string form."""
    if isinstance(term, Literal):
        return term.to_python()
    if isinstance(term, IRI):
        return term.value
    if isinstance(term, BlankNode):
        return str(term)
    return term


def _evaluate_expression(expression: Expression, binding: Binding) -> object:
    if isinstance(expression, Var):
        value = binding.get(expression.name)
        if value is None:
            raise QueryError(f"unbound variable ?{expression.name} in FILTER")
        return value
    if isinstance(expression, (IRI, Literal)):
        return expression
    if isinstance(expression, Comparison):
        lhs = _effective_value(_evaluate_expression(expression.lhs, binding))
        rhs = _effective_value(_evaluate_expression(expression.rhs, binding))
        try:
            if expression.op == "=":
                return lhs == rhs
            if expression.op == "!=":
                return lhs != rhs
            if expression.op == "<":
                return lhs < rhs
            if expression.op == "<=":
                return lhs <= rhs
            if expression.op == ">":
                return lhs > rhs
            if expression.op == ">=":
                return lhs >= rhs
        except TypeError:
            return False
        raise QueryError(f"unknown comparison {expression.op}")
    if isinstance(expression, BooleanOp):
        values = (_as_bool(_evaluate_expression(op, binding)) for op in expression.operands)
        return all(values) if expression.op == "and" else any(values)
    if isinstance(expression, NotOp):
        return not _as_bool(_evaluate_expression(expression.operand, binding))
    if isinstance(expression, IsLiteralFn):
        return isinstance(_evaluate_expression(expression.operand, binding), Literal)
    if isinstance(expression, IsIriFn):
        return isinstance(_evaluate_expression(expression.operand, binding), IRI)
    if isinstance(expression, StrFn):
        value = _evaluate_expression(expression.operand, binding)
        if isinstance(value, Literal):
            return Literal(value.lexical)
        if isinstance(value, IRI):
            return Literal(value.value)
        return Literal(str(value))
    if isinstance(expression, RegexFn):
        value = _evaluate_expression(expression.operand, binding)
        text = value.lexical if isinstance(value, Literal) else str(value)
        return re.search(expression.pattern, text) is not None
    raise QueryError(f"cannot evaluate expression {expression!r}")


def _as_bool(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, Literal):
        return bool(value.to_python())
    return bool(value)


# --------------------------------------------------------------------- #
# Query execution
# --------------------------------------------------------------------- #

def evaluate(
    graph: Graph, query: SelectQuery, planner=None, analyze: bool = False
) -> list[dict[str, Term]]:
    """Evaluate ``query`` over ``graph``; returns solution mappings.

    For ``SELECT (COUNT(*) AS ?n)`` a single row with an integer literal
    is returned under the chosen variable name.  When ``planner`` (a
    :class:`~repro.query.plan.SparqlPlanner`) is given, the basic graph
    pattern runs through its cost-based physical plan instead of the
    per-binding greedy strategy; all other constructs are unaffected.
    ``analyze`` additionally collects per-operator loop counts and wall
    times for ``EXPLAIN ANALYZE`` (small per-row overhead).
    """
    # Operator tallies are only collected under an active tracer, so the
    # per-match bookkeeping stays off the disabled-path hot loop.
    stats = _EvalStats() if obs.enabled() else None
    if planner is not None:
        planner.last_plan = None
        planner.last_explain = None
        planner.last_cache_hit = None
        planner.last_replans = []
    start = time.perf_counter()
    with obs.span("sparql.evaluate", patterns=len(query.patterns)) as span:
        rows = _evaluate(graph, query, stats, planner, analyze)
        span.set("rows", len(rows))
        if stats is not None:
            span.set("bgp_matches", stats.matches)
            span.set("join_selections", stats.selections)
            span.set("selectivity_profile", list(stats.selectivity))
        if planner is not None and planner.last_plan is not None:
            from ..plan import flush_operator_obs

            planner.last_explain = planner.last_plan.explain()
            flush_operator_obs("sparql", planner.last_explain)
            planner.feedback.record(planner.last_key, planner.last_explain)
    metrics = obs.get_metrics()
    metrics.counter(
        "repro_query_runs_total", help="query engine invocations"
    ).inc(1, lang="sparql")
    metrics.histogram(
        "repro_query_latency_seconds",
        boundaries=obs.LATENCY_BOUNDARIES,
        help="end-to-end query evaluation latency",
    ).observe(time.perf_counter() - start, lang="sparql")
    if stats is not None:
        metrics.counter(
            "repro_sparql_pattern_matches_total",
            help="bindings yielded by triple-pattern matches",
        ).inc(stats.matches)
    return rows


def _evaluate(
    graph: Graph,
    query: SelectQuery,
    stats: _EvalStats | None,
    planner=None,
    analyze: bool = False,
) -> list[dict[str, Term]]:
    solutions: list[Binding] = []
    if planner is not None and query.patterns:
        bgp = planner.execute_bgp(query.patterns, stats, analyze)
    else:
        bgp = _evaluate_bgp(graph, query.patterns, stats)
    for binding in bgp:
        extended = [binding]
        if query.unions:
            # UNION: bag-union of the alternatives' extensions.
            unioned: list[Binding] = []
            for alternative in query.unions:
                for current in extended:
                    unioned.extend(
                        _evaluate_optional_group(graph, alternative, current, stats)
                    )
            extended = unioned
        # OPTIONAL groups: left outer join — keep the original binding
        # whenever the group does not match.
        for group in query.optionals:
            next_round: list[Binding] = []
            for current in extended:
                matches = list(
                    _evaluate_optional_group(graph, group, current, stats)
                )
                next_round.extend(matches if matches else [current])
            extended = next_round
        for candidate in extended:
            try:
                ok = all(
                    _as_bool(_evaluate_expression(f, candidate))
                    for f in query.filters
                )
            except QueryError:
                ok = False  # unbound optional variable in FILTER -> error -> false
            if ok:
                solutions.append(candidate)

    if query.ask:
        from ...namespaces import XSD

        return [{
            "ask": Literal("true" if solutions else "false", XSD.boolean)
        }]
    if query.count is not None:
        from ...namespaces import XSD

        return [{query.count: Literal(str(len(solutions)), XSD.integer)}]

    projected = [v.name for v in query.variables] or query.all_variables()
    rows = [
        {name: binding[name] for name in projected if name in binding}
        for binding in solutions
    ]
    if query.distinct:
        seen: set[tuple] = set()
        unique_rows = []
        for row in rows:
            key = tuple(sorted((k, v.n3()) for k, v in row.items()))
            if key not in seen:
                seen.add(key)
                unique_rows.append(row)
        rows = unique_rows
    return _order_and_truncate(rows, query.order_by, query.limit)


def _order_and_truncate(
    rows: list[dict[str, Term]], order_by, limit: int | None
) -> list[dict[str, Term]]:
    """Apply ORDER BY fully, then LIMIT.

    Kept as the single exit point for solution modifiers so pipelined
    physical plans can never truncate before the sort is complete (the
    SPARQL algebra applies Slice after OrderBy).
    """
    for key in reversed(order_by):
        def sort_key(row, name=key.var.name):
            value = row.get(name)
            if value is None:
                return (0, "")  # unbound sorts first, as in SPARQL
            effective = _effective_value(value)
            if isinstance(effective, bool):
                return (1, ("bool", str(effective)))
            if isinstance(effective, (int, float)):
                return (1, ("num", float(effective)))
            return (1, (type(effective).__name__, effective))

        rows.sort(key=sort_key, reverse=key.descending)
    if limit is not None:
        rows = rows[:limit]
    return rows


class SparqlEngine:
    """A tiny SPARQL endpoint over a :class:`Graph`.

    Args:
        graph: the graph to query.
        planner: False disables the cost-based planner (the naive
            per-binding greedy strategy is used instead).
        force_join: ``"hash"`` / ``"nested"`` forces the planner's join
            operator choice (differential testing).
        exec_mode: ``"iterator"`` (default), ``"batched"``, or
            ``"adaptive"`` — the physical execution strategy for basic
            graph patterns (requires the planner).
        batch_size: rows per batch for the vectorized modes.

    Example:
        >>> engine = SparqlEngine(graph)
        >>> rows = engine.query('SELECT ?s WHERE { ?s a <http://x/C> . }')
    """

    def __init__(
        self,
        graph: Graph,
        planner: bool = True,
        force_join: str | None = None,
        exec_mode: str = "iterator",
        batch_size: int | None = None,
    ):
        self.graph = graph
        if planner:
            from ..plan import SparqlPlanner

            self.planner = SparqlPlanner(
                graph,
                force_join=force_join,
                exec_mode=exec_mode,
                batch_size=batch_size,
            )
        else:
            if exec_mode != "iterator":
                raise ValueError(
                    f"exec_mode {exec_mode!r} requires the planner"
                )
            self.planner = None

    def query(self, text: str) -> list[dict[str, Term]]:
        """Parse and evaluate a SELECT query."""
        from .parser import parse_sparql

        query = parse_sparql(text)
        start = time.perf_counter()
        rows = evaluate(self.graph, query, planner=self.planner)
        duration = time.perf_counter() - start
        plan = None
        cache_hit = q_error = None
        if self.planner is not None:
            from ..plan import explain_select

            last_explain, n_rows = self.planner.last_explain, len(rows)
            plan = lambda: explain_select(query, last_explain, n_rows).to_dict()
            cache_hit = self.planner.last_cache_hit
            q_error = self.planner.feedback.max_q_error(self.planner.last_key)
        obs.record_query("sparql", text, duration, len(rows), plan=plan)
        obs.record_statement(
            "sparql", text, query, duration, len(rows),
            cache_hit=cache_hit, q_error=q_error,
            result_hash=lambda: obs.sparql_result_hash(rows),
        )
        return rows

    def explain(self, text: str, fmt: str = "text", analyze: bool = False):
        """Run a query and explain its physical plan.

        Returns the rendered tree as a string (``fmt="text"``) or a
        JSON-friendly dict (``fmt="json"``); estimated cardinalities
        come from the statistics catalog, actual ones from the run.
        With ``analyze`` the physical operators also report loop counts
        and inclusive per-operator wall time.
        """
        from ..plan import explain_select, render_text
        from .parser import parse_sparql

        if self.planner is None:
            raise QueryError("EXPLAIN requires the planner to be enabled")
        if fmt not in ("text", "json"):
            raise QueryError(f"unknown explain format {fmt!r}")
        query = parse_sparql(text)
        rows = evaluate(self.graph, query, planner=self.planner, analyze=analyze)
        root = explain_select(query, self.planner.last_explain, len(rows))
        if fmt == "json":
            return root.to_dict()
        return render_text(root)

    def count(self, text: str) -> int:
        """Number of solutions of a SELECT query."""
        return len(self.query(text))

    def ask(self, text: str) -> bool:
        """Evaluate an ASK query to a boolean."""
        rows = self.query(text)
        return bool(rows and rows[0].get("ask", Literal("false")).to_python())
