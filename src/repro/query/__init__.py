"""Query substrate: SPARQL engine, Cypher engine, and the translator."""

from .cypher import CypherEngine, parse_cypher
from .sparql import SparqlEngine, parse_sparql
from .translate import SparqlToCypherTranslator, translate_sparql_to_cypher

__all__ = [
    "CypherEngine",
    "SparqlEngine",
    "SparqlToCypherTranslator",
    "parse_cypher",
    "parse_sparql",
    "translate_sparql_to_cypher",
]
