"""Automated SPARQL-to-Cypher translation for S3PG-transformed graphs.

The paper translates its benchmark queries manually and leaves an
automated translator as future work; this module implements one for the
supported SELECT/BGP/FILTER fragment, driven by the schema mapping
``F_st`` (Section 4.3 sketches exactly this: "``F_qt`` can make use of
``S_PG`` to translate Q into Q' as ``PG ⊨ S_PG``").

Translation rules (mirroring the Q22 example of Section 5.2):

* ``?e a :C``                -> label constraint ``(e:label(C))``;
* ``?e :p ?v`` (key/value)   -> ``UNWIND e.key AS v`` (a scalar unwinds to
  itself; an absent property yields no row, matching BGP semantics);
* ``?e :p ?v`` (edge)        -> ``(e)-[:rel]->(v)`` and ``?v`` projects as
  ``COALESCE(v.value, v.iri)`` — the heterogeneous-target access pattern;
* constant subjects/objects  -> ``{iri: "..."}`` / ``{value: ...}`` node
  property constraints or WHERE equalities;
* FILTER comparisons         -> WHERE comparisons over translated terms.

The translated value space follows ``tr(mu)`` of Definition 3.2: IRIs and
blank-node ids become their string representations.
"""

from __future__ import annotations

from ..errors import TranslationError
from ..core.data_transform import encode_literal_value
from ..core.mapping import SchemaMapping
from ..rdf.terms import IRI, BlankNode, Literal
from .sparql.ast import (
    BooleanOp,
    Comparison,
    Expression,
    NotOp,
    SelectQuery,
    TriplePattern,
    Var,
)
from ..namespaces import RDF_TYPE


def _cypher_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    text = str(value).replace("\\", "\\\\").replace("'", "\\'")
    return f"'{text}'"


class SparqlToCypherTranslator:
    """Translates parsed SPARQL queries into Cypher text.

    Args:
        mapping: the ``F_st`` mapping of the S3PG transformation whose
            output graph the Cypher query will run on.

    Raises:
        TranslationError: for constructs outside the supported fragment
            (variable predicates, variable classes, unsupported builtins).
    """

    def __init__(self, mapping: SchemaMapping, typed_literal_values: bool = True):
        self.mapping = mapping
        self.typed_literal_values = typed_literal_values

    def translate(self, query: SelectQuery) -> str:
        """Translate ``query``; returns Cypher text."""
        if query.unions:
            return self._translate_union(query)
        return _Translation(self.mapping, query, self.typed_literal_values).build()

    def _translate_union(self, query: SelectQuery) -> str:
        """``{A} UNION {B}`` becomes one translated part per alternative,
        combined with Cypher's UNION ALL (both have bag semantics)."""
        from copy import copy

        if query.distinct or query.order_by or query.limit is not None:
            raise TranslationError(
                "DISTINCT/ORDER BY/LIMIT over UNION are not supported"
            )
        if query.count is not None or query.ask:
            raise TranslationError("COUNT/ASK over UNION are not supported")
        parts = []
        for alternative in query.unions:
            branch = copy(query)
            branch.patterns = [*query.patterns, *alternative]
            branch.unions = []
            parts.append(
                _Translation(self.mapping, branch, self.typed_literal_values).build()
            )
        return "\nUNION ALL\n".join(parts)

    def translate_text(self, sparql_text: str) -> str:
        """Parse SPARQL text and translate it."""
        from .sparql.parser import parse_sparql

        return self.translate(parse_sparql(sparql_text))


class _Translation:
    """One translation run (collects MATCH paths, UNWINDs, WHERE, RETURN)."""

    def __init__(
        self,
        mapping: SchemaMapping,
        query: SelectQuery,
        typed_literal_values: bool = True,
    ):
        self.mapping = mapping
        self.query = query
        self.typed_literal_values = typed_literal_values
        self.subject_labels: dict[str, list[str]] = {}
        self.subject_classes: dict[str, list[str]] = {}
        self.paths: list[str] = []
        self.optional_paths: list[str] = []
        self.unwinds: list[str] = []
        self.where: list[str] = []
        # var -> how to project it: ("node", cypher_var) | ("value", cypher_var)
        #        | ("mixed", cypher_var)
        self.projections: dict[str, tuple[str, str]] = {}
        self.standalone_nodes: set[str] = set()
        self._fresh = 0

    # ------------------------------------------------------------------ #

    def build(self) -> str:
        type_patterns, other_patterns = self._split_patterns()
        for pattern in type_patterns:
            self._handle_type_pattern(pattern)
        for pattern in other_patterns:
            self._handle_property_pattern(pattern)
        for group in self.query.optionals:
            self._handle_optional_group(group)
        for var in self.subject_labels:
            if var not in self.projections:
                self.projections[var] = ("node", var)
        for filter_expr in self.query.filters:
            self.where.append(self._translate_filter(filter_expr))
        return self._render()

    def _handle_optional_group(self, group) -> None:
        """OPTIONAL groups: edge-mode properties become OPTIONAL MATCH;
        single-valued key/value properties become nullable projections."""
        for pattern in group:
            if isinstance(pattern.p, Var):
                raise TranslationError("variable predicates are not supported")
            if pattern.p.value == RDF_TYPE:
                raise TranslationError("rdf:type inside OPTIONAL is not supported")
            if not isinstance(pattern.s, Var):
                raise TranslationError("OPTIONAL requires a variable subject")
            subject_var = pattern.s.name
            self.subject_labels.setdefault(subject_var, [])
            classes = self.subject_classes.get(subject_var, [])
            prop = self.mapping.property_for(classes, pattern.p.value)
            if prop is None:
                raise TranslationError(
                    f"predicate {pattern.p.value} is not covered by the mapping"
                )
            if not isinstance(pattern.o, Var):
                raise TranslationError("OPTIONAL objects must be variables")
            value_var = pattern.o.name
            if prop.is_key_value():
                if prop.array:
                    raise TranslationError(
                        "multi-valued key/value properties inside OPTIONAL "
                        "are not supported"
                    )
                self.standalone_nodes.add(subject_var)
                self.projections.setdefault(
                    value_var, ("prop", f"{subject_var}.{prop.pg_key}")
                )
            else:
                self.optional_paths.append(
                    f"({subject_var})-[:{prop.rel_type}]->({value_var})"
                )
                self.projections.setdefault(value_var, ("mixed", value_var))

    def _split_patterns(self) -> tuple[list[TriplePattern], list[TriplePattern]]:
        type_patterns: list[TriplePattern] = []
        other: list[TriplePattern] = []
        for pattern in self.query.patterns:
            if isinstance(pattern.p, Var):
                raise TranslationError("variable predicates are not supported")
            if pattern.p.value == RDF_TYPE:
                type_patterns.append(pattern)
            else:
                other.append(pattern)
        return type_patterns, other

    def _fresh_var(self, base: str) -> str:
        self._fresh += 1
        return f"{base}_{self._fresh}"

    def _subject_var(self, term) -> str:
        if isinstance(term, Var):
            return term.name
        if isinstance(term, (IRI, BlankNode)):
            # Constant subject: introduce a var constrained by iri.
            var = self._fresh_var("s")
            iri_text = term.value if isinstance(term, IRI) else f"_:{term.label}"
            self.subject_labels.setdefault(var, [])
            self.where.append(f"{var}.iri = {_cypher_value(iri_text)}")
            return var
        raise TranslationError(f"unsupported subject term {term!r}")

    # ------------------------------------------------------------------ #

    def _handle_type_pattern(self, pattern: TriplePattern) -> None:
        if not isinstance(pattern.o, IRI):
            raise TranslationError("rdf:type with a non-constant class is unsupported")
        var = self._subject_var(pattern.s)
        label = self.mapping.label_for_class(pattern.o.value)
        if label is None:
            raise TranslationError(f"class {pattern.o.value} has no PG label")
        self.subject_labels.setdefault(var, []).append(label)
        self.subject_classes.setdefault(var, []).append(pattern.o.value)

    def _handle_property_pattern(self, pattern: TriplePattern) -> None:
        subject_var = self._subject_var(pattern.s)
        self.subject_labels.setdefault(subject_var, [])
        classes = self.subject_classes.get(subject_var, [])
        prop = self.mapping.property_for(classes, pattern.p.value)
        if prop is None:
            raise TranslationError(
                f"predicate {pattern.p.value} is not covered by the mapping"
            )
        if prop.is_key_value():
            self._key_value_pattern(subject_var, prop.pg_key, pattern)
        else:
            self._edge_pattern(subject_var, prop.rel_type, pattern)

    def _key_value_pattern(self, subject_var: str, key: str, pattern: TriplePattern) -> None:
        self.standalone_nodes.add(subject_var)
        if isinstance(pattern.o, Var):
            value_var = pattern.o.name
            if any(line.endswith(f" AS {value_var}") for line in self.unwinds):
                # The value variable is already bound by a previous UNWIND;
                # a second ``UNWIND ... AS value_var`` would silently rebind
                # it and drop the join.  Unwind into a fresh helper and
                # equate (the equality mentions an UNWIND variable, so the
                # renderer places it after both UNWINDs).
                helper = self._fresh_var("kv")
                self.unwinds.append(f"UNWIND {subject_var}.{key} AS {helper}")
                self.where.append(f"{helper} = {value_var}")
                return
            self.unwinds.append(f"UNWIND {subject_var}.{key} AS {value_var}")
            self.projections.setdefault(value_var, ("value", value_var))
            return
        if isinstance(pattern.o, Literal):
            constant = encode_literal_value(pattern.o, self.typed_literal_values)
            helper = self._fresh_var("kv")
            self.unwinds.append(f"UNWIND {subject_var}.{key} AS {helper}")
            self.where.append(f"{helper} = {_cypher_value(constant)}")
            return
        raise TranslationError("key/value property cannot target an IRI object")

    def _edge_pattern(self, subject_var: str, rel_type: str, pattern: TriplePattern) -> None:
        if isinstance(pattern.o, Var):
            target_var = pattern.o.name
            self.paths.append(f"({subject_var})-[:{rel_type}]->({target_var})")
            self.projections.setdefault(target_var, ("mixed", target_var))
            # If the object var is also used as a subject, its own label
            # constraints are added by the type patterns.
            self.subject_labels.setdefault(target_var, self.subject_labels.get(target_var, []))
            return
        if isinstance(pattern.o, (IRI, BlankNode)):
            iri_text = (
                pattern.o.value if isinstance(pattern.o, IRI) else f"_:{pattern.o.label}"
            )
            target_var = self._fresh_var("t")
            self.paths.append(
                f"({subject_var})-[:{rel_type}]->({target_var} {{iri: {_cypher_value(iri_text)}}})"
            )
            return
        # Constant literal object: match the literal node by value.
        constant = encode_literal_value(pattern.o, self.typed_literal_values)
        target_var = self._fresh_var("t")
        self.paths.append(
            f"({subject_var})-[:{rel_type}]->({target_var} {{value: {_cypher_value(constant)}}})"
        )
        if pattern.o.language is not None:
            self.where.append(f"{target_var}.lang = {_cypher_value(pattern.o.language)}")

    # ------------------------------------------------------------------ #

    def _translate_filter(self, expression: Expression) -> str:
        if isinstance(expression, Comparison):
            lhs = self._filter_operand(expression.lhs)
            rhs = self._filter_operand(expression.rhs)
            op = "<>" if expression.op == "!=" else expression.op
            return f"{lhs} {op} {rhs}"
        if isinstance(expression, BooleanOp):
            joiner = " AND " if expression.op == "and" else " OR "
            return "(" + joiner.join(
                self._translate_filter(op) for op in expression.operands
            ) + ")"
        if isinstance(expression, NotOp):
            return f"NOT ({self._translate_filter(expression.operand)})"
        raise TranslationError(f"unsupported FILTER expression {expression!r}")

    def _filter_operand(self, expression: Expression) -> str:
        if isinstance(expression, Var):
            kind, var = self.projections.get(expression.name, ("node", expression.name))
            if kind == "value":
                return var
            if kind == "mixed":
                return f"COALESCE({var}.value, {var}.iri)"
            return f"{var}.iri"
        if isinstance(expression, Literal):
            return _cypher_value(
                encode_literal_value(expression, self.typed_literal_values)
            )
        if isinstance(expression, IRI):
            return _cypher_value(expression.value)
        raise TranslationError(f"unsupported FILTER operand {expression!r}")

    # ------------------------------------------------------------------ #

    def _render(self) -> str:
        path_texts = list(self.paths)
        mentioned = " ".join(path_texts)
        for var in sorted(set(self.subject_labels) | self.standalone_nodes):
            if f"({var})" in mentioned or f"({var} " in mentioned:
                continue
            if not path_texts or all(
                f"({var})" not in p and f"({var} " not in p for p in path_texts
            ):
                # A node variable that appears in no path yet: standalone.
                path_texts.append(f"({var})")
                mentioned = " ".join(path_texts)

        # Attach label constraints to the first occurrence of each var
        # across all paths (replacing once in the joined text).
        joined = "\x00".join(path_texts)
        for var, labels in self.subject_labels.items():
            if not labels:
                continue
            label_suffix = "".join(f":{label}" for label in labels)
            if f"({var})" in joined:
                joined = joined.replace(f"({var})", f"({var}{label_suffix})", 1)
            else:
                joined = joined.replace(f"({var} {{", f"({var}{label_suffix} {{", 1)
        path_texts = joined.split("\x00") if joined else []

        # Conditions mentioning an UNWIND variable must be applied after
        # the UNWIND (rendered as ``WITH * WHERE ...``).
        import re as _re

        unwind_vars = {
            line.split(" AS ", 1)[1] for line in self.unwinds if " AS " in line
        }

        def mentions_unwind(condition: str) -> bool:
            return any(
                _re.search(rf"\b{_re.escape(var)}\b", condition)
                for var in unwind_vars
            )

        pre_where = [c for c in self.where if not mentions_unwind(c)]
        post_where = [c for c in self.where if mentions_unwind(c)]

        lines: list[str] = []
        if path_texts:
            lines.append("MATCH " + ", ".join(path_texts))
        if pre_where:
            lines.append("WHERE " + " AND ".join(pre_where))
        for optional_path in self.optional_paths:
            lines.append("OPTIONAL MATCH " + optional_path)
        lines.extend(self.unwinds)
        if post_where:
            lines.append("WITH * WHERE " + " AND ".join(post_where))
        lines.append(self._render_return())
        return "\n".join(lines)

    def _render_return(self) -> str:
        if self.query.ask:
            # ASK translates to a count; a non-zero count means true.
            return "RETURN count(*) AS ask"
        if self.query.count is not None:
            return f"RETURN count(*) AS {self.query.count}"
        items: list[str] = []
        variables = [v.name for v in self.query.variables] or list(self.projections)
        for name in variables:
            kind, var = self.projections.get(name, ("node", name))
            if kind == "value":
                items.append(f"{var} AS {name}")
            elif kind == "prop":
                items.append(f"{var} AS {name}")
            elif kind == "mixed":
                items.append(f"COALESCE({var}.value, {var}.iri) AS {name}")
            else:
                items.append(f"{var}.iri AS {name}")
        distinct = "DISTINCT " if self.query.distinct else ""
        order = ""
        if self.query.order_by:
            keys = []
            for order_key in self.query.order_by:
                name = order_key.var.name
                if name not in set(variables):
                    raise TranslationError(
                        "ORDER BY variables must be projected"
                    )
                keys.append(name + (" DESC" if order_key.descending else ""))
            order = " ORDER BY " + ", ".join(keys)
        limit = f" LIMIT {self.query.limit}" if self.query.limit is not None else ""
        return f"RETURN {distinct}" + ", ".join(items) + order + limit


def translate_sparql_to_cypher(
    sparql_text: str,
    mapping: SchemaMapping,
    typed_literal_values: bool = True,
) -> str:
    """Translate SPARQL text to Cypher text for an S3PG-transformed graph.

    Args:
        sparql_text: the SELECT/ASK query to translate.
        mapping: the ``F_st`` mapping of the target graph's transformation.
        typed_literal_values: must match the
            :class:`~repro.core.config.TransformOptions` flag the graph was
            transformed with, so constant literals compare correctly.
    """
    return SparqlToCypherTranslator(mapping, typed_literal_values).translate_text(
        sparql_text
    )
