"""Evaluation of the Cypher fragment over :class:`PropertyGraphStore`.

MATCH paths are evaluated left-to-right, seeding from the label index when
the start pattern carries a label; UNWIND expands array properties;
RETURN projects (with DISTINCT, LIMIT, and ``count(*)`` with implicit
grouping, as in openCypher).
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from ... import obs
from ...errors import QueryError
from ...pg.model import PGEdge, PGNode
from ...pg.store import PropertyGraphStore
from .ast import (
    Coalesce,
    CountStar,
    CypherBoolean,
    CypherComparison,
    CypherExpr,
    CypherLiteral,
    CypherNot,
    CypherQuery,
    HasLabel,
    IsNull,
    MatchClause,
    NodePattern,
    PathPattern,
    PropertyAccess,
    RelPattern,
    ReturnClause,
    SingleQuery,
    UnwindClause,
    VarRef,
    WithClause,
)

#: A row of variable bindings.
Binding = dict[str, object]


def _node_matches(node: PGNode, pattern: NodePattern) -> bool:
    for label in pattern.labels:
        if label not in node.labels:
            return False
    for key, value in pattern.properties:
        if node.properties.get(key) != value:
            return False
    return True


def _sort_key(value: object) -> tuple:
    """A total order over heterogeneous values (nulls first, as Cypher
    sorts them with ORDER BY ... ASC in this engine)."""
    if value is None:
        return (0, "", "")
    if isinstance(value, bool):
        return (1, "bool", str(value))
    if isinstance(value, (int, float)):
        return (1, "num", float(value))
    if isinstance(value, str):
        return (1, "str", value)
    if isinstance(value, PGNode):
        return (1, "node", value.id)
    if isinstance(value, PGEdge):
        return (1, "edge", value.id)
    return (1, "other", repr(value))


def _value_key(value: object) -> object:
    """A hashable identity for DISTINCT / grouping."""
    if isinstance(value, PGNode):
        return ("node", value.id)
    if isinstance(value, PGEdge):
        return ("edge", value.id)
    if isinstance(value, list):
        return ("list", tuple(_value_key(v) for v in value))
    return (type(value).__name__, value)


class CypherEngine:
    """Evaluates parsed Cypher queries against an indexed PG store.

    Example:
        >>> engine = CypherEngine(store)
        >>> rows = engine.query("MATCH (n:Person) RETURN n.iri")
    """

    def __init__(
        self,
        store: PropertyGraphStore,
        planner: bool = True,
        force_join: str | None = None,
        exec_mode: str = "iterator",
        batch_size: int | None = None,
    ):
        self.store = store
        #: Edges considered by pattern expansion in the current query.
        self._expansions = 0
        if planner:
            from ..plan import CypherPlanner

            self.planner = CypherPlanner(
                store,
                force_join=force_join,
                exec_mode=exec_mode,
                batch_size=batch_size,
            )
        else:
            if exec_mode != "iterator":
                raise ValueError(
                    f"exec_mode {exec_mode!r} requires the planner"
                )
            self.planner = None

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def query(self, text: str) -> list[dict[str, object]]:
        """Parse and evaluate; returns a list of column-name -> value rows."""
        from .parser import parse_cypher

        query = parse_cypher(text)
        start = time.perf_counter()
        rows = self.evaluate(query)
        duration = time.perf_counter() - start
        plan = None
        cache_hit = q_error = None
        if self.planner is not None:
            n_rows = len(rows)
            plan = lambda: self._assemble_explain(query, n_rows).to_dict()
            # One query may plan several MATCH clauses: a statement is a
            # cache hit only when every clause hit, and its q-error is
            # the worst across the clauses' plans.
            if self.planner.last_cache_hits or self.planner.last_cache_misses:
                cache_hit = self.planner.last_cache_misses == 0
            errors = [
                e for e in (
                    self.planner.feedback.max_q_error(key)
                    for key in self.planner.last_keys
                )
                if e is not None
            ]
            q_error = max(errors) if errors else None
        obs.record_query("cypher", text, duration, len(rows), plan=plan)
        obs.record_statement(
            "cypher", text, query, duration, len(rows),
            cache_hit=cache_hit, q_error=q_error,
            result_hash=lambda: obs.cypher_result_hash(rows),
        )
        return rows

    def count(self, text: str) -> int:
        """Number of result rows of a query."""
        return len(self.query(text))

    def explain(self, text: str, fmt: str = "text", analyze: bool = False):
        """Run a query and explain its physical plan.

        Returns the rendered tree as a string (``fmt="text"``) or a
        JSON-friendly dict (``fmt="json"``).  Non-optional MATCH
        clauses show the planner's operator pipeline with estimated
        and actual cardinalities; OPTIONAL MATCH and the clause tail
        are evaluated by the engine's fixed code and appear as logical
        nodes.  With ``analyze`` the physical operators also report
        loop counts and inclusive per-operator wall time.
        """
        from ..plan import render_text
        from .parser import parse_cypher

        if self.planner is None:
            raise QueryError("EXPLAIN requires the planner to be enabled")
        if fmt not in ("text", "json"):
            raise QueryError(f"unknown explain format {fmt!r}")
        query = parse_cypher(text)
        rows = self.evaluate(query, analyze=analyze)
        root = self._assemble_explain(query, len(rows))
        if fmt == "json":
            return root.to_dict()
        return render_text(root)

    def _assemble_explain(self, query: CypherQuery, result_rows: int):
        from ..plan.explain import ExplainNode

        snapshots = list(self.planner.last_explains)
        cursor = 0
        part_nodes = []
        for part in query.parts:
            chain: ExplainNode | None = None
            for clause in part.clauses:
                prev = (chain,) if chain is not None else ()
                if isinstance(clause, MatchClause):
                    if clause.optional:
                        chain = ExplainNode(
                            "OptionalMatch",
                            f"{len(clause.paths)} paths (naive)",
                            children=prev,
                        )
                    else:
                        plan_node = snapshots[cursor]
                        cursor += 1
                        detail = "with WHERE" if clause.where is not None else ""
                        chain = ExplainNode(
                            "Match", detail, children=prev + (plan_node,)
                        )
                elif isinstance(clause, UnwindClause):
                    chain = ExplainNode("Unwind", f"AS {clause.var}", children=prev)
                elif isinstance(clause, WithClause):
                    chain = ExplainNode("Filter", "WITH * WHERE", children=prev)
                elif isinstance(clause, ReturnClause):
                    columns = ", ".join(
                        item.column_name() for item in clause.items
                    )
                    op = (
                        "Aggregate"
                        if any(isinstance(i.expr, CountStar) for i in clause.items)
                        else "Return"
                    )
                    chain = ExplainNode(op, columns, children=prev)
                    if clause.order_by:
                        chain = ExplainNode(
                            "Sort", f"{len(clause.order_by)} keys", children=(chain,)
                        )
                    if clause.distinct:
                        chain = ExplainNode("Distinct", children=(chain,))
                    if clause.limit is not None:
                        chain = ExplainNode(
                            "Limit", str(clause.limit), children=(chain,)
                        )
            part_nodes.append(chain)
        if len(part_nodes) == 1:
            root = part_nodes[0]
        else:
            root = ExplainNode(
                "UnionAll", f"{len(part_nodes)} parts", children=tuple(part_nodes)
            )
        root.actual_rows = result_rows
        return root

    def evaluate(
        self, query: CypherQuery, analyze: bool = False
    ) -> list[dict[str, object]]:
        """Evaluate a parsed query (UNION ALL concatenates parts)."""
        self._expansions = 0
        if self.planner is not None:
            self.planner.reset_explains()
        start = time.perf_counter()
        with obs.span("cypher.evaluate", parts=len(query.parts)) as span:
            rows: list[dict[str, object]] = []
            columns: list[str] | None = None
            for part in query.parts:
                part_columns = [item.column_name() for item in part.return_clause.items]
                if columns is None:
                    columns = part_columns
                elif len(columns) != len(part_columns):
                    raise QueryError("UNION ALL parts must have the same arity")
                for row in self._evaluate_single(part, analyze):
                    rows.append(dict(zip(columns, row)))
            span.set("rows", len(rows))
            span.set("expansions", self._expansions)
        metrics = obs.get_metrics()
        metrics.counter(
            "repro_query_runs_total", help="query engine invocations"
        ).inc(1, lang="cypher")
        metrics.histogram(
            "repro_query_latency_seconds",
            boundaries=obs.LATENCY_BOUNDARIES,
            help="end-to-end query evaluation latency",
        ).observe(time.perf_counter() - start, lang="cypher")
        metrics.counter(
            "repro_cypher_expansions_total",
            help="edges considered by pattern expansion",
        ).inc(self._expansions)
        metrics.counter(
            "repro_cypher_rows_total", help="result rows produced"
        ).inc(len(rows))
        return rows

    # ------------------------------------------------------------------ #
    # Pipeline
    # ------------------------------------------------------------------ #

    def _evaluate_single(
        self, query: SingleQuery, analyze: bool = False
    ) -> list[tuple]:
        fast = self._batched_return_fast_path(query, analyze)
        if fast is not None:
            return fast
        bindings: list[Binding] = [{}]
        for clause in query.clauses:
            if isinstance(clause, MatchClause):
                kind = "cypher.optional_match" if clause.optional else "cypher.match"
                with obs.span(kind, rows_in=len(bindings)) as span:
                    bindings = self._apply_match(bindings, clause, analyze)
                    span.set("rows_out", len(bindings))
            elif isinstance(clause, UnwindClause):
                with obs.span("cypher.unwind", rows_in=len(bindings)) as span:
                    bindings = self._apply_unwind(bindings, clause)
                    span.set("rows_out", len(bindings))
            elif isinstance(clause, WithClause):
                if clause.where is not None:
                    with obs.span("cypher.filter", rows_in=len(bindings)) as span:
                        bindings = [
                            b for b in bindings
                            if self._truthy(self._eval(clause.where, b))
                        ]
                        span.set("rows_out", len(bindings))
            elif isinstance(clause, ReturnClause):
                with obs.span("cypher.return", rows_in=len(bindings)) as span:
                    rows = self._apply_return(bindings, clause)
                    span.set("rows_out", len(rows))
                return rows
            else:  # pragma: no cover - parser only emits these
                raise QueryError(f"unsupported clause {clause!r}")
        raise QueryError("query did not end with RETURN")

    def _batched_return_fast_path(
        self, query: SingleQuery, analyze: bool
    ) -> list[tuple] | None:
        """MATCH + simple RETURN on the batched planner, fully columnar.

        When the whole query is one non-optional MATCH (no WHERE)
        returning literals, variables, and property accesses — with
        ORDER BY keys limited to returned aliases — the projection runs
        straight off the plan's interned-id columns and no per-row
        binding dicts are built.  Any other shape falls back to the
        generic pipeline (returns None).
        """
        planner = self.planner
        if (
            planner is None
            or getattr(planner, "exec_mode", "iterator") != "batched"
            or len(query.clauses) != 2
        ):
            return None
        match, ret = query.clauses
        if (
            not isinstance(match, MatchClause)
            or match.optional
            or match.where is not None
            or not isinstance(ret, ReturnClause)
        ):
            return None
        for item in ret.items:
            if not isinstance(
                item.expr, (CypherLiteral, VarRef, PropertyAccess)
            ):
                return None
        order: list[tuple[int, bool]] = []
        for key in ret.order_by or ():
            index = next(
                (
                    i for i, item in enumerate(ret.items)
                    if isinstance(key.expr, VarRef)
                    and item.column_name() == key.expr.name
                ),
                None,
            )
            if index is None:
                return None
            order.append((index, key.descending))
        with obs.span("cypher.match", rows_in=1) as span:
            rows = planner.execute_match_projected(
                match, ret.items, self, analyze
            )
            if rows is None:
                return None
            span.set("rows_out", len(rows))
        with obs.span("cypher.return", rows_in=len(rows)) as span:
            for index, descending in reversed(order):
                rows.sort(
                    key=lambda row, i=index: _sort_key(row[i]),
                    reverse=descending,
                )
            if ret.distinct:
                seen: set[tuple] = set()
                unique: list[tuple] = []
                for row in rows:
                    dedup = tuple(_value_key(value) for value in row)
                    if dedup not in seen:
                        seen.add(dedup)
                        unique.append(row)
                rows = unique
            if ret.limit is not None:
                rows = rows[: ret.limit]
            span.set("rows_out", len(rows))
        return rows

    def _apply_match(
        self,
        bindings: list[Binding],
        clause: MatchClause,
        analyze: bool = False,
    ) -> list[Binding]:
        if not clause.optional:
            if self.planner is not None:
                result = self.planner.execute_match(bindings, clause, self, analyze)
            else:
                result = bindings
                for path in clause.paths:
                    extended: list[Binding] = []
                    for binding in result:
                        extended.extend(self._match_path(binding, path))
                    result = extended
            if clause.where is not None:
                result = [
                    b for b in result if self._truthy(self._eval(clause.where, b))
                ]
            return result
        # OPTIONAL MATCH: per input row, keep the row (with the clause's
        # variables bound to null) when the pattern finds no match.
        pattern_vars = clause.pattern_variables()
        result = []
        for binding in bindings:
            extended = [binding]
            for path in clause.paths:
                next_round: list[Binding] = []
                for current in extended:
                    next_round.extend(self._match_path(current, path))
                extended = next_round
            if clause.where is not None:
                extended = [
                    b for b in extended
                    if self._truthy(self._eval(clause.where, b))
                ]
            if extended:
                result.extend(extended)
            else:
                nulled = dict(binding)
                for name in pattern_vars:
                    nulled.setdefault(name, None)
                result.append(nulled)
        return result

    def _match_path(self, binding: Binding, path: PathPattern) -> Iterator[Binding]:
        for start_node, start_binding in self._candidate_starts(binding, path.start):
            yield from self._extend_hops(start_binding, start_node, path.hops, 0)

    def _candidate_starts(
        self, binding: Binding, pattern: NodePattern
    ) -> Iterator[tuple[PGNode, Binding]]:
        if pattern.var is not None and pattern.var in binding:
            bound = binding[pattern.var]
            if isinstance(bound, PGNode) and _node_matches(bound, pattern):
                yield bound, binding
            return
        if pattern.labels:
            candidates: Iterator[PGNode] = self.store.nodes_with_label(pattern.labels[0])
        else:
            candidates = iter(self.store.graph.nodes.values())
        for node in candidates:
            if _node_matches(node, pattern):
                if pattern.var is not None:
                    extended = dict(binding)
                    extended[pattern.var] = node
                    yield node, extended
                else:
                    yield node, binding

    def _extend_hops(
        self,
        binding: Binding,
        current: PGNode,
        hops: tuple[tuple[RelPattern, NodePattern], ...],
        index: int,
    ) -> Iterator[Binding]:
        if index == len(hops):
            yield binding
            return
        rel_pattern, node_pattern = hops[index]
        for edge, neighbour in self._neighbours(current, rel_pattern):
            if not _node_matches(neighbour, node_pattern):
                continue
            extended = binding
            if rel_pattern.var is not None:
                bound = binding.get(rel_pattern.var)
                if bound is not None and bound is not edge:
                    continue
                extended = dict(extended)
                extended[rel_pattern.var] = edge
            if node_pattern.var is not None:
                bound = extended.get(node_pattern.var)
                if bound is not None:
                    if not (isinstance(bound, PGNode) and bound.id == neighbour.id):
                        continue
                else:
                    if extended is binding:
                        extended = dict(extended)
                    extended[node_pattern.var] = neighbour
            yield from self._extend_hops(extended, neighbour, hops, index + 1)

    def _neighbours(
        self, node: PGNode, rel: RelPattern
    ) -> Iterator[tuple[PGEdge, PGNode]]:
        directions = []
        if rel.direction in ("out", "any"):
            directions.append("out")
        if rel.direction in ("in", "any"):
            directions.append("in")
        types = rel.types or (None,)
        undirected = len(directions) == 2
        for direction in directions:
            for rel_type in types:
                edges = (
                    self.store.out_edges(node.id, rel_type)
                    if direction == "out"
                    else self.store.in_edges(node.id, rel_type)
                )
                for edge in edges:
                    self._expansions += 1
                    if undirected and direction == "in" and edge.src == edge.dst:
                        # A self-loop satisfies an undirected pattern once,
                        # not once per traversal direction (openCypher
                        # relationship uniqueness).
                        continue
                    other_id = edge.dst if direction == "out" else edge.src
                    yield edge, self.store.graph.nodes[other_id]

    def _apply_unwind(self, bindings: list[Binding], clause: UnwindClause) -> list[Binding]:
        result: list[Binding] = []
        for binding in bindings:
            value = self._eval(clause.expr, binding)
            if value is None:
                continue
            items = value if isinstance(value, list) else [value]
            for item in items:
                extended = dict(binding)
                extended[clause.var] = item
                result.append(extended)
        return result

    def _apply_return(self, bindings: list[Binding], clause: ReturnClause) -> list[tuple]:
        has_count = any(isinstance(item.expr, CountStar) for item in clause.items)
        if has_count:
            rows = self._aggregate_count(bindings, clause)
        else:
            evals = [self._compile_eval(item.expr) for item in clause.items]
            rows = [
                tuple(evaluate(binding) for evaluate in evals)
                for binding in bindings
            ]
        if clause.order_by:
            for key in reversed(clause.order_by):
                # An ORDER BY referencing a returned alias sorts by that
                # column; otherwise the expression is evaluated per row
                # (only possible while rows and bindings are aligned).
                column_index = next(
                    (
                        index
                        for index, item in enumerate(clause.items)
                        if isinstance(key.expr, VarRef)
                        and item.column_name() == key.expr.name
                    ),
                    None,
                )
                if column_index is not None:
                    rows.sort(
                        key=lambda row, i=column_index: _sort_key(row[i]),
                        reverse=key.descending,
                    )
                elif not has_count and len(rows) == len(bindings):
                    decorated = [
                        (_sort_key(self._eval(key.expr, binding)), row)
                        for row, binding in zip(rows, bindings)
                    ]
                    decorated.sort(key=lambda d: d[0], reverse=key.descending)
                    rows = [row for _, row in decorated]
                else:
                    raise QueryError(
                        "ORDER BY with aggregation must reference a returned alias"
                    )
        if clause.distinct:
            seen: set[tuple] = set()
            unique: list[tuple] = []
            for row in rows:
                key = tuple(_value_key(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        # LIMIT must stay the last modifier: pipelined physical plans
        # upstream may deliver rows in any order, so truncating before
        # the sort above has completed would change the result.
        if clause.limit is not None:
            rows = rows[: clause.limit]
        return rows

    def _aggregate_count(self, bindings: list[Binding], clause: ReturnClause) -> list[tuple]:
        """``count(*)`` with implicit grouping by the other return items."""
        group_indexes = [
            i for i, item in enumerate(clause.items)
            if not isinstance(item.expr, CountStar)
        ]
        groups: dict[tuple, list] = {}
        group_values: dict[tuple, tuple] = {}
        for binding in bindings:
            values = tuple(
                self._eval(clause.items[i].expr, binding) for i in group_indexes
            )
            key = tuple(_value_key(v) for v in values)
            groups.setdefault(key, []).append(binding)
            group_values[key] = values
        if not group_indexes and not groups:
            return [tuple(0 for _ in clause.items)]
        rows: list[tuple] = []
        for key, members in groups.items():
            values = iter(group_values[key])
            row = tuple(
                len(members) if isinstance(item.expr, CountStar) else next(values)
                for item in clause.items
            )
            rows.append(row)
        return rows

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #

    def _compile_eval(self, expr: CypherExpr):
        """A per-row closure for ``expr``, bypassing the dispatch chain
        of :meth:`_eval` for the projection-hot expression kinds."""
        if isinstance(expr, CypherLiteral):
            value = expr.value
            return lambda binding: value
        if isinstance(expr, VarRef):
            name = expr.name

            def ref(binding, name=name):
                if name not in binding:
                    raise QueryError(f"unbound variable {name!r}")
                return binding[name]

            return ref
        if isinstance(expr, PropertyAccess):
            var, key = expr.var, expr.key

            def prop(binding, var=var, key=key):
                element = binding.get(var)
                if isinstance(element, (PGNode, PGEdge)):
                    return element.properties.get(key)
                return None

            return prop
        return lambda binding: self._eval(expr, binding)

    def _eval(self, expr: CypherExpr, binding: Binding) -> object:
        if isinstance(expr, CypherLiteral):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name not in binding:
                raise QueryError(f"unbound variable {expr.name!r}")
            return binding[expr.name]
        if isinstance(expr, PropertyAccess):
            element = binding.get(expr.var)
            if isinstance(element, (PGNode, PGEdge)):
                return element.properties.get(expr.key)
            return None
        if isinstance(expr, Coalesce):
            for arg in expr.args:
                value = self._eval(arg, binding)
                if value is not None:
                    return value
            return None
        if isinstance(expr, CypherComparison):
            lhs = self._eval(expr.lhs, binding)
            rhs = self._eval(expr.rhs, binding)
            if lhs is None or rhs is None:
                return None
            try:
                if expr.op == "=":
                    return lhs == rhs
                if expr.op == "<>":
                    return lhs != rhs
                if expr.op == "<":
                    return lhs < rhs
                if expr.op == "<=":
                    return lhs <= rhs
                if expr.op == ">":
                    return lhs > rhs
                if expr.op == ">=":
                    return lhs >= rhs
            except TypeError:
                return None
            raise QueryError(f"unknown operator {expr.op}")
        if isinstance(expr, CypherBoolean):
            values = [self._truthy(self._eval(op, binding)) for op in expr.operands]
            return all(values) if expr.op == "and" else any(values)
        if isinstance(expr, CypherNot):
            return not self._truthy(self._eval(expr.operand, binding))
        if isinstance(expr, IsNull):
            value = self._eval(expr.operand, binding)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, HasLabel):
            element = binding.get(expr.var)
            return isinstance(element, PGNode) and expr.label in element.labels
        if isinstance(expr, CountStar):
            raise QueryError("count(*) is only allowed in RETURN")
        raise QueryError(f"cannot evaluate {expr!r}")

    @staticmethod
    def _truthy(value: object) -> bool:
        return bool(value) and value is not None
