"""Abstract syntax for the Cypher fragment used in the evaluation.

Covers the query shapes of Section 5.2 (e.g. the Q22 variants)::

    MATCH (n:sch_ShoppingCenter)-[:dbp_address]->(tn)
    RETURN n.iri AS node_iri, COALESCE(tn.value, tn.iri) AS tn_iri_or_value

    MATCH (node:sch_ShoppingCenter)
    UNWIND node.sch_address AS v
    RETURN node.uri AS node_uri, v
    UNION ALL ...
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CypherLiteral:
    """A constant value (string, number, boolean, or null)."""

    value: object


@dataclass(frozen=True)
class VarRef:
    """A reference to a bound variable."""

    name: str


@dataclass(frozen=True)
class PropertyAccess:
    """``var.key`` — a record lookup on a bound node/edge."""

    var: str
    key: str


@dataclass(frozen=True)
class Coalesce:
    """``COALESCE(e1, e2, ...)`` — first non-null argument."""

    args: tuple["CypherExpr", ...]


@dataclass(frozen=True)
class CountStar:
    """``count(*)`` aggregate."""


@dataclass(frozen=True)
class CypherComparison:
    """``lhs op rhs`` with op in =, <>, <, <=, >, >=."""

    op: str
    lhs: "CypherExpr"
    rhs: "CypherExpr"


@dataclass(frozen=True)
class CypherBoolean:
    """AND / OR combination."""

    op: str  # "and" | "or"
    operands: tuple["CypherExpr", ...]


@dataclass(frozen=True)
class CypherNot:
    """Logical NOT."""

    operand: "CypherExpr"


@dataclass(frozen=True)
class IsNull:
    """``expr IS NULL`` / ``expr IS NOT NULL``."""

    operand: "CypherExpr"
    negated: bool = False


@dataclass(frozen=True)
class HasLabel:
    """``var:Label`` used as a predicate in WHERE."""

    var: str
    label: str


#: Any Cypher expression node.
CypherExpr = (
    CypherLiteral | VarRef | PropertyAccess | Coalesce | CountStar
    | CypherComparison | CypherBoolean | CypherNot | IsNull | HasLabel
)


@dataclass(frozen=True)
class NodePattern:
    """``(var:Label1:Label2 {key: value, ...})``."""

    var: str | None
    labels: tuple[str, ...] = ()
    properties: tuple[tuple[str, object], ...] = ()


@dataclass(frozen=True)
class RelPattern:
    """``-[var:TYPE1|TYPE2]->`` / ``<-[...]-`` / ``-[...]-``."""

    var: str | None
    types: tuple[str, ...] = ()
    direction: str = "out"  # "out" | "in" | "any"


@dataclass(frozen=True)
class PathPattern:
    """A linear path: node, then (rel, node) hops."""

    start: NodePattern
    hops: tuple[tuple[RelPattern, NodePattern], ...] = ()

    def node_patterns(self) -> list[NodePattern]:
        """All node patterns along the path."""
        return [self.start, *(node for _, node in self.hops)]


@dataclass
class MatchClause:
    """``[OPTIONAL] MATCH path [, path ...] [WHERE expr]``."""

    paths: list[PathPattern]
    where: CypherExpr | None = None
    optional: bool = False

    def pattern_variables(self) -> list[str]:
        """All variables introduced by the clause's patterns."""
        names: list[str] = []
        for path in self.paths:
            for node in path.node_patterns():
                if node.var is not None and node.var not in names:
                    names.append(node.var)
            for rel, _ in path.hops:
                if rel.var is not None and rel.var not in names:
                    names.append(rel.var)
        return names


@dataclass
class UnwindClause:
    """``UNWIND expr AS var``."""

    expr: CypherExpr
    var: str


@dataclass
class WithClause:
    """``WITH * [WHERE expr]`` — pass-through projection with filtering."""

    where: CypherExpr | None = None


@dataclass(frozen=True)
class ReturnItem:
    """One projected expression with an optional alias."""

    expr: CypherExpr
    alias: str | None = None

    def column_name(self) -> str:
        """The output column name (alias, or a rendering of the expr)."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, VarRef):
            return self.expr.name
        if isinstance(self.expr, PropertyAccess):
            return f"{self.expr.var}.{self.expr.key}"
        if isinstance(self.expr, CountStar):
            return "count(*)"
        return "expr"


@dataclass(frozen=True)
class CypherOrderKey:
    """One ORDER BY key of a RETURN clause."""

    expr: "CypherExpr"
    descending: bool = False


@dataclass
class ReturnClause:
    """``RETURN [DISTINCT] items [ORDER BY keys] [LIMIT n]``."""

    items: list[ReturnItem]
    distinct: bool = False
    order_by: list[CypherOrderKey] = field(default_factory=list)
    limit: int | None = None


@dataclass
class SingleQuery:
    """One MATCH/UNWIND/RETURN pipeline."""

    clauses: list = field(default_factory=list)  # Match/Unwind, Return last

    @property
    def return_clause(self) -> ReturnClause:
        """The trailing RETURN clause."""
        clause = self.clauses[-1]
        if not isinstance(clause, ReturnClause):
            raise ValueError("query must end with RETURN")
        return clause


@dataclass
class CypherQuery:
    """One or more single queries combined with UNION ALL."""

    parts: list[SingleQuery]

    def columns(self) -> list[str]:
        """Output column names (taken from the first part)."""
        return [item.column_name() for item in self.parts[0].return_clause.items]
