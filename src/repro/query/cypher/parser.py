"""Parser for the Cypher fragment (see :mod:`.ast`)."""

from __future__ import annotations

import re

from ...errors import QueryError
from .ast import (
    Coalesce,
    CountStar,
    CypherBoolean,
    CypherComparison,
    CypherExpr,
    CypherLiteral,
    CypherNot,
    CypherOrderKey,
    CypherQuery,
    HasLabel,
    IsNull,
    MatchClause,
    NodePattern,
    PathPattern,
    PropertyAccess,
    RelPattern,
    ReturnClause,
    ReturnItem,
    SingleQuery,
    UnwindClause,
    VarRef,
    WithClause,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<number>[-+]?(?:\d+\.\d+|\d+))
  | (?P<arrow_out>->)
  | (?P<arrow_in><-)
  | (?P<op><>|<=|>=|=|<|>)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[(){}\[\]:.,|*])
  | (?P<dash>-)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str):
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryError(f"unexpected character {text[pos]!r} in Cypher query")
        kind = match.lastgroup
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, match.group()))
        pos = match.end()
    tokens.append(_Token("eof", ""))
    return tokens


class CypherParser:
    """Recursive-descent parser for the supported Cypher fragment."""

    def __init__(self) -> None:
        self._tokens: list[_Token] = []
        self._index = 0

    def parse(self, text: str) -> CypherQuery:
        """Parse ``text``; raises :class:`QueryError` on invalid input."""
        self._tokens = _tokenize(text.rstrip().rstrip(";"))
        self._index = 0
        parts = [self._parse_single()]
        while self._at_word("union"):
            self._next()
            self._expect_word("all")
            parts.append(self._parse_single())
        if not self._at("eof"):
            raise QueryError(f"trailing content: {self._peek().text!r}")
        return CypherQuery(parts=parts)

    # ------------------------------------------------------------------ #

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _at(self, kind: str) -> bool:
        return self._peek().kind == kind

    def _at_word(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "word" and token.text.lower() == word

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "punct" and token.text == text

    def _expect_word(self, word: str) -> None:
        if not self._at_word(word):
            raise QueryError(f"expected {word.upper()}, found {self._peek().text!r}")
        self._next()

    def _expect_punct(self, text: str) -> None:
        if not self._at_punct(text):
            raise QueryError(f"expected {text!r}, found {self._peek().text!r}")
        self._next()

    # ------------------------------------------------------------------ #

    def _parse_single(self) -> SingleQuery:
        query = SingleQuery()
        while True:
            if self._at_word("match"):
                self._next()
                query.clauses.append(self._parse_match())
            elif self._at_word("optional"):
                self._next()
                self._expect_word("match")
                clause = self._parse_match()
                clause.optional = True
                query.clauses.append(clause)
            elif self._at_word("unwind"):
                self._next()
                expr = self._parse_expression()
                self._expect_word("as")
                var_token = self._next()
                if var_token.kind != "word":
                    raise QueryError("UNWIND ... AS requires a variable name")
                query.clauses.append(UnwindClause(expr=expr, var=var_token.text))
            elif self._at_word("with"):
                self._next()
                self._expect_punct("*")
                where = None
                if self._at_word("where"):
                    self._next()
                    where = self._parse_expression()
                query.clauses.append(WithClause(where=where))
            elif self._at_word("return"):
                self._next()
                query.clauses.append(self._parse_return())
                return query
            else:
                raise QueryError(
                    f"expected MATCH, UNWIND, or RETURN, found {self._peek().text!r}"
                )

    def _parse_match(self) -> MatchClause:
        paths = [self._parse_path()]
        while self._at_punct(","):
            self._next()
            paths.append(self._parse_path())
        where = None
        if self._at_word("where"):
            self._next()
            where = self._parse_expression()
        return MatchClause(paths=paths, where=where)

    def _parse_path(self) -> PathPattern:
        start = self._parse_node_pattern()
        hops: list[tuple[RelPattern, NodePattern]] = []
        while self._at("dash") or self._at("arrow_in"):
            rel = self._parse_rel_pattern()
            node = self._parse_node_pattern()
            hops.append((rel, node))
        return PathPattern(start=start, hops=tuple(hops))

    def _parse_node_pattern(self) -> NodePattern:
        self._expect_punct("(")
        var = None
        labels: list[str] = []
        properties: list[tuple[str, object]] = []
        if self._at("word"):
            var = self._next().text
        while self._at_punct(":"):
            self._next()
            label_token = self._next()
            if label_token.kind != "word":
                raise QueryError("expected label after ':'")
            labels.append(label_token.text)
        if self._at_punct("{"):
            self._next()
            while not self._at_punct("}"):
                key_token = self._next()
                if key_token.kind != "word":
                    raise QueryError("expected property key")
                self._expect_punct(":")
                properties.append((key_token.text, self._parse_literal_value()))
                if self._at_punct(","):
                    self._next()
            self._expect_punct("}")
        self._expect_punct(")")
        return NodePattern(var=var, labels=tuple(labels), properties=tuple(properties))

    def _parse_rel_pattern(self) -> RelPattern:
        direction = "out"
        if self._at("arrow_in"):
            self._next()
            direction = "in"
        elif self._at("dash"):
            self._next()
        var = None
        types: list[str] = []
        if self._at_punct("["):
            self._next()
            if self._at("word"):
                var = self._next().text
            if self._at_punct(":"):
                self._next()
                while True:
                    type_token = self._next()
                    if type_token.kind != "word":
                        raise QueryError("expected relationship type")
                    types.append(type_token.text)
                    if self._at_punct("|"):
                        self._next()
                        if self._at_punct(":"):
                            self._next()
                        continue
                    break
            self._expect_punct("]")
        if self._at("arrow_out"):
            self._next()
            if direction == "in":
                raise QueryError("relationship cannot point both ways")
            direction = "out"
        elif self._at("dash"):
            self._next()
            if direction != "in":
                direction = "any"
        else:
            raise QueryError("unterminated relationship pattern")
        return RelPattern(var=var, types=tuple(types), direction=direction)

    def _parse_literal_value(self) -> object:
        token = self._next()
        if token.kind == "string":
            return token.text[1:-1].replace("\\'", "'").replace('\\"', '"')
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "word":
            lowered = token.text.lower()
            if lowered == "true":
                return True
            if lowered == "false":
                return False
            if lowered == "null":
                return None
        raise QueryError(f"invalid literal {token.text!r}")

    def _parse_return(self) -> ReturnClause:
        distinct = False
        if self._at_word("distinct"):
            self._next()
            distinct = True
        items = [self._parse_return_item()]
        while self._at_punct(","):
            self._next()
            items.append(self._parse_return_item())
        order_by: list[CypherOrderKey] = []
        if self._at_word("order"):
            self._next()
            self._expect_word("by")
            while True:
                expr = self._parse_expression()
                descending = False
                if self._at_word("desc"):
                    self._next()
                    descending = True
                elif self._at_word("asc"):
                    self._next()
                order_by.append(CypherOrderKey(expr=expr, descending=descending))
                if self._at_punct(","):
                    self._next()
                    continue
                break
        limit = None
        if self._at_word("limit"):
            self._next()
            token = self._next()
            if token.kind != "number" or "." in token.text:
                raise QueryError("LIMIT requires an integer")
            limit = int(token.text)
        return ReturnClause(
            items=items, distinct=distinct, order_by=order_by, limit=limit
        )

    def _parse_return_item(self) -> ReturnItem:
        expr = self._parse_expression()
        alias = None
        if self._at_word("as"):
            self._next()
            alias_token = self._next()
            if alias_token.kind != "word":
                raise QueryError("AS requires an alias name")
            alias = alias_token.text
        return ReturnItem(expr=expr, alias=alias)

    # ------------------------------------------------------------------ #
    # Expressions (precedence: OR < AND < NOT < comparison < primary)
    # ------------------------------------------------------------------ #

    def _parse_expression(self) -> CypherExpr:
        return self._parse_or()

    def _parse_or(self) -> CypherExpr:
        operands = [self._parse_and()]
        while self._at_word("or"):
            self._next()
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return CypherBoolean("or", tuple(operands))

    def _parse_and(self) -> CypherExpr:
        operands = [self._parse_not()]
        while self._at_word("and"):
            self._next()
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return CypherBoolean("and", tuple(operands))

    def _parse_not(self) -> CypherExpr:
        if self._at_word("not"):
            self._next()
            return CypherNot(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> CypherExpr:
        lhs = self._parse_primary()
        token = self._peek()
        if token.kind == "op":
            self._next()
            rhs = self._parse_primary()
            return CypherComparison(token.text, lhs, rhs)
        if self._at_word("is"):
            self._next()
            negated = False
            if self._at_word("not"):
                self._next()
                negated = True
            self._expect_word("null")
            return IsNull(lhs, negated=negated)
        return lhs

    def _parse_primary(self) -> CypherExpr:
        token = self._next()
        if token.kind == "string":
            return CypherLiteral(token.text[1:-1].replace("\\'", "'").replace('\\"', '"'))
        if token.kind == "number":
            value = float(token.text) if "." in token.text else int(token.text)
            return CypherLiteral(value)
        if token.kind == "punct" and token.text == "(":
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        if token.kind == "word":
            lowered = token.text.lower()
            if lowered == "coalesce":
                self._expect_punct("(")
                args = [self._parse_expression()]
                while self._at_punct(","):
                    self._next()
                    args.append(self._parse_expression())
                self._expect_punct(")")
                return Coalesce(tuple(args))
            if lowered == "count":
                self._expect_punct("(")
                self._expect_punct("*")
                self._expect_punct(")")
                return CountStar()
            if lowered == "true":
                return CypherLiteral(True)
            if lowered == "false":
                return CypherLiteral(False)
            if lowered == "null":
                return CypherLiteral(None)
            name = token.text
            if self._at_punct("."):
                self._next()
                key_token = self._next()
                if key_token.kind != "word":
                    raise QueryError("expected property key after '.'")
                return PropertyAccess(var=name, key=key_token.text)
            if self._at_punct(":"):
                self._next()
                label_token = self._next()
                if label_token.kind != "word":
                    raise QueryError("expected label after ':'")
                return HasLabel(var=name, label=label_token.text)
            return VarRef(name)
        raise QueryError(f"invalid expression token {token.text!r}")


def parse_cypher(text: str) -> CypherQuery:
    """Parse a Cypher query (module-level convenience)."""
    return CypherParser().parse(text)
