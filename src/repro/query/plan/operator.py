"""Shared machinery for iterator-model physical operators.

Both planners' operator trees (:mod:`repro.query.plan.sparql_plan`,
:mod:`repro.query.plan.cypher_plan`) inherit from
:class:`PhysicalOperator`, which owns the run-time bookkeeping behind
``EXPLAIN`` and ``EXPLAIN ANALYZE``:

* ``actual_rows`` — output cardinality of the most recent execution;
* ``actual_loops`` — how many times the operator's per-row work ran
  (index probes for a bind join, seeded input items for an expansion,
  1 for a one-shot scan or hash build);
* ``wall_ns`` — inclusive wall time of the subtree, measured only under
  ``analyze`` by wrapping the operator's iterator so every ``next()``
  is timed (the Postgres ``actual time`` convention: a parent's time
  includes its children's).

Executions go through :meth:`PhysicalOperator.run`, never ``execute``
directly: ``run`` returns the raw iterator when analyze is off, so the
hot path pays nothing for the timing machinery.
"""

from __future__ import annotations

import time
from collections.abc import Iterator

from .explain import ExplainNode

__all__ = ["PhysicalOperator"]


class PhysicalOperator:
    """Base class for iterator-model physical operators."""

    op = "Operator"

    def __init__(
        self,
        est_rows: float | None,
        children: tuple["PhysicalOperator", ...] = (),
    ):
        self.est_rows = est_rows
        self.children = children
        self.actual_rows: int | None = None
        self.actual_loops: int | None = None
        self.wall_ns: int = 0
        self._analyze = False

    def prepare(self, analyze: bool = False) -> None:
        """Reset run-time counters (recursively) before an execution.

        Plans are cached and re-executed, so the counters of the
        previous run are cleared here rather than inside ``execute`` —
        a subtree that is never pulled still reports 0 rows, not the
        stale count of an earlier run.
        """
        self._analyze = analyze
        self.actual_rows = 0
        self.actual_loops = 0
        self.wall_ns = 0
        for child in self.children:
            child.prepare(analyze)

    def execute(self, *args) -> Iterator:
        raise NotImplementedError

    def run(self, *args) -> Iterator:
        """The operator's iterator, timed when analyze is on."""
        iterator = self.execute(*args)
        if self._analyze:
            return self._timed(iterator)
        return iterator

    def _timed(self, iterator: Iterator) -> Iterator:
        while True:
            start = time.perf_counter_ns()
            try:
                item = next(iterator)
            except StopIteration:
                self.wall_ns += time.perf_counter_ns() - start
                return
            self.wall_ns += time.perf_counter_ns() - start
            yield item

    def detail(self) -> str:
        return ""

    def explain(self) -> ExplainNode:
        """Snapshot this subtree (estimates + last execution's actuals)."""
        node = ExplainNode(
            op=self.op,
            detail=self.detail(),
            est_rows=self.est_rows,
            actual_rows=self.actual_rows,
            children=tuple(child.explain() for child in self.children),
        )
        if self._analyze:
            node.actual_loops = self.actual_loops
            node.wall_ms = self.wall_ns / 1e6
        return node
