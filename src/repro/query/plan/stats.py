"""Statistics catalogs: cardinality estimates for the cost-based planner.

Both catalogs are thin views over statistics their backing store keeps
incrementally fresh (see :meth:`Graph.predicate_count` and
:meth:`PropertyGraphStore.rel_type_count`), so every estimate here is
O(1).  Estimates follow the classic System-R uniformity assumptions:

* a triple pattern with a constant predicate ``p`` starts from the exact
  per-predicate triple count and divides by the distinct-subject /
  distinct-object counts of ``p`` for each additionally bound position;
* a Cypher node pattern is estimated by its cheapest access path
  (bound variable < property-index hit count < label cardinality <
  node count), and each hop multiplies by the average fanout of its
  relationship types.

A *bound* variable is one the current partial plan has already produced;
its estimate divides by the relevant distinct count (the expected number
of matches for one concrete value).
"""

from __future__ import annotations

from collections import OrderedDict

from ... import obs
from ...pg.store import PropertyGraphStore
from ...rdf.graph import Graph
from ...rdf.terms import IRI, BlankNode, Triple
from ..cypher.ast import NodePattern, RelPattern
from ..sparql.ast import TriplePattern, Var

__all__ = [
    "FeedbackStore",
    "GraphCatalog",
    "Q_ERROR_BOUNDARIES",
    "SeedChoice",
    "StoreCatalog",
    "q_error",
]


class GraphCatalog:
    """Cardinality statistics over an RDF :class:`Graph`."""

    def __init__(self, graph: Graph):
        self.graph = graph

    @property
    def version(self) -> int:
        """The graph's mutation counter (plan-cache invalidation)."""
        return self.graph.version

    def triple_count(self) -> int:
        return len(self.graph)

    def estimate_pattern(self, pattern: TriplePattern, bound: set[str]) -> float:
        """Expected matches of ``pattern`` for one assignment of ``bound``.

        With ``bound`` empty this is the standalone scan estimate; with
        variables bound it is the expected per-binding fanout of an
        index nested-loop probe.
        """
        g = self.graph
        s, s_bound = self._resolve(pattern.s, bound)
        p, p_bound = self._resolve(pattern.p, bound)
        o, o_bound = self._resolve(pattern.o, bound)
        if p is not None:
            if not isinstance(p, IRI):
                return 0.0
            total = g.predicate_count(p)
            if total == 0:
                return 0.0
            if s is not None and not isinstance(s, (IRI, BlankNode)):
                return 0.0
            if s is not None and o is not None:
                return 1.0 if Triple(s, p, o) in g else 0.0
            if s is not None:
                est = float(g.count(s, p, None))
                if o_bound:
                    est /= max(1, g.predicate_distinct_objects(p))
                return est
            if o is not None:
                est = float(g.count(None, p, o))
                if s_bound:
                    est /= max(1, g.predicate_distinct_subjects(p))
                return est
            est = float(total)
            if s_bound:
                est /= max(1, g.predicate_distinct_subjects(p))
            if o_bound:
                est /= max(1, g.predicate_distinct_objects(p))
            return est
        # Predicate is free (or a bound variable): fall back to the
        # subject/object degree sums, then the whole-graph count.
        if s is not None and not isinstance(s, (IRI, BlankNode)):
            return 0.0
        if s is not None:
            est = float(g.count(s, None, o))
        elif o is not None:
            est = float(g.count(None, None, o))
        else:
            est = float(len(g))
            if s_bound:
                est /= max(1, g.n_subjects())
            if o_bound:
                est /= max(1, g.n_objects())
        if p_bound:
            est /= max(1, g.n_predicates())
        return est

    @staticmethod
    def _resolve(term, bound: set[str]):
        """``(constant, is_bound_var)`` for one pattern position."""
        if isinstance(term, Var):
            return None, term.name in bound
        return term, False


class SeedChoice:
    """The access path chosen for a Cypher node pattern.

    ``mode`` is one of ``"bound"`` (the variable is already bound),
    ``"prop"`` (property-index seek on ``(key, value)``), ``"label"``
    (label-index scan on ``label``), or ``"all"`` (full node scan).
    """

    __slots__ = ("mode", "label", "key", "value", "est")

    def __init__(self, mode: str, est: float, label: str | None = None,
                 key: str | None = None, value: object = None):
        self.mode = mode
        self.est = est
        self.label = label
        self.key = key
        self.value = value

    def describe(self) -> str:
        if self.mode == "bound":
            return "bound"
        if self.mode == "prop":
            return f"index {self.key}={self.value!r}"
        if self.mode == "label":
            return f"label :{self.label}"
        return "all nodes"


class StoreCatalog:
    """Cardinality statistics over a :class:`PropertyGraphStore`."""

    def __init__(self, store: PropertyGraphStore):
        self.store = store

    @property
    def version(self) -> int:
        """The store's mutation counter (plan-cache invalidation)."""
        return self.store.version

    def node_count(self) -> int:
        return self.store.node_count()

    def edge_count(self) -> int:
        return self.store.edge_count()

    def seed_choice(self, pattern: NodePattern, bound: set[str]) -> SeedChoice:
        """The cheapest access path for matching ``pattern`` first."""
        if pattern.var is not None and pattern.var in bound:
            return SeedChoice("bound", 1.0)
        best: SeedChoice | None = None
        for key, value in pattern.properties:
            hits = self.store.property_hits(key, value)
            if hits is not None and (best is None or hits < best.est):
                best = SeedChoice("prop", float(hits), key=key, value=value)
        for label in pattern.labels:
            count = float(self.store.count_label(label))
            if best is None or count < best.est:
                best = SeedChoice("label", count, label=label)
        if best is not None:
            return best
        return SeedChoice("all", float(self.node_count()))

    def node_selectivity(self, pattern: NodePattern) -> float:
        """Fraction of nodes matching the pattern's labels/properties."""
        nodes = max(1, self.node_count())
        best = 1.0
        for label in pattern.labels:
            best = min(best, self.store.count_label(label) / nodes)
        for key, value in pattern.properties:
            hits = self.store.property_hits(key, value)
            if hits is not None:
                best = min(best, hits / nodes)
        return best

    def hop_fanout(self, rel: RelPattern) -> float:
        """Average number of edges one hop follows from a node."""
        if rel.types:
            edges = sum(self.store.rel_type_count(t) for t in rel.types)
        else:
            edges = self.edge_count()
        fanout = edges / max(1, self.node_count())
        if rel.direction == "any":
            fanout *= 2.0
        return fanout


# --------------------------------------------------------------------- #
# Cardinality feedback
# --------------------------------------------------------------------- #

#: Histogram buckets for q-error observations: 1.0 is a perfect
#: estimate, >10 is a badly mis-ordered join, >1000 is pathological.
Q_ERROR_BOUNDARIES: tuple[float, ...] = (
    1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0, 1000.0,
)


def q_error(estimated: float, actual: float) -> float:
    """The multiplicative estimation error, symmetric and >= 1.

    Both sides are floored at one row (the usual convention) so empty
    results don't divide by zero and tiny cardinalities don't dominate.
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


class FeedbackStore:
    """Observed cardinalities of executed plans, keyed by plan-cache key.

    After every execution the planner records the explain snapshot here;
    the store keeps, per plan, the latest per-operator estimated vs.
    actual rows and the plan's worst q-error, bounded LRU-style to
    ``capacity`` plans.  This is the signal a future adaptive replanner
    (ROADMAP item 5) will consume, and each recording feeds the
    ``repro_plan_q_error{engine=...}`` histogram so estimate drift is
    scrapeable from the ops endpoint.
    """

    def __init__(self, engine: str, capacity: int = 512):
        self.engine = engine
        self.capacity = capacity
        self._entries: OrderedDict[tuple, dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, key: tuple | None, root) -> dict | None:
        """Fold one executed plan's explain tree into the store.

        Only physical operators (nodes carrying both an estimate and an
        actual count) participate; the logical tail nodes wrapped around
        the plan by the engines have no estimates and are skipped.
        Returns the updated entry, or None if the tree had no physical
        operators (e.g. an empty pattern).
        """
        if key is None or root is None:
            return None
        operators = []
        worst = 1.0
        for node in root.walk():
            if node.est_rows is None or node.actual_rows is None:
                continue
            error = q_error(node.est_rows, node.actual_rows)
            worst = max(worst, error)
            operators.append(
                {
                    "op": node.op,
                    "detail": node.detail,
                    "est_rows": round(float(node.est_rows), 3),
                    "actual_rows": node.actual_rows,
                    "q_error": round(error, 3),
                }
            )
        if not operators:
            return None
        previous = self._entries.pop(key, None)
        entry = {
            "engine": self.engine,
            "executions": (previous["executions"] + 1) if previous else 1,
            "max_q_error": round(worst, 3),
            "operators": operators,
        }
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        obs.get_metrics().histogram(
            "repro_plan_q_error",
            boundaries=Q_ERROR_BOUNDARIES,
            help="per-plan worst cardinality q-error",
        ).observe(worst, engine=self.engine)
        return entry

    def get(self, key: tuple) -> dict | None:
        return self._entries.get(key)

    def max_q_error(self, key: tuple | None) -> float | None:
        """The worst q-error recorded for one plan key, or None.

        The per-execution join point for the workload tracker: engines
        look up the key(s) they just executed and attribute the plan's
        q-error to the statement fingerprint.
        """
        if key is None:
            return None
        entry = self._entries.get(key)
        return entry["max_q_error"] if entry is not None else None

    def snapshot(self) -> list[dict]:
        """Every retained entry, least-recently-recorded first."""
        return [dict(entry) for entry in self._entries.values()]

    def summary(self) -> dict:
        """Aggregate accuracy numbers for artifacts and `/healthz`."""
        entries = list(self._entries.values())
        worst = max((e["max_q_error"] for e in entries), default=1.0)
        return {
            "engine": self.engine,
            "plans": len(entries),
            "executions": sum(e["executions"] for e in entries),
            "max_q_error": worst,
        }
