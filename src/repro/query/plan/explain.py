"""EXPLAIN trees: the rendered form of a physical query plan.

Every physical operator (see :mod:`repro.query.plan.sparql_plan` and
:mod:`repro.query.plan.cypher_plan`) can snapshot itself into an
:class:`ExplainNode`; the engines wrap the operator tree with nodes for
the logical tail (filters, projection, DISTINCT, ORDER BY, LIMIT) and
hand the root to :func:`render_text` / :func:`ExplainNode.to_dict`.

Estimated cardinalities come from the statistics catalog at plan time;
actual cardinalities are the per-operator row counters of the most
recent execution, so ``EXPLAIN`` output doubles as an ``EXPLAIN
ANALYZE``.  Under ``analyze`` mode the operators additionally report
loop counts (how often their per-row work ran) and inclusive wall time;
both fields are optional and the renderers degrade gracefully — a plan
without them renders exactly as plain ``EXPLAIN`` always did.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExplainNode", "render_text"]


def _format_rows(value: float) -> str:
    """Cardinalities render as integers when integral, else 1 decimal."""
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


@dataclass
class ExplainNode:
    """One rendered operator (or logical step) of a query plan."""

    op: str
    detail: str = ""
    est_rows: float | None = None
    actual_rows: int | None = None
    #: Times the operator's per-row work ran (ANALYZE only): index
    #: probes for a bind join, seedings/expansions for Cypher, 1 for a
    #: one-shot scan or hash build.
    actual_loops: int | None = None
    #: Inclusive wall time of the subtree in milliseconds (ANALYZE only).
    wall_ms: float | None = None
    children: tuple["ExplainNode", ...] = ()
    extras: dict[str, object] = field(default_factory=dict)

    def label(self) -> str:
        """The one-line rendering of this node."""
        parts = [self.op]
        if self.detail:
            parts.append(self.detail)
        cards = []
        if self.est_rows is not None:
            cards.append(f"est={_format_rows(self.est_rows)}")
        if self.actual_rows is not None:
            cards.append(f"act={self.actual_rows}")
        if self.actual_loops is not None:
            cards.append(f"loops={self.actual_loops}")
        if self.wall_ms is not None:
            cards.append(f"time={self.wall_ms:.3f}ms")
        if cards:
            parts.append(f"({' '.join(cards)})")
        return " ".join(parts)

    def to_dict(self) -> dict:
        """A JSON-friendly snapshot of the subtree."""
        data: dict[str, object] = {"op": self.op}
        if self.detail:
            data["detail"] = self.detail
        if self.est_rows is not None:
            data["est_rows"] = round(self.est_rows, 3)
        if self.actual_rows is not None:
            data["actual_rows"] = self.actual_rows
        if self.actual_loops is not None:
            data["actual_loops"] = self.actual_loops
        if self.wall_ms is not None:
            data["wall_ms"] = round(self.wall_ms, 3)
        if self.extras:
            data.update(self.extras)
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    def walk(self):
        """Yield every node of the subtree, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


def render_text(root: ExplainNode) -> str:
    """Render an explain tree with box-drawing connectors.

    The layout is deterministic (wall times excepted, which only appear
    under ANALYZE), so golden tests can pin plan shape, operator order,
    and cardinalities.
    """
    lines: list[str] = [root.label()]

    def walk(node: ExplainNode, prefix: str) -> None:
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            connector = "└─ " if last else "├─ "
            lines.append(prefix + connector + child.label())
            walk(child, prefix + ("   " if last else "│  "))

    walk(root, "")
    return "\n".join(lines)
