"""Cost-based planning and physical operators for SPARQL BGPs.

The planner replaces the evaluator's per-binding greedy heuristic with
plan-time join ordering: starting from the cheapest standalone pattern,
it greedily appends the connected pattern with the smallest estimated
per-binding cardinality, choosing between an index nested-loop probe
(:class:`BindJoin`, the naive evaluator's strategy) and a
:class:`HashJoin` on the shared variables by a simple per-row cost
model.  Disconnected patterns become hash-join cartesian products
instead of per-binding rescans.

Everything downstream of the BGP (OPTIONAL, UNION, FILTER, projection,
DISTINCT, ORDER BY, LIMIT) is evaluated by the engine's existing code,
so planner-on and planner-off runs are result-identical by
construction; the differential fuzz oracle asserts it by test.
"""

from __future__ import annotations

from collections.abc import Iterator

from ... import obs
from ...rdf.graph import Graph
from ...rdf.terms import Term
from ..sparql.ast import SelectQuery, TriplePattern, Var
from .cache import PlanCache
from .explain import ExplainNode
from .operator import PhysicalOperator
from .stats import FeedbackStore, GraphCatalog
from .vectorized import (
    DEFAULT_BATCH_SIZE,
    EXEC_MODES,
    REPLAN_THRESHOLD,
    AdaptiveBGP,
    build_batched_bgp,
)

__all__ = [
    "BindJoin",
    "HashJoin",
    "PatternScan",
    "SparqlOperator",
    "SparqlPlanner",
    "explain_select",
    "flush_operator_obs",
]

Binding = dict[str, Term]

# Relative per-row cost weights of the physical operators.  A bind-join
# probe pays an index lookup per input row; a hash join pays a one-off
# build over the standalone scan plus a cheap per-row probe.
COST_INDEX_PROBE = 4.0
COST_HASH_PROBE = 1.0
COST_HASH_BUILD = 2.0
COST_EMIT = 1.0


class SparqlOperator(PhysicalOperator):
    """An iterator-model physical operator over solution bindings.

    ``run`` restarts the operator (call ``prepare`` on the root first)
    and yields bindings; ``actual_rows``/``actual_loops``/``wall_ns``
    hold the run-time profile of the most recent execution, for
    ``EXPLAIN`` and ``EXPLAIN ANALYZE`` (see
    :class:`~repro.query.plan.operator.PhysicalOperator`).
    """

    def execute(self, stats=None) -> Iterator[Binding]:
        raise NotImplementedError


class PatternScan(SparqlOperator):
    """Leaf: match one triple pattern against the graph's indexes."""

    op = "Scan"

    def __init__(self, graph: Graph, pattern: TriplePattern, est_rows: float):
        super().__init__(est_rows)
        self.graph = graph
        self.pattern = pattern

    def detail(self) -> str:
        return str(self.pattern)

    def execute(self, stats=None) -> Iterator[Binding]:
        from ..sparql.evaluator import _match_pattern

        self.actual_loops += 1
        for binding in _match_pattern(self.graph, self.pattern, {}, stats):
            self.actual_rows += 1
            yield binding


class BindJoin(SparqlOperator):
    """Index nested-loop join: probe the pattern once per input binding."""

    op = "BindJoin"

    def __init__(
        self,
        child: SparqlOperator,
        graph: Graph,
        pattern: TriplePattern,
        est_rows: float,
    ):
        super().__init__(est_rows, (child,))
        self.graph = graph
        self.pattern = pattern

    def detail(self) -> str:
        return str(self.pattern)

    def execute(self, stats=None) -> Iterator[Binding]:
        from ..sparql.evaluator import _match_pattern

        for binding in self.children[0].run(stats):
            self.actual_loops += 1
            for extended in _match_pattern(self.graph, self.pattern, binding, stats):
                self.actual_rows += 1
                yield extended


class HashJoin(SparqlOperator):
    """Hash join on the shared variables (cartesian when none)."""

    op = "HashJoin"

    def __init__(
        self,
        probe: SparqlOperator,
        build: SparqlOperator,
        key: tuple[str, ...],
        est_rows: float,
    ):
        super().__init__(est_rows, (probe, build))
        self.key = key

    def detail(self) -> str:
        if not self.key:
            return "cartesian"
        return "on " + ", ".join(f"?{name}" for name in self.key)

    def execute(self, stats=None) -> Iterator[Binding]:
        self.actual_loops += 1
        key = self.key
        table: dict[tuple, list[Binding]] = {}
        for binding in self.children[1].run(stats):
            table.setdefault(tuple(binding[k] for k in key), []).append(binding)
        for binding in self.children[0].run(stats):
            for match in table.get(tuple(binding[k] for k in key), ()):
                self.actual_rows += 1
                yield {**binding, **match}


class SparqlPlanner:
    """Plans and executes basic graph patterns for one graph.

    Args:
        graph: the graph queried (statistics come from its counters).
        force_join: ``"hash"`` / ``"nested"`` forces the join operator
            (used by the differential harness); None applies the cost
            model.
        cache_size: LRU plan-cache capacity.
        exec_mode: ``"iterator"`` (default), ``"batched"`` (vectorized
            columnar operators), or ``"adaptive"`` (batched plus
            mid-query re-planning); see :mod:`repro.query.plan.vectorized`.
        batch_size: rows per batch for the vectorized modes.
        replan_threshold: stage q-error past which adaptive execution
            re-plans the remaining joins.
    """

    def __init__(
        self,
        graph: Graph,
        force_join: str | None = None,
        cache_size: int = 128,
        exec_mode: str = "iterator",
        batch_size: int | None = None,
        replan_threshold: float = REPLAN_THRESHOLD,
    ):
        if force_join not in (None, "hash", "nested"):
            raise ValueError(f"unknown force_join {force_join!r}")
        if exec_mode not in EXEC_MODES:
            raise ValueError(f"unknown exec_mode {exec_mode!r}")
        self.graph = graph
        self.catalog = GraphCatalog(graph)
        self.cache = PlanCache(cache_size)
        self.force_join = force_join
        self.exec_mode = exec_mode
        self.batch_size = batch_size or DEFAULT_BATCH_SIZE
        self.replan_threshold = replan_threshold
        #: Re-plan events of the last adaptive execution (dicts with
        #: stage_est / actual / q_error / remaining).
        self.last_replans: list[dict] = []
        #: Observed-cardinality feedback, keyed by plan-cache key.
        self.feedback = FeedbackStore("sparql")
        #: Explain snapshot of the last executed BGP plan (set by the
        #: evaluator once the plan's iterator is fully consumed).
        self.last_explain: ExplainNode | None = None
        self.last_plan: SparqlOperator | None = None
        #: Plan-cache key of the last planned BGP (feedback-store key).
        self.last_key: tuple | None = None
        #: Whether the last planned BGP came from the plan cache.
        self.last_cache_hit: bool | None = None
        obs.register_plan_cache("sparql", self.cache)

    def plan_bgp(self, patterns: list[TriplePattern]) -> SparqlOperator:
        """The (cached) physical plan for a basic graph pattern."""
        version = self.catalog.version
        key = (
            version,
            self.force_join,
            self.exec_mode,
            self.batch_size,
            "\x1f".join(str(p) for p in patterns),
        )
        plan = self.cache.get(key)
        hit = plan is not None
        if plan is None:
            plan = self._build(patterns)
            self.cache.put(key, plan, version=version)
        self.last_key = key
        self.last_cache_hit = hit
        if obs.enabled():
            with obs.span("sparql.plan", cache_hit=hit, patterns=len(patterns)):
                pass
        obs.get_metrics().counter(
            "repro_plan_cache_total", help="plan cache lookups"
        ).inc(1, engine="sparql", result="hit" if hit else "miss")
        return plan

    def execute_bgp(
        self,
        patterns: list[TriplePattern],
        stats=None,
        analyze: bool = False,
    ) -> Iterator[Binding]:
        """Plan and run a BGP, yielding solution bindings."""
        plan = self.plan_bgp(patterns)
        self.last_plan = plan
        plan.prepare(analyze)
        if stats is not None:
            # The plan-time join order plays the role of the naive
            # evaluator's per-binding greedy selections: surface the
            # same selectivity profile (bound positions per chosen
            # pattern) so traces stay comparable across strategies.
            profile = getattr(plan, "selectivity_profile", ())
            stats.selections += len(profile)
            for concrete in profile:
                stats.selectivity[concrete] += 1
        return plan.run(stats)

    # ------------------------------------------------------------------ #
    # Plan construction
    # ------------------------------------------------------------------ #

    def _build(self, patterns: list[TriplePattern]) -> PhysicalOperator:
        if self.exec_mode == "adaptive":
            return AdaptiveBGP(self, patterns)
        if self.exec_mode == "batched":
            return build_batched_bgp(self, patterns)
        catalog = self.catalog
        remaining = list(range(len(patterns)))
        bound: set[str] = set()

        def concrete_positions(pattern: TriplePattern) -> int:
            return sum(
                1
                for term in (pattern.s, pattern.p, pattern.o)
                if not isinstance(term, Var) or term.name in bound
            )

        profile: list[int] = []
        first = min(
            remaining,
            key=lambda i: (catalog.estimate_pattern(patterns[i], bound), i),
        )
        est = catalog.estimate_pattern(patterns[first], set())
        profile.append(concrete_positions(patterns[first]))
        plan: SparqlOperator = PatternScan(self.graph, patterns[first], est)
        bound |= patterns[first].variables()
        remaining.remove(first)
        out_est = est

        while remaining:
            connected = [i for i in remaining if patterns[i].variables() & bound]
            pool = connected or remaining
            index = min(
                pool,
                key=lambda i: (catalog.estimate_pattern(patterns[i], bound), i),
            )
            pattern = patterns[index]
            profile.append(concrete_positions(pattern))
            shared = tuple(sorted(pattern.variables() & bound))
            per_binding = catalog.estimate_pattern(pattern, bound)
            standalone = catalog.estimate_pattern(pattern, set())
            next_est = out_est * per_binding
            if self.force_join == "hash":
                use_hash = True
            elif self.force_join == "nested":
                use_hash = False
            elif not shared:
                # A per-binding rescan of a disconnected pattern is never
                # cheaper than building its scan once.
                use_hash = True
            else:
                bind_cost = out_est * COST_INDEX_PROBE + next_est * COST_EMIT
                hash_cost = (
                    standalone * COST_HASH_BUILD
                    + out_est * COST_HASH_PROBE
                    + next_est * COST_EMIT
                )
                use_hash = hash_cost < bind_cost
            if use_hash:
                build = PatternScan(self.graph, pattern, standalone)
                plan = HashJoin(plan, build, shared, next_est)
            else:
                plan = BindJoin(plan, self.graph, pattern, next_est)
            bound |= pattern.variables()
            out_est = next_est
            remaining.remove(index)
        plan.selectivity_profile = tuple(profile)
        return plan


# --------------------------------------------------------------------- #
# EXPLAIN assembly and observability
# --------------------------------------------------------------------- #

def explain_select(
    query: SelectQuery,
    plan: SparqlOperator | ExplainNode | None,
    result_rows: int,
) -> ExplainNode:
    """Wrap a BGP plan tree with the query's logical tail.

    The wrapper nodes mirror the evaluator's fixed execution order:
    BGP -> UNION -> OPTIONAL -> FILTER -> projection/aggregation ->
    DISTINCT -> ORDER BY -> LIMIT.
    """
    if plan is None:
        node = ExplainNode("EmptyPattern", est_rows=1.0)
    elif isinstance(plan, ExplainNode):
        node = plan
    else:
        node = plan.explain()
    if query.unions:
        node = ExplainNode(
            "Union", f"{len(query.unions)} alternatives", children=(node,)
        )
    for group in query.optionals:
        node = ExplainNode(
            "OptionalJoin", f"{len(group)} patterns", children=(node,)
        )
    if query.filters:
        node = ExplainNode(
            "Filter", f"{len(query.filters)} predicates", children=(node,)
        )
    if query.ask:
        node = ExplainNode("Ask", children=(node,))
    elif query.count is not None:
        node = ExplainNode("Aggregate", f"count(*) AS ?{query.count}", children=(node,))
    else:
        projected = [v.name for v in query.variables] or query.all_variables()
        node = ExplainNode(
            "Project", ", ".join(f"?{name}" for name in projected), children=(node,)
        )
        if query.distinct:
            node = ExplainNode("Distinct", children=(node,))
    if query.order_by:
        keys = ", ".join(
            f"?{key.var.name}{' DESC' if key.descending else ''}"
            for key in query.order_by
        )
        node = ExplainNode("Sort", keys, children=(node,))
    if query.limit is not None:
        node = ExplainNode("Limit", str(query.limit), children=(node,))
    node.actual_rows = result_rows
    return node


def flush_operator_obs(lang: str, root: ExplainNode) -> None:
    """Emit per-operator spans and row counters after an execution.

    Physical operators interleave their work (iterator model), so their
    timings are not separable; what *is* exact are the per-operator
    cardinalities, flushed here as zero-length spans under the current
    evaluate span plus a labelled metrics counter.
    """
    metrics = obs.get_metrics()
    counter = metrics.counter(
        "repro_plan_operator_rows_total",
        help="rows produced by physical plan operators",
    )
    for node in root.walk():
        if node.actual_rows is None:
            continue
        counter.inc(node.actual_rows, lang=lang, op=node.op)
        if obs.enabled():
            with obs.span(
                f"{lang}.plan.operator",
                op=node.op,
                detail=node.detail,
                est_rows=node.est_rows,
                actual_rows=node.actual_rows,
            ):
                pass
