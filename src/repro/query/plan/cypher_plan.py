"""Cost-based planning and physical operators for Cypher MATCH clauses.

The naive engine matches each path left-to-right, seeding from the label
index only when the *start* pattern is labelled and falling back to a
full node scan otherwise.  The planner instead:

* seeds each path at its cheapest node pattern — a bound variable, a
  property-index hit, or the smallest label — and expands the path
  forward and backward from there (a backward hop flips the traversal
  direction; the pattern semantics are unchanged);
* orders the paths of a multi-path MATCH by estimated cardinality,
  connected paths first;
* decorrelates a path from the incoming rows with a :class:`PathHashJoin`
  (build the path once, probe per row) when the cost model or the
  ``force_join`` knob says so — a disconnected path always hash-joins,
  replacing the naive per-row rescan with one cartesian build.

The operator pipeline threads ``(binding, anchor, pivot)`` items:
``anchor`` is the node the next expansion starts from and ``pivot``
remembers the seed so a forward chain can rewind before expanding
backward.  All per-edge/per-node constraint checks are shared with the
naive evaluator (``CypherEngine._neighbours`` / ``_node_matches``), so
both strategies accept exactly the same matches.

Null caveat: a variable bound to null (from OPTIONAL MATCH) is treated
as *unbound* by Cypher pattern matching, which a hash-join key cannot
express — the planner detects nullable shared variables per execution
and falls back to the correlated pipeline for those rows.
"""

from __future__ import annotations

from collections.abc import Iterator

from ... import obs
from ...pg.model import PGNode
from ...pg.store import PropertyGraphStore
from ..cypher.ast import MatchClause, NodePattern, PathPattern, RelPattern
from .cache import PlanCache
from .explain import ExplainNode
from .operator import PhysicalOperator
from .stats import FeedbackStore, SeedChoice, StoreCatalog
from .vectorized import (
    DEFAULT_BATCH_SIZE,
    EXEC_MODES,
    REPLAN_THRESHOLD,
    AdaptiveMatchPlan,
    BatchMatchPlan,
    build_batched_match,
)

__all__ = [
    "CypherOperator",
    "CypherPlanner",
    "Expand",
    "InputRows",
    "MatchPlan",
    "PathHashJoin",
    "Pivot",
    "Seed",
]

Binding = dict[str, object]
#: A pipeline item: (binding, anchor node, pivot/seed node).
Item = tuple[Binding, PGNode | None, PGNode | None]

COST_HASH_BUILD = 2.0
COST_HASH_PROBE = 1.0

_FLIP = {"out": "in", "in": "out", "any": "any"}


def _flip(rel: RelPattern) -> RelPattern:
    """The same relationship pattern traversed from the other endpoint."""
    return RelPattern(rel.var, rel.types, _FLIP[rel.direction])


def _path_variables(path: PathPattern) -> set[str]:
    names = {node.var for node in path.node_patterns() if node.var is not None}
    names |= {rel.var for rel, _ in path.hops if rel.var is not None}
    return names


def _value_key(value: object):
    from ..cypher.evaluator import _value_key as key

    return key(value)


class CypherOperator(PhysicalOperator):
    """An iterator-model operator over ``(binding, anchor, pivot)`` items.

    Run-time bookkeeping (``actual_rows``/``actual_loops``/``wall_ns``,
    the analyze timing wrapper, and the ``ExplainNode`` snapshot) lives
    in :class:`~repro.query.plan.operator.PhysicalOperator`.
    """

    def execute(self, engine) -> Iterator[Item]:
        raise NotImplementedError


class InputRows(CypherOperator):
    """Source: the binding rows flowing in from the previous clause."""

    op = "Input"

    def __init__(self):
        super().__init__(None)
        self.rows: list[Binding] = []

    def execute(self, engine) -> Iterator[Item]:
        self.actual_loops += 1
        for binding in self.rows:
            self.actual_rows += 1
            yield binding, None, None


class ConstRow(CypherOperator):
    """Source: a single empty binding (hash-join build sides)."""

    op = "Const"

    def __init__(self):
        super().__init__(1.0)

    def execute(self, engine) -> Iterator[Item]:
        self.actual_loops += 1
        self.actual_rows += 1
        yield {}, None, None


class Seed(CypherOperator):
    """Bind one node pattern of a path via its chosen access path."""

    op = "Seed"

    def __init__(
        self,
        child: CypherOperator,
        store: PropertyGraphStore,
        pattern: NodePattern,
        choice: SeedChoice,
        est_rows: float,
    ):
        super().__init__(est_rows, (child,))
        self.store = store
        self.pattern = pattern
        self.choice = choice

    def detail(self) -> str:
        name = self.pattern.var or "_"
        return f"({name}) via {self.choice.describe()}"

    def _candidates(self, binding: Binding) -> Iterator[PGNode]:
        choice = self.choice
        if choice.mode == "bound":
            bound = binding.get(self.pattern.var)
            if isinstance(bound, PGNode):
                yield bound
            return
        if choice.mode == "prop":
            yield from self.store.nodes_by_property(choice.key, choice.value)
            return
        if choice.mode == "label":
            yield from self.store.nodes_with_label(choice.label)
            return
        yield from self.store.graph.nodes.values()

    def execute(self, engine) -> Iterator[Item]:
        from ..cypher.evaluator import _node_matches

        pattern = self.pattern
        bound_mode = self.choice.mode == "bound"
        for binding, _, _ in self.children[0].run(engine):
            self.actual_loops += 1
            for node in self._candidates(binding):
                if not _node_matches(node, pattern):
                    continue
                if pattern.var is not None and not bound_mode:
                    existing = binding.get(pattern.var)
                    if existing is not None:
                        # The variable was bound by an earlier path of
                        # this clause: enforce equality, as the naive
                        # evaluator's _candidate_starts does.
                        if not (isinstance(existing, PGNode) and existing.id == node.id):
                            continue
                        extended = binding
                    else:
                        extended = dict(binding)
                        extended[pattern.var] = node
                else:
                    extended = binding
                self.actual_rows += 1
                yield extended, node, node

    # NOTE on the "bound" mode: the naive evaluator treats a bound
    # variable that is not a node (or is null) as matching nothing,
    # which _candidates reproduces by yielding no candidate.


class Expand(CypherOperator):
    """Follow one hop of a path from the current anchor node.

    ``reverse=True`` traverses the hop from its right endpoint to its
    left one (the relationship pattern is direction-flipped; the far
    node pattern is the hop's left-hand node).
    """

    op = "Expand"

    def __init__(
        self,
        child: CypherOperator,
        rel: RelPattern,
        node: NodePattern,
        reverse: bool,
        est_rows: float,
    ):
        super().__init__(est_rows, (child,))
        self.rel = rel
        self.node = node
        self.reverse = reverse
        self.traverse_rel = _flip(rel) if reverse else rel

    def detail(self) -> str:
        types = "|".join(self.rel.types)
        rel = f"[:{types}]" if types else "[]"
        arrow = {"out": f"-{rel}->", "in": f"<-{rel}-", "any": f"-{rel}-"}[
            self.rel.direction
        ]
        far = f"({self.node.var or '_'})"
        if self.reverse:
            return f"{far}{arrow}(*)"
        return f"(*){arrow}{far}"

    def execute(self, engine) -> Iterator[Item]:
        from ..cypher.evaluator import _node_matches

        rel = self.traverse_rel
        rel_var = self.rel.var
        node_pattern = self.node
        for binding, anchor, pivot in self.children[0].run(engine):
            self.actual_loops += 1
            for edge, neighbour in engine._neighbours(anchor, rel):
                if not _node_matches(neighbour, node_pattern):
                    continue
                extended = binding
                if rel_var is not None:
                    bound = binding.get(rel_var)
                    if bound is not None and bound is not edge:
                        continue
                    extended = dict(extended)
                    extended[rel_var] = edge
                if node_pattern.var is not None:
                    bound = extended.get(node_pattern.var)
                    if bound is not None:
                        if not (isinstance(bound, PGNode) and bound.id == neighbour.id):
                            continue
                    else:
                        if extended is binding:
                            extended = dict(extended)
                        extended[node_pattern.var] = neighbour
                self.actual_rows += 1
                yield extended, neighbour, pivot


class Pivot(CypherOperator):
    """Rewind the anchor to the seed node (forward chain -> backward)."""

    op = "Pivot"

    def __init__(self, child: CypherOperator, est_rows: float | None):
        super().__init__(est_rows, (child,))

    def execute(self, engine) -> Iterator[Item]:
        self.actual_loops += 1
        for binding, _, pivot in self.children[0].run(engine):
            self.actual_rows += 1
            yield binding, pivot, pivot


class PathHashJoin(CypherOperator):
    """Decorrelate a path: build it once, probe per incoming row.

    The build side enumerates the path from a single empty binding; the
    probe joins on the value identities of the shared variables (node
    and edge identities compare by id, exactly like the correlated
    pipeline's identity checks).
    """

    op = "HashJoin"

    def __init__(
        self,
        probe: CypherOperator,
        build: CypherOperator,
        key: tuple[str, ...],
        est_rows: float | None,
    ):
        super().__init__(est_rows, (probe, build))
        self.key = key

    def detail(self) -> str:
        if not self.key:
            return "cartesian"
        return "on " + ", ".join(self.key)

    def execute(self, engine) -> Iterator[Item]:
        self.actual_loops += 1
        key = self.key
        table: dict[tuple, list[Binding]] = {}
        for binding, _, _ in self.children[1].run(engine):
            table.setdefault(
                tuple(_value_key(binding.get(k)) for k in key), []
            ).append(binding)
        for binding, _, _ in self.children[0].run(engine):
            probe_key = tuple(_value_key(binding.get(k)) for k in key)
            for match in table.get(probe_key, ()):
                self.actual_rows += 1
                yield {**binding, **match}, None, None


class MatchPlan:
    """A compiled (and cacheable) physical plan for one MATCH clause."""

    def __init__(self, input_op: InputRows, root: CypherOperator):
        self.input = input_op
        self.root = root

    def execute(
        self, rows: list[Binding], engine, analyze: bool = False
    ) -> list[Binding]:
        self.input.rows = rows
        self.root.prepare(analyze)
        return [binding for binding, _, _ in self.root.run(engine)]

    def explain(self) -> ExplainNode:
        return self.root.explain()


class CypherPlanner:
    """Plans MATCH clauses for one :class:`PropertyGraphStore`.

    Args:
        store: the store queried.
        force_join: ``"hash"`` / ``"nested"`` forces path decorrelation
            on/off (nullable shared variables still fall back to the
            correlated pipeline for correctness); None applies the cost
            model.
        cache_size: LRU plan-cache capacity.
        exec_mode: ``"iterator"`` (default), ``"batched"`` (vectorized
            columnar operators), or ``"adaptive"`` (batched plus
            mid-query re-planning); see :mod:`repro.query.plan.vectorized`.
        batch_size: rows per batch for the vectorized modes.
        replan_threshold: stage q-error past which adaptive execution
            re-plans the remaining paths.
    """

    def __init__(
        self,
        store: PropertyGraphStore,
        force_join: str | None = None,
        cache_size: int = 128,
        exec_mode: str = "iterator",
        batch_size: int | None = None,
        replan_threshold: float = REPLAN_THRESHOLD,
    ):
        if force_join not in (None, "hash", "nested"):
            raise ValueError(f"unknown force_join {force_join!r}")
        if exec_mode not in EXEC_MODES:
            raise ValueError(f"unknown exec_mode {exec_mode!r}")
        self.store = store
        self.catalog = StoreCatalog(store)
        self.cache = PlanCache(cache_size)
        self.force_join = force_join
        self.exec_mode = exec_mode
        self.batch_size = batch_size or DEFAULT_BATCH_SIZE
        self.replan_threshold = replan_threshold
        #: Re-plan events of the last adaptive query (dicts with
        #: stage_est / actual / q_error / remaining).
        self.last_replans: list[dict] = []
        #: Observed-cardinality feedback, keyed by plan-cache key.
        self.feedback = FeedbackStore("cypher")
        #: Explain snapshots of the clauses executed by the last query.
        self.last_explains: list[ExplainNode] = []
        #: Plan-cache key of the last executed MATCH (feedback-store key).
        self.last_key: tuple | None = None
        #: Plan-cache keys and hit/miss tallies of the current query's
        #: MATCH clauses (reset with the explains; the workload tracker
        #: joins q-error and cache behaviour per statement from these).
        self.last_keys: list[tuple] = []
        self.last_cache_hits = 0
        self.last_cache_misses = 0
        obs.register_plan_cache("cypher", self.cache)

    def reset_explains(self) -> None:
        self.last_explains = []
        self.last_keys = []
        self.last_cache_hits = 0
        self.last_cache_misses = 0
        self.last_replans = []

    def _lookup_plan(self, rows: list[Binding], clause: MatchClause):
        """Plan-cache lookup (build on miss) with shared bookkeeping."""
        bound = frozenset(rows[0].keys()) if rows else frozenset()
        clause_vars = set(clause.pattern_variables())
        nullable = frozenset(
            name
            for name in (clause_vars & bound)
            if any(row.get(name) is None for row in rows)
        )
        version = self.catalog.version
        key = (
            version,
            self.force_join,
            self.exec_mode,
            self.batch_size,
            bound,
            nullable,
            repr(clause.paths),
        )
        plan = self.cache.get(key)
        hit = plan is not None
        if plan is None:
            plan = self._build(clause, set(bound), nullable)
            self.cache.put(key, plan, version=version)
        self.last_key = key
        self.last_keys.append(key)
        if hit:
            self.last_cache_hits += 1
        else:
            self.last_cache_misses += 1
        if obs.enabled():
            with obs.span("cypher.plan", cache_hit=hit, paths=len(clause.paths)):
                pass
        obs.get_metrics().counter(
            "repro_plan_cache_total", help="plan cache lookups"
        ).inc(1, engine="cypher", result="hit" if hit else "miss")
        return key, plan

    def _record_plan(self, key, plan) -> None:
        snapshot = plan.explain()
        self.last_explains.append(snapshot)
        self.feedback.record(key, snapshot)
        from .sparql_plan import flush_operator_obs

        flush_operator_obs("cypher", snapshot)

    def execute_match(
        self,
        rows: list[Binding],
        clause: MatchClause,
        engine,
        analyze: bool = False,
    ) -> list[Binding]:
        """Plan and run the (non-optional) paths of a MATCH clause."""
        key, plan = self._lookup_plan(rows, clause)
        result = plan.execute(rows, engine, analyze)
        self._record_plan(key, plan)
        return result

    def execute_match_projected(
        self, clause: MatchClause, items, engine, analyze: bool = False
    ) -> list[tuple] | None:
        """Run a whole-query MATCH and project RETURN items batch-wise.

        Only available in batched mode (the caller checks ``exec_mode``);
        property and variable columns are materialized straight from the
        interned-id columns, so no per-row binding dicts are built.
        Returns None when the cached plan turns out not to be batched.
        """
        key, plan = self._lookup_plan([{}], clause)
        if not isinstance(plan, BatchMatchPlan):
            return None
        result = plan.execute_projected([{}], engine, items, analyze)
        self._record_plan(key, plan)
        return result

    # ------------------------------------------------------------------ #
    # Plan construction
    # ------------------------------------------------------------------ #

    def _build(
        self, clause: MatchClause, bound: set[str], nullable: frozenset[str]
    ):
        if self.exec_mode == "adaptive":
            return AdaptiveMatchPlan(self, clause, bound, nullable)
        if self.exec_mode == "batched":
            return build_batched_match(self, clause, bound, nullable)
        input_op = InputRows()
        current: CypherOperator = input_op
        remaining = list(range(len(clause.paths)))
        in_est = 1.0  # estimates are per incoming row

        while remaining:
            connected = [
                i for i in remaining if _path_variables(clause.paths[i]) & bound
            ]
            pool = connected or remaining

            def correlated_est(i: int) -> float:
                return self._path_estimate(clause.paths[i], bound)

            index = min(pool, key=lambda i: (correlated_est(i), i))
            path = clause.paths[index]
            path_vars = _path_variables(path)
            shared = tuple(sorted(path_vars & bound))
            per_row_est = self._path_estimate(path, bound)
            standalone_est = self._path_estimate(path, set())
            next_est = in_est * per_row_est

            if self.force_join == "hash":
                use_hash = not (set(shared) & nullable)
            elif self.force_join == "nested":
                use_hash = False
            elif not shared:
                use_hash = True
            elif set(shared) & nullable:
                use_hash = False
            else:
                bind_cost = in_est * per_row_est
                hash_cost = (
                    standalone_est * COST_HASH_BUILD + in_est * COST_HASH_PROBE
                )
                use_hash = hash_cost < bind_cost

            if use_hash:
                build = self._compile_path(path, set(), ConstRow(), 1.0)
                current = PathHashJoin(current, build, shared, next_est)
            else:
                current = self._compile_path(path, bound, current, in_est)
            bound |= path_vars
            in_est = next_est
            remaining.remove(index)
        return MatchPlan(input_op, current)

    def _seed_position(
        self, path: PathPattern, bound: set[str]
    ) -> tuple[int, SeedChoice]:
        """The node-pattern index with the cheapest access path."""
        best_index = 0
        best_choice: SeedChoice | None = None
        for index, pattern in enumerate(path.node_patterns()):
            choice = self.catalog.seed_choice(pattern, bound)
            if best_choice is None or choice.est < best_choice.est:
                best_index, best_choice = index, choice
        return best_index, best_choice

    def _path_estimate(self, path: PathPattern, bound: set[str]) -> float:
        """Expected matches of the path for one row with ``bound`` bound."""
        seed_index, choice = self._seed_position(path, bound)
        est = choice.est
        nodes = path.node_patterns()
        for i in range(seed_index, len(path.hops)):
            rel, _ = path.hops[i]
            est *= self.catalog.hop_fanout(rel) * self.catalog.node_selectivity(
                nodes[i + 1]
            )
        for i in range(seed_index - 1, -1, -1):
            rel, _ = path.hops[i]
            est *= self.catalog.hop_fanout(rel) * self.catalog.node_selectivity(
                nodes[i]
            )
        return est

    def _compile_path(
        self,
        path: PathPattern,
        bound: set[str],
        child: CypherOperator,
        in_est: float,
    ) -> CypherOperator:
        seed_index, choice = self._seed_position(path, bound)
        nodes = path.node_patterns()
        est = in_est * choice.est
        current: CypherOperator = Seed(
            child, self.store, nodes[seed_index], choice, est
        )
        for i in range(seed_index, len(path.hops)):
            rel, node = path.hops[i]
            est *= self.catalog.hop_fanout(rel) * self.catalog.node_selectivity(node)
            current = Expand(current, rel, node, reverse=False, est_rows=est)
        if seed_index > 0:
            current = Pivot(current, est)
            for i in range(seed_index - 1, -1, -1):
                rel, _ = path.hops[i]
                far = nodes[i]
                est *= self.catalog.hop_fanout(rel) * self.catalog.node_selectivity(far)
                current = Expand(current, rel, far, reverse=True, est_rows=est)
        return current
