"""Vectorized batched execution with feedback-driven adaptive re-planning.

The iterator-model operators of :mod:`sparql_plan` and
:mod:`cypher_plan` move one Python dict per row.  The operators here
move fixed-size *batches* of interned-ID bindings instead: a batch is a
set of columnar ``array('q')`` columns (one per variable) over the
storage substrate's dense integer ids, so the hot join loops are int
comparisons and C-level ``array`` extends (one
:meth:`~repro.storage.postings.IntPostings.extend_into` per index
bucket) rather than dict allocation per row.  Terms and graph elements
are decoded back to objects only at plan boundaries — ORDER BY,
projection, FILTER and the clause tail all run on the engines'
existing code, which keeps every execution mode bag-identical by
construction (and by the differential fuzz oracle).

Two modes are built on the same operators:

* ``batched`` — the planner's static join order, executed batch-wise
  (streaming: operators pull batches from their child).
* ``adaptive`` — executes one join stage at a time against
  *materialized* batches; at every stage boundary the observed
  cardinality is compared with the estimate and, past a q-error
  threshold (:data:`REPLAN_THRESHOLD`), the *remaining* join sequence
  is re-planned with the actuals substituted (observed input
  cardinality, and for SPARQL per-binding cardinalities re-sampled
  from the materialized state) before execution resumes.  Re-plans
  are counted in ``repro_plan_replans_total``, surfaced as ``Replan``
  nodes in EXPLAIN / EXPLAIN ANALYZE, and recorded on the planner's
  ``last_replans`` for the CLI and tests.

Re-planned executions stay keyed to the *original* plan-cache key:
the adaptive driver never creates a new cache entry mid-query, so the
``FeedbackStore`` q-error history of a statement does not fragment
across re-plans.
"""

from __future__ import annotations

from array import array
from itertools import repeat as _repeat

from ... import obs
from ...rdf.terms import IRI, Literal
from ...storage.postings import IntPostings
from ..sparql.ast import TriplePattern, Var
from .explain import ExplainNode
from .operator import PhysicalOperator
from .stats import q_error

__all__ = [
    "AdaptiveBGP",
    "AdaptiveMatchPlan",
    "BatchConst",
    "BatchExpand",
    "BatchFilter",
    "BatchHashJoin",
    "BatchInput",
    "BatchMatchPlan",
    "BatchBindJoin",
    "BatchPathHashJoin",
    "BatchPivot",
    "BatchScan",
    "BatchSeed",
    "BatchedBGP",
    "DEFAULT_BATCH_SIZE",
    "EXEC_MODES",
    "REPLAN_THRESHOLD",
    "build_batched_bgp",
    "build_batched_match",
]

#: Rows per batch: large enough to amortize the per-batch Python
#: overhead, small enough to stay cache-resident (8 KiB per column).
DEFAULT_BATCH_SIZE = 1024

#: Stage-boundary q-error past which the adaptive driver re-plans the
#: remaining join sequence.
REPLAN_THRESHOLD = 4.0

EXEC_MODES = ("iterator", "batched", "adaptive")

#: Interned-id sentinel for "can never match" (real ids are >= 0).
_DEAD = -3
#: Re-sampled per-binding probes taken from the materialized state on
#: an adaptive re-plan.
_REPLAN_SAMPLES = 32


def _gather(arr: array, sel) -> array:
    """``arr`` indexed by every position in ``sel``, as a new array."""
    return array("q", map(arr.__getitem__, sel))


def _fmt_rows(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.1f}"


def _replan_counter():
    return obs.get_metrics().counter(
        "repro_plan_replans_total", help="mid-query adaptive re-plans"
    )


def _replan_node(kind: str, est: float, actual: int, err: float,
                 remaining: int, chain: ExplainNode) -> ExplainNode:
    detail = (
        f"est={_fmt_rows(est)} act={actual} q={err:.1f}; "
        f"re-planned {remaining} remaining {kind}"
    )
    return ExplainNode("Replan", detail, children=(chain,))


def _splice(node: ExplainNode, replacement: ExplainNode) -> ExplainNode:
    """Replace the leftmost ``Batches`` leaf with ``replacement``.

    Adaptive stages execute against a materialized buffer; for EXPLAIN
    the buffer node is swapped back out for the explain chain of the
    stages that produced it, so the rendered tree reads like one plan.
    """
    if node.op == "Batches":
        return replacement
    if not node.children:
        return node
    node.children = (_splice(node.children[0], replacement),) + node.children[1:]
    return node


# ===================================================================== #
# SPARQL: columnar batches of interned term ids
# ===================================================================== #

class TermBatch:
    """A batch of solution bindings: one ``array('q')`` per variable."""

    __slots__ = ("cols", "n")

    def __init__(self, cols: dict[str, array], n: int):
        self.cols = cols
        self.n = n


class _CompiledPattern:
    """A triple pattern resolved against the interner, probe-ready.

    Each position is compiled to a constant id (``_DEAD`` when the
    term is absent from the graph or statically invalid), a reference
    to a bound input column, or a free output variable.  Matching
    writes whole index buckets into the output columns.
    """

    __slots__ = (
        "graph", "pattern", "specs", "out_names", "writes", "eq_groups",
        "_pred_memo", "_subj_memo",
    )

    def __init__(self, graph, pattern: TriplePattern, bound_cols):
        self.graph = graph
        self.pattern = pattern
        lookup = graph._terms.lookup
        specs = []
        out: list[str] = []
        positions: dict[str, list[int]] = {}
        for pos, term in enumerate((pattern.s, pattern.p, pattern.o)):
            if isinstance(term, Var):
                if term.name in bound_cols:
                    specs.append(("col", term.name))
                else:
                    specs.append(("var", term.name))
                    positions.setdefault(term.name, []).append(pos)
                    if term.name not in out:
                        out.append(term.name)
            else:
                tid = lookup(term)
                if tid is None:
                    tid = _DEAD
                if pos == 1 and not isinstance(term, IRI):
                    tid = _DEAD  # a non-IRI predicate can never match
                if pos == 0 and isinstance(term, Literal):
                    tid = _DEAD  # a literal subject can never match
                specs.append(("const", tid))
        self.specs = tuple(specs)
        self.out_names = tuple(out)
        #: (name, position) for the first occurrence of each free var.
        self.writes = tuple((name, plist[0]) for name, plist in positions.items())
        #: Positions that must carry equal ids (repeated free variable).
        self.eq_groups = tuple(
            tuple(plist) for plist in positions.values() if len(plist) > 1
        )
        self._pred_memo: dict[int, bool] = {}
        self._subj_memo: dict[int, bool] = {}

    def pred_ok(self, tid: int) -> bool:
        ok = self._pred_memo.get(tid)
        if ok is None:
            ok = self._pred_memo[tid] = isinstance(self.graph._terms.term(tid), IRI)
        return ok

    def subj_ok(self, tid: int) -> bool:
        ok = self._subj_memo.get(tid)
        if ok is None:
            ok = self._subj_memo[tid] = not isinstance(
                self.graph._terms.term(tid), Literal
            )
        return ok

    def static_ids(self):
        """(si, pi, oi) for a standalone scan: const ids or None."""
        return tuple(
            spec[1] if spec[0] == "const" else None for spec in self.specs
        )

    def match_into(self, si, pi, oi, out_cols: dict[str, array]) -> int:
        """Append every match to the free-variable columns; return count."""
        if si == _DEAD or pi == _DEAD or oi == _DEAD:
            return 0
        graph = self.graph
        total = 0
        writes = self.writes
        if not self.eq_groups:
            for srcs_s, srcs_p, srcs_o, cnt in _buckets(
                graph._spo, graph._pos, graph._osp, si, pi, oi
            ):
                srcs = (srcs_s, srcs_p, srcs_o)
                for name, pos in writes:
                    src = srcs[pos]
                    col = out_cols[name]
                    if isinstance(src, int):
                        col.extend(_repeat(src, cnt))
                    else:
                        src.extend_into(col)
                total += cnt
            return total
        # Repeated free variable (e.g. ``?x ?p ?x``): materialize the
        # bucket row-wise and keep only rows where the positions agree.
        eq_groups = self.eq_groups
        for srcs_s, srcs_p, srcs_o, cnt in _buckets(
            graph._spo, graph._pos, graph._osp, si, pi, oi
        ):
            srcs = (srcs_s, srcs_p, srcs_o)
            seqs = [
                src if isinstance(src, int) else src.sorted_array()
                for src in srcs
            ]

            def at(pos: int, j: int):
                seq = seqs[pos]
                return seq if isinstance(seq, int) else seq[j]

            for j in range(cnt):
                ok = True
                for group in eq_groups:
                    first = at(group[0], j)
                    for pos in group[1:]:
                        if at(pos, j) != first:
                            ok = False
                            break
                    if not ok:
                        break
                if not ok:
                    continue
                for name, pos in writes:
                    out_cols[name].append(at(pos, j))
                total += 1
        return total


def _buckets(spo, pos_index, osp, si, pi, oi):
    """Index buckets matching ``(si, pi, oi)`` (``None`` = wildcard).

    Yields ``(s, p, o, count)`` where each position is either a
    concrete id or an :class:`IntPostings` run (at most one per
    bucket), mirroring :meth:`Graph.triples`' index selection.
    """
    if si is not None:
        by_p = spo.get(si)
        if by_p is None:
            return
        if pi is not None:
            objs = by_p.get(pi)
            if objs is None:
                return
            if oi is not None:
                if oi in objs:
                    yield si, pi, oi, 1
                return
            yield si, pi, objs, len(objs)
            return
        if oi is not None:
            preds = osp.get(oi, {}).get(si)
            if preds is None:
                return
            yield si, preds, oi, len(preds)
            return
        for pi2, objs in by_p.items():
            yield si, pi2, objs, len(objs)
        return
    if pi is not None:
        by_o = pos_index.get(pi)
        if by_o is None:
            return
        if oi is not None:
            subs = by_o.get(oi)
            if subs is None:
                return
            yield subs, pi, oi, len(subs)
            return
        for oi2, subs in by_o.items():
            yield subs, pi, oi2, len(subs)
        return
    if oi is not None:
        for si2, preds in osp.get(oi, {}).items():
            yield si2, preds, oi, len(preds)
        return
    for si2, by_p in spo.items():
        for pi2, objs in by_p.items():
            yield si2, pi2, objs, len(objs)


class SparqlBatchOperator(PhysicalOperator):
    """A physical operator yielding :class:`TermBatch` items."""

    def execute(self, stats=None):
        raise NotImplementedError


class BatchScan(SparqlBatchOperator):
    """Leaf: scan one triple pattern's index buckets into batches."""

    op = "BatchScan"

    def __init__(self, graph, pattern: TriplePattern, est_rows: float,
                 batch_size: int = DEFAULT_BATCH_SIZE):
        super().__init__(est_rows)
        self.graph = graph
        self.pattern = pattern
        self.batch_size = batch_size
        self.compiled = _CompiledPattern(graph, pattern, frozenset())

    def detail(self) -> str:
        return str(self.pattern)

    def execute(self, stats=None):
        self.actual_loops += 1
        compiled = self.compiled
        cols = {name: array("q") for name in compiled.out_names}
        si, pi, oi = compiled.static_ids()
        n = compiled.match_into(si, pi, oi, cols)
        self.actual_rows += n
        if stats is not None:
            stats.matches += n
        bs = self.batch_size
        for start in range(0, n, bs):
            stop = min(start + bs, n)
            yield TermBatch(
                {name: col[start:stop] for name, col in cols.items()},
                stop - start,
            )


class BatchBindJoin(SparqlBatchOperator):
    """Index nested-loop join, one index probe per input row."""

    op = "BatchBindJoin"

    def __init__(self, child, graph, pattern: TriplePattern,
                 bound_cols, est_rows: float):
        super().__init__(est_rows, (child,))
        self.graph = graph
        self.pattern = pattern
        self.compiled = _CompiledPattern(graph, pattern, frozenset(bound_cols))

    def detail(self) -> str:
        return str(self.pattern)

    def execute(self, stats=None):
        compiled = self.compiled
        specs = compiled.specs
        for batch in self.children[0].run(stats):
            n = batch.n
            if n == 0:
                continue
            cols = batch.cols
            srcs = [
                cols[spec[1]] if spec[0] == "col" else None for spec in specs
            ]
            sel = array("q")
            new_cols = {name: array("q") for name in compiled.out_names}
            for i in range(n):
                self.actual_loops += 1
                spec = specs[0]
                if spec[0] == "col":
                    si = srcs[0][i]
                    if not compiled.subj_ok(si):
                        continue
                else:
                    si = spec[1] if spec[0] == "const" else None
                spec = specs[1]
                if spec[0] == "col":
                    pi = srcs[1][i]
                    if not compiled.pred_ok(pi):
                        continue
                else:
                    pi = spec[1] if spec[0] == "const" else None
                spec = specs[2]
                oi = (
                    srcs[2][i] if spec[0] == "col"
                    else (spec[1] if spec[0] == "const" else None)
                )
                cnt = compiled.match_into(si, pi, oi, new_cols)
                if cnt:
                    sel.extend(_repeat(i, cnt))
            m = len(sel)
            if m == 0:
                continue
            out_cols = {name: _gather(col, sel) for name, col in cols.items()}
            out_cols.update(new_cols)
            self.actual_rows += m
            if stats is not None:
                stats.matches += m
            yield TermBatch(out_cols, m)


class BatchHashJoin(SparqlBatchOperator):
    """Hash join on the shared variables' interned ids."""

    op = "BatchHashJoin"

    def __init__(self, probe, build, key: tuple[str, ...], est_rows: float):
        super().__init__(est_rows, (probe, build))
        self.key = key

    def detail(self) -> str:
        if not self.key:
            return "cartesian"
        return "on " + ", ".join(f"?{name}" for name in self.key)

    def execute(self, stats=None):
        self.actual_loops += 1
        key = self.key
        build_cols: dict[str, array] = {}
        build_n = 0
        for batch in self.children[1].run(stats):
            for name, col in batch.cols.items():
                build_cols.setdefault(name, array("q")).extend(col)
            build_n += batch.n
        single = key[0] if len(key) == 1 else None
        table: dict = {}
        if single is not None:
            kcol = build_cols.get(single, array("q"))
            for j in range(build_n):
                table.setdefault(kcol[j], []).append(j)
        elif key:
            kcols = [build_cols[name] for name in key]
            for j in range(build_n):
                table.setdefault(tuple(col[j] for col in kcols), []).append(j)
        all_rows = list(range(build_n))
        for batch in self.children[0].run(stats):
            n = batch.n
            if n == 0:
                continue
            cols = batch.cols
            sel_p = array("q")
            sel_b = array("q")
            if not key:
                if build_n:
                    for i in range(n):
                        sel_p.extend(_repeat(i, build_n))
                        sel_b.extend(all_rows)
            elif single is not None:
                pcol = cols[single]
                for i in range(n):
                    hits = table.get(pcol[i])
                    if hits:
                        sel_p.extend(_repeat(i, len(hits)))
                        sel_b.extend(hits)
            else:
                pcols = [cols[name] for name in key]
                for i in range(n):
                    hits = table.get(tuple(col[i] for col in pcols))
                    if hits:
                        sel_p.extend(_repeat(i, len(hits)))
                        sel_b.extend(hits)
            m = len(sel_p)
            if m == 0:
                continue
            out_cols = {name: _gather(col, sel_p) for name, col in cols.items()}
            for name, col in build_cols.items():
                if name not in out_cols:
                    out_cols[name] = _gather(col, sel_b)
            self.actual_rows += m
            yield TermBatch(out_cols, m)


class _BufferedTermBatches(SparqlBatchOperator):
    """Source: materialized batches of the stages already executed."""

    op = "Batches"

    def __init__(self, batches, est_rows: float):
        super().__init__(est_rows)
        self.batches = batches

    def detail(self) -> str:
        return "materialized"

    def execute(self, stats=None):
        self.actual_loops += 1
        for batch in self.batches:
            self.actual_rows += batch.n
            yield batch


def _decode_term_batches(graph, batches, memo: dict):
    """Decode batches back to binding dicts (the plan boundary)."""
    term = graph._terms.term
    for batch in batches:
        names = list(batch.cols)
        col_list = [batch.cols[name] for name in names]
        for j in range(batch.n):
            binding = {}
            for name, col in zip(names, col_list):
                tid = col[j]
                t = memo.get(tid)
                if t is None:
                    t = memo[tid] = term(tid)
                binding[name] = t
            yield binding


class BatchedBGP(PhysicalOperator):
    """A statically planned BGP executed over columnar batches.

    ``run(stats)`` yields decoded binding dicts, so the evaluator's
    downstream constructs (OPTIONAL, UNION, FILTER, modifiers) consume
    it exactly like the iterator plans.
    """

    op = "BatchedBGP"

    def __init__(self, graph, root: SparqlBatchOperator):
        super().__init__(root.est_rows, (root,))
        self.graph = graph
        self.selectivity_profile: tuple[int, ...] = ()
        self._memo: dict = {}

    def execute(self, stats=None):
        yield from _decode_term_batches(
            self.graph, self.children[0].run(stats), self._memo
        )

    def explain(self) -> ExplainNode:
        return self.children[0].explain()


def _sparql_order(planner, patterns, builder):
    """The planner's greedy join order, driving ``builder`` per stage.

    ``builder(index, pattern, shared, per_binding, standalone, out_est,
    first)`` is invoked once per chosen pattern; shared ordering logic
    with :meth:`SparqlPlanner._build` keeps iterator and batched plans
    comparable stage for stage.
    """
    catalog = planner.catalog
    remaining = list(range(len(patterns)))
    bound: set[str] = set()

    def concrete_positions(pattern: TriplePattern) -> int:
        return sum(
            1
            for term in (pattern.s, pattern.p, pattern.o)
            if not isinstance(term, Var) or term.name in bound
        )

    profile: list[int] = []
    first = min(
        remaining,
        key=lambda i: (catalog.estimate_pattern(patterns[i], bound), i),
    )
    est = catalog.estimate_pattern(patterns[first], set())
    profile.append(concrete_positions(patterns[first]))
    out_est = builder(first, patterns[first], (), est, est, None, True)
    bound |= patterns[first].variables()
    remaining.remove(first)
    while remaining:
        connected = [i for i in remaining if patterns[i].variables() & bound]
        pool = connected or remaining
        index = min(
            pool,
            key=lambda i: (catalog.estimate_pattern(patterns[i], bound), i),
        )
        pattern = patterns[index]
        profile.append(concrete_positions(pattern))
        shared = tuple(sorted(pattern.variables() & bound))
        per_binding = catalog.estimate_pattern(pattern, bound)
        standalone = catalog.estimate_pattern(pattern, set())
        out_est = builder(
            index, pattern, shared, per_binding, standalone, out_est, False
        )
        bound |= pattern.variables()
        remaining.remove(index)
    return tuple(profile)


def _sparql_use_hash(force_join, shared, per_binding, standalone, out_est):
    from .sparql_plan import (
        COST_EMIT,
        COST_HASH_BUILD,
        COST_HASH_PROBE,
        COST_INDEX_PROBE,
    )

    if force_join == "hash":
        return True
    if force_join == "nested":
        return False
    if not shared:
        return True
    next_est = out_est * per_binding
    bind_cost = out_est * COST_INDEX_PROBE + next_est * COST_EMIT
    hash_cost = (
        standalone * COST_HASH_BUILD
        + out_est * COST_HASH_PROBE
        + next_est * COST_EMIT
    )
    return hash_cost < bind_cost


def build_batched_bgp(planner, patterns) -> BatchedBGP:
    """Compile a BGP to the batched operators, planner join order."""
    graph = planner.graph
    batch_size = planner.batch_size
    state = {"plan": None, "bound": set()}

    def builder(index, pattern, shared, per_binding, standalone, out_est, first):
        if first:
            state["plan"] = BatchScan(graph, pattern, per_binding, batch_size)
            state["bound"] |= pattern.variables()
            return per_binding
        next_est = out_est * per_binding
        if _sparql_use_hash(
            planner.force_join, shared, per_binding, standalone, out_est
        ):
            build = BatchScan(graph, pattern, standalone, batch_size)
            state["plan"] = BatchHashJoin(state["plan"], build, shared, next_est)
        else:
            state["plan"] = BatchBindJoin(
                state["plan"], graph, pattern, state["bound"], next_est
            )
        state["bound"] |= pattern.variables()
        return next_est

    profile = _sparql_order(planner, patterns, builder)
    plan = BatchedBGP(graph, state["plan"])
    plan.selectivity_profile = profile
    return plan


def _count_ids(graph, si, pi, oi) -> int:
    """``graph.count`` on interned ids (O(1) per probe)."""
    if si == _DEAD or pi == _DEAD or oi == _DEAD:
        return 0
    spo, pos_index, osp = graph._spo, graph._pos, graph._osp
    if si is not None:
        if pi is not None:
            objs = spo.get(si, {}).get(pi)
            if objs is None:
                return 0
            if oi is not None:
                return 1 if oi in objs else 0
            return len(objs)
        if oi is not None:
            return len(osp.get(oi, {}).get(si, ()))
        return sum(len(objs) for objs in spo.get(si, {}).values())
    if pi is not None:
        if oi is not None:
            return len(pos_index.get(pi, {}).get(oi, ()))
        return graph._p_count.get(pi, 0)
    if oi is not None:
        return sum(len(preds) for preds in osp.get(oi, {}).values())
    return len(graph)


class AdaptiveBGP(PhysicalOperator):
    """Stage-at-a-time BGP execution with mid-query re-planning.

    Each join stage runs to completion against the materialized
    intermediate state; when the observed cardinality misses the
    stage estimate by more than ``planner.replan_threshold`` (q-error),
    the remaining patterns are re-ranked using per-binding
    cardinalities *sampled from the actual intermediate rows* and the
    observed input cardinality replaces the estimate in the
    hash-vs-probe decisions.  Execution resumes from the materialized
    batches — no work is repeated.
    """

    op = "AdaptiveBGP"

    def __init__(self, planner, patterns):
        super().__init__(None, ())
        self.planner = planner
        self.graph = planner.graph
        self.patterns = list(patterns)
        self._memo: dict = {}
        self._last_root: ExplainNode | None = None
        # Static profile (initial order) for trace parity with the
        # other modes; the executed order may deviate after a re-plan.
        self.selectivity_profile = _sparql_order(
            planner, self.patterns, lambda *a: (a[5] or 1.0) * a[3]
        )

    def explain(self) -> ExplainNode:
        if self._last_root is not None:
            return self._last_root
        return ExplainNode("AdaptiveBGP", f"{len(self.patterns)} patterns")

    # ------------------------------------------------------------------ #

    def _sampled_estimate(self, pattern, bound, batches, total) -> float:
        """Mean per-binding cardinality probed on sampled actual rows."""
        compiled = _CompiledPattern(self.graph, pattern, frozenset(bound))
        specs = compiled.specs
        if all(spec[0] != "col" for spec in specs) or total == 0:
            return self.planner.catalog.estimate_pattern(pattern, bound)
        flat: list[tuple[TermBatch, int]] = []
        step = max(1, total // _REPLAN_SAMPLES)
        offset = 0
        wanted = set(range(0, total, step))
        for batch in batches:
            for j in range(batch.n):
                if offset + j in wanted:
                    flat.append((batch, j))
            offset += batch.n
        if not flat:
            return self.planner.catalog.estimate_pattern(pattern, bound)
        counts = 0
        for batch, j in flat:
            ids = []
            dead = False
            for pos, spec in enumerate(specs):
                if spec[0] == "col":
                    tid = batch.cols[spec[1]][j]
                    if pos == 0 and not compiled.subj_ok(tid):
                        dead = True
                        break
                    if pos == 1 and not compiled.pred_ok(tid):
                        dead = True
                        break
                    ids.append(tid)
                elif spec[0] == "const":
                    ids.append(spec[1])
                else:
                    ids.append(None)
            if not dead:
                counts += _count_ids(self.graph, *ids)
        return counts / len(flat)

    def execute(self, stats=None):
        self._last_root = None
        analyze = self._analyze
        planner = self.planner
        graph = self.graph
        catalog = planner.catalog
        threshold = planner.replan_threshold
        batch_size = planner.batch_size
        patterns = self.patterns
        remaining = list(range(len(patterns)))
        bound: set[str] = set()

        first = min(
            remaining,
            key=lambda i: (catalog.estimate_pattern(patterns[i], bound), i),
        )
        est = catalog.estimate_pattern(patterns[first], set())
        scan = BatchScan(graph, patterns[first], est, batch_size)
        scan.prepare(analyze)
        batches = list(scan.run(stats))
        rows = sum(batch.n for batch in batches)
        chain = scan.explain()
        bound |= patterns[first].variables()
        remaining.remove(first)
        out_est = est
        stage_est = est
        replanning = False

        while remaining:
            err = q_error(stage_est, rows)
            if err >= threshold:
                planner.last_replans.append({
                    "engine": "sparql",
                    "stage_est": round(stage_est, 3),
                    "actual": rows,
                    "q_error": round(err, 3),
                    "remaining": len(remaining),
                })
                _replan_counter().inc(1, engine="sparql")
                chain = _replan_node(
                    "joins", stage_est, rows, err, len(remaining), chain
                )
                replanning = True
            if replanning:
                out_est = float(rows)
            connected = [
                i for i in remaining if patterns[i].variables() & bound
            ]
            pool = connected or remaining
            if replanning:
                sampled = {
                    i: self._sampled_estimate(patterns[i], bound, batches, rows)
                    for i in pool
                }
                index = min(pool, key=lambda i: (sampled[i], i))
                per_binding = sampled[index]
            else:
                index = min(
                    pool,
                    key=lambda i: (catalog.estimate_pattern(patterns[i], bound), i),
                )
                per_binding = catalog.estimate_pattern(patterns[index], bound)
            pattern = patterns[index]
            shared = tuple(sorted(pattern.variables() & bound))
            standalone = catalog.estimate_pattern(pattern, set())
            next_est = out_est * per_binding
            source = _BufferedTermBatches(batches, float(rows))
            if _sparql_use_hash(
                planner.force_join, shared, per_binding, standalone, out_est
            ):
                build = BatchScan(graph, pattern, standalone, batch_size)
                stage = BatchHashJoin(source, build, shared, next_est)
            else:
                stage = BatchBindJoin(source, graph, pattern, bound, next_est)
            stage.prepare(analyze)
            batches = list(stage.run(stats))
            rows = sum(batch.n for batch in batches)
            chain = _splice(stage.explain(), chain)
            bound |= pattern.variables()
            out_est = next_est
            stage_est = next_est
            remaining.remove(index)

        self._last_root = chain
        yield from _decode_term_batches(graph, batches, self._memo)


# ===================================================================== #
# Cypher: columnar path batches over the PG store substrate
# ===================================================================== #

class PathBatch:
    """A batch of partial path matches.

    ``rows`` holds the incoming binding dict per output row (shared
    references, replicated on fanout); variables bound *by this MATCH
    clause* live in the columnar ``cols`` as interned node/edge name
    ids (``kinds`` says which).  ``anchor`` is the node id the next
    expansion starts from; ``pivot`` remembers the seed for backward
    expansion.  Decoding merges ``rows[i]`` with the decoded columns
    (columns win — they carry the clause's rebinds).
    """

    __slots__ = ("rows", "cols", "kinds", "anchor", "pivot")

    def __init__(self, rows, cols, kinds, anchor, pivot):
        self.rows = rows
        self.cols = cols
        self.kinds = kinds
        self.anchor = anchor
        self.pivot = pivot

    @property
    def n(self) -> int:
        return len(self.rows)


class CypherBatchOperator(PhysicalOperator):
    """A physical operator yielding :class:`PathBatch` items."""

    def execute(self, engine):
        raise NotImplementedError


class BatchInput(CypherBatchOperator):
    """Source: incoming clause rows, chunked into batches."""

    op = "Input"

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE):
        super().__init__(None)
        self.rows: list[dict] = []
        self.batch_size = batch_size

    def execute(self, engine):
        self.actual_loops += 1
        rows = self.rows
        bs = self.batch_size
        for start in range(0, len(rows), bs):
            chunk = rows[start:start + bs]
            self.actual_rows += len(chunk)
            yield PathBatch(chunk, {}, {}, None, None)


class BatchConst(CypherBatchOperator):
    """Source: a single empty binding (hash-join build sides)."""

    op = "Const"

    def __init__(self):
        super().__init__(1.0)

    def execute(self, engine):
        self.actual_loops += 1
        self.actual_rows += 1
        yield PathBatch([{}], {}, {}, None, None)


def _resolve_constraint(var, want_kind, batch, names):
    """Per-row id constraints for ``var``: -1 unbound, -2 never-match.

    A value of the wrong kind (a node where an edge is required, a
    non-graph value) can never match, exactly like the iterator
    pipeline's identity checks.
    """
    if var is None:
        return None
    col = batch.cols.get(var)
    if col is not None:
        if batch.kinds.get(var) == want_kind:
            return col
        return array("q", (-2,)) * batch.n
    from ...pg.model import PGEdge, PGNode

    expected = PGNode if want_kind == "node" else PGEdge
    out = array("q")
    any_set = False
    lookup = names.lookup
    for row in batch.rows:
        value = row.get(var)
        if value is None:
            out.append(-1)
        elif isinstance(value, expected):
            vid = lookup(value.id)
            out.append(vid if vid is not None else -2)
            any_set = True
        else:
            out.append(-2)
            any_set = True
    return out if any_set else None


class BatchSeed(CypherBatchOperator):
    """Bind one node pattern via its chosen access path, batch-wise.

    Emits the raw candidate ids of the access path (whole postings
    runs when the row carries no equality constraint); residual
    label/property checks are applied by a downstream
    :class:`BatchFilter`.
    """

    op = "BatchSeed"

    def __init__(self, child, store, pattern, choice, est_rows: float):
        super().__init__(est_rows, (child,))
        self.store = store
        self.pattern = pattern
        self.choice = choice

    def detail(self) -> str:
        name = self.pattern.var or "_"
        return f"({name}) via {self.choice.describe()}"

    def _candidates(self):
        store = self.store
        choice = self.choice
        if choice.mode == "label":
            li = store._labels.lookup(choice.label)
            bucket = store._label_index.get(li) if li is not None else None
            return bucket.sorted_array() if bucket is not None else array("q")
        if choice.mode == "prop":
            bucket = store._property_index.get((choice.key, choice.value))
            return bucket.sorted_array() if bucket is not None else array("q")
        return store.node_id_array()

    def execute(self, engine):
        store = self.store
        names = store._names
        var = self.pattern.var
        bound_mode = self.choice.mode == "bound"
        candidates = None if bound_mode else self._candidates()
        cand_set = None
        for batch in self.children[0].run(engine):
            n = batch.n
            if n == 0:
                continue
            self.actual_loops += n
            sel = array("q")
            out = array("q")
            if bound_mode:
                cons = _resolve_constraint(var, "node", batch, names)
                if cons is not None:
                    for i in range(n):
                        v = cons[i]
                        if v >= 0:
                            out.append(v)
                            sel.append(i)
            elif len(candidates):
                cons = _resolve_constraint(var, "node", batch, names)
                if cons is None:
                    cnt = len(candidates)
                    for i in range(n):
                        out.extend(candidates)
                        sel.extend(_repeat(i, cnt))
                else:
                    if cand_set is None:
                        cand_set = set(candidates)
                    cnt = len(candidates)
                    for i in range(n):
                        v = cons[i]
                        if v == -1:
                            out.extend(candidates)
                            sel.extend(_repeat(i, cnt))
                        elif v >= 0 and v in cand_set:
                            out.append(v)
                            sel.append(i)
            m = len(sel)
            if m == 0:
                continue
            out_rows = [batch.rows[i] for i in sel]
            out_cols = {
                name: _gather(col, sel) for name, col in batch.cols.items()
            }
            out_kinds = dict(batch.kinds)
            if var is not None:
                out_cols[var] = out
                out_kinds[var] = "node"
            self.actual_rows += m
            yield PathBatch(out_rows, out_cols, out_kinds, out, out)


class BatchFilter(CypherBatchOperator):
    """Apply residual label/property constraints to the anchor column."""

    op = "BatchFilter"

    def __init__(self, child, store, var, labels, properties, est_rows: float):
        super().__init__(est_rows, (child,))
        self.store = store
        self.var = var
        self.labels = tuple(labels)
        self.properties = tuple(properties)

    def detail(self) -> str:
        name = self.var or "_"
        labels = "".join(f":{label}" for label in self.labels)
        props = ""
        if self.properties:
            inner = ", ".join(f"{k}: {v!r}" for k, v in self.properties)
            props = f" {{{inner}}}"
        return f"({name}){labels}{props}"

    def execute(self, engine):
        store = self.store
        buckets = []
        dead = False
        for label in self.labels:
            li = store._labels.lookup(label)
            bucket = store._label_index.get(li) if li is not None else None
            if bucket is None:
                dead = True
                break
            buckets.append(bucket)
        value_of = store._names.value
        nodes = store.graph.nodes
        properties = self.properties
        for batch in self.children[0].run(engine):
            n = batch.n
            self.actual_loops += n
            if dead or n == 0:
                continue
            anchor = batch.anchor
            sel = array("q")
            for i in range(n):
                nid = anchor[i]
                ok = True
                for bucket in buckets:
                    if nid not in bucket:
                        ok = False
                        break
                if ok and properties:
                    node = nodes[value_of(nid)]
                    for key, value in properties:
                        if node.properties.get(key) != value:
                            ok = False
                            break
                if ok:
                    sel.append(i)
            m = len(sel)
            if m == 0:
                continue
            self.actual_rows += m
            if m == n:
                yield batch
                continue
            yield PathBatch(
                [batch.rows[i] for i in sel],
                {name: _gather(col, sel) for name, col in batch.cols.items()},
                dict(batch.kinds),
                _gather(anchor, sel),
                _gather(batch.pivot, sel) if batch.pivot is not None else None,
            )


class BatchExpand(CypherBatchOperator):
    """Follow one hop from the anchor column through the adjacency index.

    Unconstrained hops extend whole edge-postings runs and gather the
    far endpoints from the store's endpoint arrays; rows carrying
    rel/node equality constraints fall back to per-edge checks.
    """

    op = "BatchExpand"

    def __init__(self, child, store, rel, node, reverse: bool, est_rows: float):
        super().__init__(est_rows, (child,))
        from .cypher_plan import _flip

        self.store = store
        self.rel = rel
        self.node = node
        self.reverse = reverse
        self.traverse_rel = _flip(rel) if reverse else rel

    def detail(self) -> str:
        types = "|".join(self.rel.types)
        rel = f"[:{types}]" if types else "[]"
        arrow = {"out": f"-{rel}->", "in": f"<-{rel}-", "any": f"-{rel}-"}[
            self.rel.direction
        ]
        far = f"({self.node.var or '_'})"
        if self.reverse:
            return f"{far}{arrow}(*)"
        return f"(*){arrow}{far}"

    def execute(self, engine):
        store = self.store
        names = store._names
        rel = self.traverse_rel
        rel_var = self.rel.var
        node_var = self.node.var
        if rel_var is not None and rel_var == node_var:
            # ``-[x]->(x)`` can never match: the same variable cannot
            # be both the edge and its endpoint.
            for _ in self.children[0].run(engine):
                pass
            return
        src_arr, dst_arr = store.endpoint_arrays()
        out_pass = rel.direction in ("out", "any")
        in_pass = rel.direction in ("in", "any")
        undirected = out_pass and in_pass
        if rel.types:
            type_ids = [store._labels.lookup(t) for t in rel.types]
        else:
            type_ids = None
        for batch in self.children[0].run(engine):
            n = batch.n
            if n == 0:
                continue
            self.actual_loops += n
            anchor = batch.anchor
            e_cons = _resolve_constraint(rel_var, "rel", batch, names)
            n_cons = _resolve_constraint(node_var, "node", batch, names)
            sel = array("q")
            edge_out = array("q")
            far_out = array("q")
            expansions = 0
            for i in range(n):
                nid = anchor[i]
                be = e_cons[i] if e_cons is not None else -1
                if be == -2:
                    continue
                bn = n_cons[i] if n_cons is not None else -1
                if bn == -2:
                    continue
                for is_out in (True, False):
                    if is_out and not out_pass:
                        continue
                    if not is_out and not in_pass:
                        continue
                    adjacency = store._out if is_out else store._in
                    by_type = adjacency.get(nid)
                    if not by_type:
                        continue
                    if type_ids is None:
                        buckets = list(by_type.values())
                        seen = set() if len(buckets) > 1 else None
                    else:
                        buckets = [
                            by_type[li] for li in type_ids
                            if li is not None and li in by_type
                        ]
                        seen = None
                    endpoint = dst_arr if is_out else src_arr
                    skip_loops = undirected and not is_out
                    for bucket in buckets:
                        expansions += len(bucket)
                        if (
                            be < 0 and bn < 0 and seen is None
                            and not skip_loops
                        ):
                            # Wholesale: the whole postings run matches.
                            run = bucket.sorted_array()
                            edge_out.extend(run)
                            far_out.extend(map(endpoint.__getitem__, run))
                            sel.extend(_repeat(i, len(run)))
                            continue
                        if be >= 0:
                            eids = (be,) if be in bucket else ()
                        else:
                            eids = bucket
                        for eid in eids:
                            if seen is not None:
                                if eid in seen:
                                    continue
                                seen.add(eid)
                            if skip_loops and src_arr[eid] == dst_arr[eid]:
                                # A self-loop satisfies an undirected
                                # pattern once, not once per direction.
                                continue
                            far = endpoint[eid]
                            if bn >= 0 and far != bn:
                                continue
                            edge_out.append(eid)
                            far_out.append(far)
                            sel.append(i)
            engine._expansions += expansions
            m = len(sel)
            if m == 0:
                continue
            out_cols = {
                name: _gather(col, sel) for name, col in batch.cols.items()
            }
            out_kinds = dict(batch.kinds)
            if rel_var is not None:
                out_cols[rel_var] = edge_out
                out_kinds[rel_var] = "rel"
            if node_var is not None:
                out_cols[node_var] = far_out
                out_kinds[node_var] = "node"
            self.actual_rows += m
            yield PathBatch(
                [batch.rows[i] for i in sel],
                out_cols,
                out_kinds,
                far_out,
                _gather(batch.pivot, sel) if batch.pivot is not None else None,
            )


class BatchPivot(CypherBatchOperator):
    """Rewind the anchor to the seed node (forward chain -> backward)."""

    op = "Pivot"

    def __init__(self, child, est_rows: float | None):
        super().__init__(est_rows, (child,))

    def execute(self, engine):
        self.actual_loops += 1
        for batch in self.children[0].run(engine):
            self.actual_rows += batch.n
            yield PathBatch(
                batch.rows, batch.cols, batch.kinds, batch.pivot, batch.pivot
            )


def _decode_path_batch(store, batch: PathBatch, memo: dict) -> list[dict]:
    """Decode a path batch to binding dicts (the plan boundary).

    Ids repeat heavily after joins and expansions, so each column
    resolves its *unique* ids through the memo once and the rows are
    assembled with C-level ``zip``/``map`` passes.
    """
    rows = batch.rows
    if not batch.cols:
        return list(rows)
    value_of = store._names.value
    nodes = store.graph.nodes
    edges = store.graph.edges
    names = list(batch.cols)
    object_columns = []
    for name in names:
        col = batch.cols[name]
        is_node = batch.kinds[name] == "node"
        source = nodes if is_node else edges
        lookup = {}
        for vid in set(col):
            key = (vid, is_node)
            obj = memo.get(key)
            if obj is None:
                obj = memo[key] = source[value_of(vid)]
            lookup[vid] = obj
        object_columns.append(map(lookup.__getitem__, col))
    if not any(rows):
        return [dict(zip(names, values)) for values in zip(*object_columns)]
    out = []
    for row, values in zip(rows, zip(*object_columns)):
        binding = dict(row)
        binding.update(zip(names, values))
        out.append(binding)
    return out


class BatchPathHashJoin(CypherBatchOperator):
    """Decorrelate a path: build its batches once, probe per row.

    Probe and build sides are decoded at this boundary — the join key
    uses the evaluator's value identities, so its semantics match the
    iterator :class:`~repro.query.plan.cypher_plan.PathHashJoin`
    exactly.
    """

    op = "BatchHashJoin"

    def __init__(self, probe, build, key: tuple[str, ...], est_rows, store):
        super().__init__(est_rows, (probe, build))
        self.key = key
        self.store = store
        self._memo: dict = {}

    def detail(self) -> str:
        if not self.key:
            return "cartesian"
        return "on " + ", ".join(self.key)

    def execute(self, engine):
        self.actual_loops += 1
        build = list(self.children[1].run(engine))
        schema = build[0].cols.keys() if build else ()
        if all(
            batch.cols.keys() == schema
            and all(k in batch.cols for k in self.key)
            and all(not row for row in batch.rows)
            for batch in build
        ):
            # The build side is purely columnar (a freshly compiled path
            # over empty input rows): join on interned ids and gather —
            # neither side is decoded here.
            yield from self._execute_columnar(engine, build)
            return
        yield from self._execute_decoded(engine, build)

    def _execute_columnar(self, engine, build):
        key = self.key
        names = self.store._names
        b_cols: dict[str, array] = {}
        b_kinds: dict[str, str] = {}
        total = 0
        for batch in build:
            for name, col in batch.cols.items():
                b_cols.setdefault(name, array("q")).extend(col)
                b_kinds[name] = batch.kinds[name]
            total += batch.n
        if key:
            key_cols = [b_cols[k] for k in key]
            table: dict = {}
            if len(key) == 1:
                for j, v in enumerate(key_cols[0]):
                    table.setdefault(v, []).append(j)
            else:
                for j in range(total):
                    table.setdefault(
                        tuple(col[j] for col in key_cols), []
                    ).append(j)
        for batch in self.children[0].run(engine):
            n = batch.n
            if n == 0:
                continue
            sel_p = array("q")
            sel_b = array("q")
            if not key:
                if total:
                    for i in range(n):
                        sel_p.extend(_repeat(i, total))
                    sel_b = array("q", range(total)) * n
            else:
                probe_keys = [
                    _resolve_constraint(k, b_kinds[k], batch, names)
                    for k in key
                ]
                if any(col is None for col in probe_keys):
                    # The variable is set in no probe row: like the
                    # decoded path's None key, nothing can match.
                    continue
                if len(probe_keys) == 1:
                    probe = probe_keys[0]
                    for i in range(n):
                        v = probe[i]
                        if v < 0:
                            continue
                        for j in table.get(v, ()):
                            sel_p.append(i)
                            sel_b.append(j)
                else:
                    for i in range(n):
                        ks = tuple(col[i] for col in probe_keys)
                        if min(ks) < 0:
                            continue
                        for j in table.get(ks, ()):
                            sel_p.append(i)
                            sel_b.append(j)
            m = len(sel_p)
            if m == 0:
                continue
            rows = batch.rows
            out_cols = {
                name: _gather(col, sel_p) for name, col in batch.cols.items()
            }
            out_kinds = dict(batch.kinds)
            for name, col in b_cols.items():
                if name not in out_cols:
                    out_cols[name] = _gather(col, sel_b)
                    out_kinds[name] = b_kinds[name]
            self.actual_rows += m
            yield PathBatch(
                [rows[i] for i in sel_p], out_cols, out_kinds, None, None
            )

    def _execute_decoded(self, engine, build):
        from ..cypher.evaluator import _value_key

        key = self.key
        memo = self._memo
        table: dict[tuple, list[dict]] = {}
        for batch in build:
            for binding in _decode_path_batch(self.store, batch, memo):
                table.setdefault(
                    tuple(_value_key(binding.get(k)) for k in key), []
                ).append(binding)
        for batch in self.children[0].run(engine):
            out_rows: list[dict] = []
            for binding in _decode_path_batch(self.store, batch, memo):
                matches = table.get(
                    tuple(_value_key(binding.get(k)) for k in key)
                )
                if matches:
                    for match in matches:
                        out_rows.append({**binding, **match})
            if out_rows:
                self.actual_rows += len(out_rows)
                yield PathBatch(out_rows, {}, {}, None, None)


class _BufferedPathBatches(CypherBatchOperator):
    """Source: materialized batches of the stages already executed."""

    op = "Batches"

    def __init__(self, batches, est_rows: float):
        super().__init__(est_rows)
        self.batches = batches

    def detail(self) -> str:
        return "materialized"

    def execute(self, engine):
        self.actual_loops += 1
        for batch in self.batches:
            self.actual_rows += batch.n
            yield batch


def _residual_node_constraints(pattern, choice):
    """Label/property checks not already guaranteed by the access path."""
    labels = list(pattern.labels)
    properties = list(pattern.properties)
    if choice is not None:
        if choice.mode == "label" and choice.label in labels:
            labels.remove(choice.label)
        elif choice.mode == "prop" and (choice.key, choice.value) in properties:
            properties.remove((choice.key, choice.value))
    return tuple(labels), tuple(properties)


def _append_node_filter(planner, current, pattern, choice, est):
    """Chain a BatchFilter for the pattern's residual constraints."""
    labels, properties = _residual_node_constraints(pattern, choice)
    if not labels and not properties:
        return current, est
    from ..cypher.ast import NodePattern

    residual = NodePattern(None, labels, properties)
    est = est * planner.catalog.node_selectivity(residual)
    current = BatchFilter(
        current, planner.store, pattern.var, labels, properties, est
    )
    return current, est


def _compile_path_batched(planner, path, bound, child, in_est: float):
    """Compile one path to Seed/Filter/Expand/Pivot batch operators."""
    store = planner.store
    catalog = planner.catalog
    seed_index, choice = planner._seed_position(path, bound)
    nodes = path.node_patterns()
    est = in_est * choice.est
    current: CypherBatchOperator = BatchSeed(
        child, store, nodes[seed_index], choice, est
    )
    current, est = _append_node_filter(
        planner, current, nodes[seed_index],
        None if choice.mode == "bound" else choice, est,
    )
    for i in range(seed_index, len(path.hops)):
        rel, node = path.hops[i]
        est *= catalog.hop_fanout(rel)
        current = BatchExpand(current, store, rel, node, False, est)
        current, est = _append_node_filter(planner, current, node, None, est)
    if seed_index > 0:
        current = BatchPivot(current, est)
        for i in range(seed_index - 1, -1, -1):
            rel, _ = path.hops[i]
            far = nodes[i]
            est *= catalog.hop_fanout(rel)
            current = BatchExpand(current, store, rel, far, True, est)
            current, est = _append_node_filter(planner, current, far, None, est)
    return current


def _cypher_use_hash(force_join, shared, nullable, per_row, standalone, in_est):
    from .cypher_plan import COST_HASH_BUILD, COST_HASH_PROBE

    if force_join == "hash":
        return not (set(shared) & nullable)
    if force_join == "nested":
        return False
    if not shared:
        return True
    if set(shared) & nullable:
        return False
    bind_cost = in_est * per_row
    hash_cost = standalone * COST_HASH_BUILD + in_est * COST_HASH_PROBE
    return hash_cost < bind_cost


class BatchMatchPlan:
    """A compiled (and cacheable) batched plan for one MATCH clause."""

    def __init__(self, input_op: BatchInput, root: CypherBatchOperator, store):
        self.input = input_op
        self.root = root
        self.store = store
        self._memo: dict = {}

    def execute(self, rows, engine, analyze: bool = False) -> list[dict]:
        self.input.rows = rows
        self.root.prepare(analyze)
        out: list[dict] = []
        for batch in self.root.run(engine):
            out.extend(_decode_path_batch(self.store, batch, self._memo))
        return out

    def execute_projected(
        self, rows, engine, items, analyze: bool = False
    ) -> list[tuple]:
        """Project simple RETURN items straight off the path batches.

        ``items`` are return items whose expressions are literals,
        variable references, or property accesses (the caller checks);
        each column resolves its unique interned ids once, so no
        binding dicts are materialized.  Batches that carry a needed
        variable only in their row dicts (decoded hash-join fallbacks)
        are decoded and evaluated per row with identical semantics.
        """
        from ...errors import QueryError
        from ...pg.model import PGEdge, PGNode
        from ..cypher.ast import CypherLiteral, PropertyAccess, VarRef

        specs = []
        for item in items:
            expr = item.expr
            if isinstance(expr, CypherLiteral):
                specs.append(("lit", expr.value, None))
            elif isinstance(expr, VarRef):
                specs.append(("var", expr.name, None))
            else:
                specs.append(("prop", expr.var, expr.key))
        self.input.rows = rows
        self.root.prepare(analyze)
        store = self.store
        value_of = store._names.value
        nodes = store.graph.nodes
        edges = store.graph.edges
        memo = self._memo
        out: list[tuple] = []
        for batch in self.root.run(engine):
            if batch.n == 0:
                continue
            cols = batch.cols
            if all(kind == "lit" or var in cols for kind, var, _ in specs):
                value_columns = []
                for kind, var, prop_key in specs:
                    if kind == "lit":
                        value_columns.append(_repeat(var, batch.n))
                        continue
                    col = cols[var]
                    is_node = batch.kinds[var] == "node"
                    source = nodes if is_node else edges
                    lookup = {}
                    for vid in set(col):
                        mkey = (vid, is_node)
                        obj = memo.get(mkey)
                        if obj is None:
                            obj = memo[mkey] = source[value_of(vid)]
                        lookup[vid] = (
                            obj.properties.get(prop_key)
                            if kind == "prop" else obj
                        )
                    value_columns.append(map(lookup.__getitem__, col))
                out.extend(zip(*value_columns))
                continue
            for binding in _decode_path_batch(store, batch, memo):
                values = []
                for kind, var, prop_key in specs:
                    if kind == "lit":
                        values.append(var)
                    elif kind == "var":
                        if var not in binding:
                            raise QueryError(f"unbound variable {var!r}")
                        values.append(binding[var])
                    else:
                        element = binding.get(var)
                        values.append(
                            element.properties.get(prop_key)
                            if isinstance(element, (PGNode, PGEdge))
                            else None
                        )
                out.append(tuple(values))
        return out

    def explain(self) -> ExplainNode:
        return self.root.explain()


def build_batched_match(planner, clause, bound, nullable) -> BatchMatchPlan:
    """Compile a MATCH clause to batched operators, planner join order."""
    from .cypher_plan import _path_variables

    input_op = BatchInput(planner.batch_size)
    current: CypherBatchOperator = input_op
    bound = set(bound)
    remaining = list(range(len(clause.paths)))
    in_est = 1.0
    while remaining:
        connected = [
            i for i in remaining if _path_variables(clause.paths[i]) & bound
        ]
        pool = connected or remaining
        index = min(
            pool, key=lambda i: (planner._path_estimate(clause.paths[i], bound), i)
        )
        path = clause.paths[index]
        path_vars = _path_variables(path)
        shared = tuple(sorted(path_vars & bound))
        per_row = planner._path_estimate(path, bound)
        standalone = planner._path_estimate(path, set())
        next_est = in_est * per_row
        if _cypher_use_hash(
            planner.force_join, shared, nullable, per_row, standalone, in_est
        ):
            build = _compile_path_batched(planner, path, set(), BatchConst(), 1.0)
            current = BatchPathHashJoin(
                current, build, shared, next_est, planner.store
            )
        else:
            current = _compile_path_batched(planner, path, bound, current, in_est)
        bound |= path_vars
        in_est = next_est
        remaining.remove(index)
    return BatchMatchPlan(input_op, current, planner.store)


class AdaptiveMatchPlan:
    """Path-at-a-time MATCH execution with mid-query re-planning.

    Paths are the planner's join units: after each path's batches are
    materialized, the observed cardinality is compared with the stage
    estimate; past the q-error threshold the remaining paths are
    re-ranked (and their hash-vs-correlated decisions re-made) with
    the observed input cardinality substituted for the estimate, and
    execution resumes from the materialized state.
    """

    def __init__(self, planner, clause, bound, nullable):
        self.planner = planner
        self.clause = clause
        self.bound0 = frozenset(bound)
        self.nullable = nullable
        self._memo: dict = {}
        self._last_root: ExplainNode | None = None

    def explain(self) -> ExplainNode:
        if self._last_root is not None:
            return self._last_root
        return ExplainNode(
            "AdaptiveMatch", f"{len(self.clause.paths)} paths"
        )

    def execute(self, rows, engine, analyze: bool = False) -> list[dict]:
        from .cypher_plan import _path_variables

        planner = self.planner
        clause = self.clause
        threshold = planner.replan_threshold
        nullable = self.nullable
        bound = set(self.bound0)
        remaining = list(range(len(clause.paths)))

        input_op = BatchInput(planner.batch_size)
        input_op.rows = rows
        input_op.prepare(analyze)
        batches = list(input_op.run(engine))
        chain = input_op.explain()
        actual = len(rows)
        if actual == 0:
            self._last_root = chain
            return []
        in_est = float(actual)
        replanning = False

        while remaining:
            connected = [
                i for i in remaining
                if _path_variables(clause.paths[i]) & bound
            ]
            pool = connected or remaining

            def rank(i: int):
                per_row = planner._path_estimate(clause.paths[i], bound)
                if not replanning:
                    return (per_row, i)
                # Re-plan with actuals: rank by the cheaper of the
                # correlated and decorrelated costs at the observed
                # input cardinality.
                shared_i = _path_variables(clause.paths[i]) & bound
                work = in_est * per_row
                if not (shared_i & nullable):
                    standalone_i = planner._path_estimate(clause.paths[i], set())
                    work = min(
                        work, standalone_i * 2.0 + in_est + in_est * per_row
                    )
                return (work, i)

            index = min(pool, key=rank)
            path = clause.paths[index]
            path_vars = _path_variables(path)
            shared = tuple(sorted(path_vars & bound))
            per_row = planner._path_estimate(path, bound)
            standalone = planner._path_estimate(path, set())
            next_est = in_est * per_row
            source = _BufferedPathBatches(batches, float(actual))
            if _cypher_use_hash(
                planner.force_join, shared, nullable, per_row, standalone, in_est
            ):
                build = _compile_path_batched(
                    planner, path, set(), BatchConst(), 1.0
                )
                stage: CypherBatchOperator = BatchPathHashJoin(
                    source, build, shared, next_est, planner.store
                )
            else:
                stage = _compile_path_batched(planner, path, bound, source, in_est)
            stage.prepare(analyze)
            batches = list(stage.run(engine))
            actual = sum(batch.n for batch in batches)
            chain = _splice(stage.explain(), chain)
            bound |= path_vars
            remaining.remove(index)
            err = q_error(next_est, actual)
            if remaining and err >= threshold:
                planner.last_replans.append({
                    "engine": "cypher",
                    "stage_est": round(next_est, 3),
                    "actual": actual,
                    "q_error": round(err, 3),
                    "remaining": len(remaining),
                })
                _replan_counter().inc(1, engine="cypher")
                chain = _replan_node(
                    "paths", next_est, actual, err, len(remaining), chain
                )
                replanning = True
            in_est = float(actual) if replanning else next_est

        self._last_root = chain
        out: list[dict] = []
        for batch in batches:
            out.extend(_decode_path_batch(planner.store, batch, self._memo))
        return out
