"""An LRU cache of compiled physical plans.

Keys are *normalized query shapes*: the canonical serialization of the
parsed pattern AST (so whitespace, prefix names, and ``;`` predicate
groups all collapse to one key) combined with the statistics catalog's
version counter — any mutation of the underlying graph/store bumps the
version and naturally invalidates every cached plan without scanning
the cache.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["PlanCache"]


class PlanCache:
    """A bounded least-recently-used mapping of plan keys to plans."""

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        """The cached plan for ``key``, or None (updates recency)."""
        try:
            value = self._entries.pop(key)
        except KeyError:
            self.misses += 1
            return None
        self._entries[key] = value
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert a plan, evicting the least recently used beyond capacity."""
        self._entries.pop(key, None)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<PlanCache {len(self._entries)}/{self.maxsize} "
            f"hits={self.hits} misses={self.misses}>"
        )
