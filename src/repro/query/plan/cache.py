"""An LRU cache of compiled physical plans.

Keys are *normalized query shapes*: the canonical serialization of the
parsed pattern AST (so whitespace, prefix names, and ``;`` predicate
groups all collapse to one key) combined with the statistics catalog's
version counter — any mutation of the underlying graph/store bumps the
version and naturally invalidates every cached plan without scanning
the cache.

Version-keyed entries can never hit again once the catalog moves on,
but LRU alone only evicts them under capacity pressure: a workload of
interleaved queries and mutations (the CDC steady state) would fill the
cache with dead plans and evict the live ones.  ``put`` therefore takes
the catalog version that produced the plan and sweeps every entry tagged
with an older version as soon as a newer one is inserted.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["PlanCache"]


class PlanCache:
    """A bounded least-recently-used mapping of plan keys to plans."""

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()
        #: key -> catalog version that produced the entry (parallel map).
        self._entry_version: dict = {}
        #: Highest catalog version seen by ``put``.
        self._latest_version = None
        self.hits = 0
        self.misses = 0

    def get(self, key):
        """The cached plan for ``key``, or None (updates recency)."""
        try:
            value = self._entries.pop(key)
        except KeyError:
            self.misses += 1
            return None
        self._entries[key] = value
        self.hits += 1
        return value

    def put(self, key, value, version=None) -> None:
        """Insert a plan, evicting the least recently used beyond capacity.

        ``version`` is the statistics-catalog version the plan was built
        against.  When it advances past the newest version seen so far,
        all entries tagged with older versions are swept: their keys embed
        the old version, so they can never be requested again.
        """
        if version is not None and version != self._latest_version:
            if self._latest_version is not None:
                stale = [
                    k for k, v in self._entry_version.items() if v != version
                ]
                for k in stale:
                    del self._entries[k]
                    del self._entry_version[k]
            self._latest_version = version
        self._entries.pop(key, None)
        self._entries[key] = value
        if version is not None:
            self._entry_version[key] = version
        while len(self._entries) > self.maxsize:
            evicted, _ = self._entries.popitem(last=False)
            self._entry_version.pop(evicted, None)

    def stats(self) -> dict:
        """Occupancy and hit-ratio snapshot (feeds ``/healthz``)."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": round(self.hits / lookups, 4) if lookups else None,
        }

    def clear(self) -> None:
        self._entries.clear()
        self._entry_version.clear()
        self._latest_version = None

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<PlanCache {len(self._entries)}/{self.maxsize} "
            f"hits={self.hits} misses={self.misses}>"
        )
