"""Cost-based query planning shared by the SPARQL and Cypher engines.

The package provides, for both engines:

* statistics catalogs (:mod:`~repro.query.plan.stats`) over the
  incrementally maintained counters of :class:`~repro.rdf.graph.Graph`
  and :class:`~repro.pg.store.PropertyGraphStore`;
* physical operators behind a small iterator-model interface, with
  hash joins on shared variables and index scans next to the existing
  nested-loop strategy (:mod:`~repro.query.plan.sparql_plan`,
  :mod:`~repro.query.plan.cypher_plan`);
* an LRU plan cache keyed by normalized query shape and catalog
  version (:mod:`~repro.query.plan.cache`);
* ``EXPLAIN`` trees with estimated and actual cardinalities
  (:mod:`~repro.query.plan.explain`).

The planner only replaces *how* basic graph patterns and MATCH paths
are enumerated; every downstream construct (filters, OPTIONAL, UNION,
projection, DISTINCT, ORDER BY, LIMIT, aggregation) runs through the
engines' existing code, keeping planner-on and planner-off runs
result-identical.
"""

from .cache import PlanCache
from .cypher_plan import CypherPlanner
from .explain import ExplainNode, render_text
from .operator import PhysicalOperator
from .sparql_plan import SparqlPlanner, explain_select, flush_operator_obs
from .stats import (
    FeedbackStore,
    GraphCatalog,
    Q_ERROR_BOUNDARIES,
    SeedChoice,
    StoreCatalog,
    q_error,
)
from .vectorized import (
    DEFAULT_BATCH_SIZE,
    EXEC_MODES,
    REPLAN_THRESHOLD,
    AdaptiveBGP,
    AdaptiveMatchPlan,
    BatchedBGP,
    BatchMatchPlan,
    build_batched_bgp,
    build_batched_match,
)

__all__ = [
    "AdaptiveBGP",
    "AdaptiveMatchPlan",
    "BatchMatchPlan",
    "BatchedBGP",
    "CypherPlanner",
    "DEFAULT_BATCH_SIZE",
    "EXEC_MODES",
    "ExplainNode",
    "FeedbackStore",
    "GraphCatalog",
    "PhysicalOperator",
    "PlanCache",
    "Q_ERROR_BOUNDARIES",
    "REPLAN_THRESHOLD",
    "SeedChoice",
    "SparqlPlanner",
    "StoreCatalog",
    "build_batched_bgp",
    "build_batched_match",
    "explain_select",
    "flush_operator_obs",
    "q_error",
    "render_text",
]
