"""Command-line interface: ``python -m repro <command> ...``.

Subcommands cover the full S3PG workflow on files:

* ``transform``       — RDF (+ SHACL) -> PG (CSV) + PG-Schema (DDL) + mapping
* ``extract-shapes``  — derive a SHACL document from instance data
* ``validate``        — SHACL-validate an RDF graph
* ``conformance``     — check a transformed PG against its PG-Schema
* ``stats``           — dataset statistics (Table 2 layout)
* ``shape-stats``     — shape statistics (Table 3 layout)
* ``query``           — run SPARQL on RDF, or translate + run on the PG
* ``to-rdf``          — reconstruct the RDF graph from a PG (inverse M)
* ``compact``         — fold a non-parsimonious PG into the parsimonious
  layout (the Section 7 optimizer)
* ``generate``        — emit one of the synthetic benchmark datasets
* ``snapshot``        — save/load/inspect binary graph snapshots
  (``.snap``): ``save`` serializes a parsed RDF graph, ``load`` mmaps
  one back (and reports the speedup over re-parsing), ``info`` prints
  the verified header
* ``fuzz``            — run the property-based fuzzing harness
  (round-trip, validation, differential, serializer, engine oracles)
* ``profile``         — run a workload under tracing and print a top-N
  span self-time table
* ``serve``           — the always-on CDC service: consume a JSONL delta
  log, maintain the PG incrementally with delta-scoped SHACL
  revalidation, checkpoint, and (without ``--once``) tail the log
* ``obs``             — observability utilities: ``serve`` (standalone
  ops endpoint), ``report`` (per-fingerprint statement statistics from
  a query log), ``replay`` (re-execute a captured log and verify
  bag-identity), ``diff`` (flag latency/q-error regressions between
  two workload reports)

``transform``, ``validate``, ``query``, ``fuzz``, ``profile``, and
``serve`` accept ``--trace FILE`` (Chrome trace events for ``.json``, JSON-lines
for ``.jsonl``) and ``--metrics FILE`` (Prometheus text exposition, or
a JSON snapshot for ``.json``) to export the run's observability data.

RDF inputs may be N-Triples (``.nt``), a binary snapshot (``.snap``),
or Turtle (anything else).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from . import __version__, obs
from .core.config import TransformOptions
from .core.g2gml import render_g2gml
from .core.inverse import scalar_to_lexical
from .core.mapping import SchemaMapping
from .core.pipeline import S3PG
from .datasets.bio2rdf import bio2rdf_spec
from .datasets.common import generate
from .datasets.dbpedia import dbpedia2020_spec, dbpedia2022_spec
from .errors import ReproError
from .eval.tables import render_table
from .pg.csv_io import read_csv, write_csv
from .pgschema.conformance import check_conformance
from .pgschema.ddl import parse_pgschema_ddl, render_pgschema
from .query.cypher.evaluator import CypherEngine
from .query.sparql.evaluator import SparqlEngine
from .query.translate import translate_sparql_to_cypher
from .pg.store import PropertyGraphStore
from .rdf.graph import Graph
from .rdf.ntriples import parse_ntriples, write_ntriples
from .rdf.turtle import parse_turtle
from .shacl.parser import parse_shacl
from .shacl.serializer import serialize_shacl
from .shacl.stats import shape_stats
from .shacl.validator import validate as shacl_validate
from .shapes.extractor import ExtractionConfig, extract_shapes

_DATASETS = {
    "dbpedia2022": (dbpedia2022_spec, 400),
    "dbpedia2020": (dbpedia2020_spec, 200),
    "bio2rdf": (bio2rdf_spec, 300),
}


def load_rdf(path: str | Path) -> Graph:
    """Load an RDF document; snapshots for ``.snap``, N-Triples for
    ``.nt``, Turtle otherwise."""
    path = Path(path)
    if path.suffix == ".snap":
        from .storage import load_snapshot

        return load_snapshot(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".nt":
        return parse_ntriples(text)
    return parse_turtle(text)


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the observability export flags to a subcommand."""
    parser.add_argument(
        "--trace", metavar="FILE",
        help="export a trace of this run (.json: Chrome trace events "
             "for Perfetto/chrome://tracing; .jsonl: JSON-lines)",
    )
    parser.add_argument(
        "--metrics", metavar="FILE",
        help="export this run's metrics (.json: snapshot; anything "
             "else, e.g. .prom: Prometheus text exposition)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="S3PG: transform RDF knowledge graphs into property graphs",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    transform = sub.add_parser(
        "transform", help="transform RDF + SHACL into a PG + PG-Schema"
    )
    transform.add_argument("data", help="RDF instance data (.nt or Turtle)")
    transform.add_argument(
        "--shapes", help="SHACL document (Turtle); extracted from data if omitted"
    )
    transform.add_argument("-o", "--out", default="out", help="output directory")
    transform.add_argument(
        "--non-parsimonious", action="store_true",
        help="use the fully monotone (non-parsimonious) model",
    )
    transform.add_argument(
        "--on-unknown", choices=("fallback", "skip", "error"), default="fallback",
        help="handling of triples not covered by the shapes",
    )
    transform.add_argument(
        "--g2gml", action="store_true",
        help="additionally emit a G2GML mapping document",
    )
    transform.add_argument(
        "--workers", type=int, metavar="N",
        help="run the data transformation through the sharded parallel "
             "engine with N worker processes (omit for the serial path)",
    )
    _add_obs_arguments(transform)

    extract = sub.add_parser("extract-shapes", help="extract SHACL shapes from data")
    extract.add_argument("data")
    extract.add_argument("-o", "--out", help="output file (stdout if omitted)")
    extract.add_argument("--min-class-support", type=int, default=1)
    extract.add_argument("--min-property-support", type=float, default=0.0)
    extract.add_argument("--min-type-confidence", type=float, default=0.0)

    validate = sub.add_parser("validate", help="validate RDF data against SHACL shapes")
    validate.add_argument("data")
    validate.add_argument("shapes")
    validate.add_argument("--max-violations", type=int, default=20)
    _add_obs_arguments(validate)

    conformance = sub.add_parser(
        "conformance", help="check a transformed PG (CSV dir) against its PG-Schema"
    )
    conformance.add_argument("pgdir", help="directory with nodes.csv/edges.csv")
    conformance.add_argument("schema", help="PG-Schema DDL file")

    stats = sub.add_parser("stats", help="dataset statistics (Table 2 layout)")
    stats.add_argument("data")

    shape_stats_cmd = sub.add_parser(
        "shape-stats", help="SHACL shape statistics (Table 3 layout)"
    )
    shape_stats_cmd.add_argument("shapes")

    query = sub.add_parser("query", help="run a SPARQL query")
    query.add_argument("data", help="RDF instance data")
    query.add_argument("sparql", help="query text or @file")
    query.add_argument(
        "--via-pg", action="store_true",
        help="transform first, translate to Cypher, and run on the PG",
    )
    query.add_argument("--limit", type=int, default=20, help="rows to print")
    query.add_argument(
        "--explain", action="store_true",
        help="print the physical query plan (estimated and actual row "
             "counts) instead of the result rows",
    )
    query.add_argument(
        "--analyze", action="store_true",
        help="EXPLAIN ANALYZE: like --explain, additionally reporting "
             "per-operator loop counts and inclusive wall time",
    )
    query.add_argument(
        "--explain-format", choices=("text", "json"), default="text",
        help="EXPLAIN rendering (default: text)",
    )
    query.add_argument(
        "--no-planner", action="store_true",
        help="disable the cost-based planner (naive evaluation)",
    )
    query.add_argument(
        "--exec-mode", choices=("iterator", "batched", "adaptive"),
        default="iterator",
        help="physical execution strategy: iterator (row at a time), "
             "batched (vectorized columnar batches), or adaptive "
             "(batched with mid-query re-planning; default: iterator)",
    )
    query.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="execute the query N times and report the mean latency "
             "(default 1)",
    )
    query.add_argument(
        "--warmup", type=int, default=0, metavar="N",
        help="untimed warm-up executions before the measured runs "
             "(default 0)",
    )
    query.add_argument(
        "--query-log", metavar="FILE",
        help="append executed statements to this JSONL query log "
             "(replayable with `repro obs replay`)",
    )
    query.add_argument(
        "--query-log-sample", type=int, default=1, metavar="N",
        help="log every Nth statement only (default 1 = all)",
    )
    _add_obs_arguments(query)

    to_rdf = sub.add_parser(
        "to-rdf", help="reconstruct RDF from a transformed PG (inverse M)"
    )
    to_rdf.add_argument("pgdir", help="directory with nodes.csv/edges.csv")
    to_rdf.add_argument("mapping", help="mapping.json from the transformation")
    to_rdf.add_argument("-o", "--out", required=True, help="output .nt file")

    compact = sub.add_parser(
        "compact", help="fold a non-parsimonious PG into the parsimonious layout"
    )
    compact.add_argument("pgdir", help="directory with nodes.csv/edges.csv")
    compact.add_argument("mapping", help="mapping.json from the transformation")
    compact.add_argument("-o", "--out", required=True, help="output directory")

    gen = sub.add_parser("generate", help="emit a synthetic benchmark dataset")
    gen.add_argument("dataset", choices=sorted(_DATASETS))
    gen.add_argument("-o", "--out", required=True, help="output .nt file")
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--seed", type=int, default=42)

    snapshot = sub.add_parser(
        "snapshot", help="save/load/inspect binary graph snapshots"
    )
    snap_sub = snapshot.add_subparsers(dest="snapshot_action", required=True)
    snap_save = snap_sub.add_parser(
        "save", help="serialize an RDF document into a .snap file"
    )
    snap_save.add_argument("data", help="RDF instance data (.nt or Turtle)")
    snap_save.add_argument("-o", "--out", required=True, help="output .snap file")
    snap_load = snap_sub.add_parser(
        "load", help="load a .snap file and report timing vs. the source"
    )
    snap_load.add_argument("snap", help=".snap file")
    snap_load.add_argument(
        "--compare", metavar="FILE",
        help="also parse this RDF document and report the load speedup",
    )
    snap_info = snap_sub.add_parser(
        "info", help="print the verified header of a .snap file"
    )
    snap_info.add_argument("snap", help=".snap file")

    fuzz = sub.add_parser(
        "fuzz", help="run the property-based fuzzing harness"
    )
    fuzz.add_argument("--seed", type=int, default=0, help="base seed")
    fuzz.add_argument(
        "--cases", type=int, default=200, help="number of generated cases"
    )
    fuzz.add_argument(
        "--oracle", action="append", dest="oracles", metavar="NAME",
        help="run only this oracle (repeatable; default: all)",
    )
    fuzz.add_argument(
        "--corpus", default="tests/fuzz_corpus",
        help="directory for shrunk reproducers (default: tests/fuzz_corpus)",
    )
    fuzz.add_argument(
        "--no-corpus", action="store_true",
        help="do not write reproducer files",
    )
    fuzz.add_argument(
        "--parallel-every", type=int, default=50, metavar="N",
        help="multi-worker engine comparison on every N-th case "
             "(0 disables the expensive check)",
    )
    fuzz.add_argument(
        "--max-failures", type=int, default=10,
        help="stop after this many failures",
    )
    fuzz.add_argument(
        "--replay", action="store_true",
        help="replay the reproducer corpus instead of generating cases",
    )
    fuzz.add_argument(
        "--list-oracles", action="store_true",
        help="list the available oracles and exit",
    )
    _add_obs_arguments(fuzz)

    profile = sub.add_parser(
        "profile",
        help="run a workload under tracing and print a span self-time table",
    )
    profile.add_argument("data", help="RDF instance data (.nt or Turtle)")
    profile.add_argument(
        "--shapes", help="SHACL document (Turtle); extracted from data if omitted"
    )
    profile.add_argument(
        "--workers", type=int, metavar="N",
        help="profile the parallel engine with N workers instead of the "
             "serial transformation",
    )
    profile.add_argument(
        "--query", metavar="SPARQL",
        help="additionally profile a SPARQL query (text or @file) on the "
             "RDF graph and its Cypher translation on the PG",
    )
    profile.add_argument(
        "--validate", action="store_true",
        help="additionally profile SHACL validation of the data",
    )
    profile.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run the workload N times (default 1)",
    )
    profile.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="rows in the self-time table (default 15)",
    )
    _add_obs_arguments(profile)

    serve = sub.add_parser(
        "serve", help="run the always-on CDC ingest service on a delta log"
    )
    serve.add_argument(
        "--source", required=True, metavar="LOG",
        help="JSONL delta log to consume (see repro.cdc.changefeed)",
    )
    serve.add_argument(
        "--data", metavar="FILE",
        help="base RDF data transformed at startup (ignored when "
             "resuming from a checkpoint; empty graph if omitted)",
    )
    serve.add_argument(
        "--shapes", metavar="FILE",
        help="SHACL document (Turtle); extracted from the base data "
             "(or recovered from the checkpoint mapping) if omitted",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="replay the log to EOF and exit instead of tailing it",
    )
    serve.add_argument(
        "--batch-size", type=int, default=64, metavar="N",
        help="max deltas applied per batch (default 64)",
    )
    serve.add_argument(
        "--linger-ms", type=float, default=50.0, metavar="MS",
        help="max time a batch waits for more deltas (default 50)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=256, metavar="N",
        help="bounded ingest buffer; a full buffer backpressures the "
             "reader (default 256)",
    )
    serve.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="resume from (and write) watermarked checkpoints here",
    )
    serve.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="checkpoint every N applied deltas (default: only at exit)",
    )
    serve.add_argument(
        "--quarantine", metavar="FILE",
        help="dead-letter JSONL file for poison deltas",
    )
    serve.add_argument(
        "--no-validate", action="store_true",
        help="skip the standing SHACL conformance report",
    )
    serve.add_argument(
        "--non-parsimonious", action="store_true",
        help="use the fully monotone (non-parsimonious) model",
    )
    serve.add_argument(
        "--on-unknown", choices=("fallback", "skip", "error"), default="fallback",
        help="handling of triples not covered by the shapes",
    )
    serve.add_argument(
        "--ops-port", type=int, default=None, metavar="PORT",
        help="expose the live ops endpoint (/metrics, /healthz, /debug/*) "
             "on this port while serving (0 picks an ephemeral port; "
             "omitted = disabled)",
    )
    serve.add_argument(
        "--ops-host", default="127.0.0.1", metavar="HOST",
        help="bind address for the ops endpoint (default 127.0.0.1)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=100.0, metavar="MS",
        help="flight-recorder slow-op threshold in milliseconds "
             "(default 100; 0 captures everything)",
    )
    serve.add_argument(
        "--ops-grace-s", type=float, default=0.0, metavar="S",
        help="after a --once replay, keep the ops endpoint up for this "
             "many seconds so scrapers can collect final state "
             "(released early by /quitquitquit; default 0)",
    )
    serve.add_argument(
        "--query-log", metavar="FILE",
        help="capture statements executed while serving to this JSONL "
             "query log (replayable with `repro obs replay`)",
    )
    _add_obs_arguments(serve)

    obs_cmd = sub.add_parser(
        "obs", help="observability utilities (standalone ops endpoint)"
    )
    obs_sub = obs_cmd.add_subparsers(
        dest="obs_command", required=True, metavar="ACTION"
    )
    obs_serve = obs_sub.add_parser(
        "serve",
        help="install the flight recorder and serve /metrics, /healthz, "
             "/debug/slow, /debug/trace over HTTP",
    )
    obs_serve.add_argument(
        "--host", default="127.0.0.1", metavar="HOST",
        help="bind address (default 127.0.0.1)",
    )
    obs_serve.add_argument(
        "--port", type=int, default=9464, metavar="PORT",
        help="bind port (default 9464; 0 picks an ephemeral port)",
    )
    obs_serve.add_argument(
        "--slow-ms", type=float, default=100.0, metavar="MS",
        help="flight-recorder slow-op threshold (default 100; 0 captures "
             "everything)",
    )
    obs_serve.add_argument(
        "--span-buffer", type=int, default=4096, metavar="N",
        help="spans retained in the flight-recorder ring (default 4096)",
    )
    obs_serve.add_argument(
        "--slow-buffer", type=int, default=64, metavar="N",
        help="slow operations retained in the log (default 64)",
    )
    obs_serve.add_argument(
        "--data", metavar="FILE",
        help="optional RDF file; with --query, runs a warm-up workload "
             "so the first scrape already has query metrics",
    )
    obs_serve.add_argument(
        "--query", metavar="SPARQL",
        help="SPARQL text (or @file) executed --repeat times against "
             "--data at startup",
    )
    obs_serve.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="warm-up query repetitions (default 1)",
    )
    obs_serve.add_argument(
        "--duration", type=float, default=0.0, metavar="S",
        help="serve for this many seconds, then exit (default 0 = serve "
             "until /quitquitquit or Ctrl-C)",
    )

    obs_report = obs_sub.add_parser(
        "report",
        help="print per-fingerprint statement statistics from a "
             "captured query log (.jsonl) or a saved report (.json)",
    )
    obs_report.add_argument(
        "source", help="query log (.jsonl) or workload report (.json)"
    )
    obs_report.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="statements to print, heaviest first (default 20)",
    )
    obs_report.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output rendering (default: text)",
    )
    obs_report.add_argument(
        "--out", metavar="FILE",
        help="also write the full report as JSON to FILE",
    )

    obs_replay = obs_sub.add_parser(
        "replay",
        help="re-execute a captured query log against a dataset and "
             "verify bag-identity of the results",
    )
    obs_replay.add_argument("log", help="JSONL query log to replay")
    obs_replay.add_argument(
        "--data", required=True, metavar="FILE",
        help="RDF instance data to replay against (transformed to a PG "
             "when the log contains Cypher statements)",
    )
    obs_replay.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="executions per captured statement (default 1)",
    )
    obs_replay.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="statements to print, heaviest first (default 20)",
    )
    obs_replay.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output rendering (default: text)",
    )
    obs_replay.add_argument(
        "--out", metavar="FILE",
        help="write the replay report as JSON to FILE",
    )
    obs_replay.add_argument(
        "--allow-mismatch", action="store_true",
        help="exit 0 even when replayed results differ from the capture",
    )

    obs_diff = obs_sub.add_parser(
        "diff",
        help="compare two workload reports and flag per-fingerprint "
             "latency/q-error regressions",
    )
    obs_diff.add_argument(
        "baseline", help="baseline report (.json) or query log (.jsonl)"
    )
    obs_diff.add_argument(
        "current", help="current report (.json) or query log (.jsonl)"
    )
    obs_diff.add_argument(
        "--threshold", type=float, default=1.5, metavar="X",
        help="latency regression ratio (default 1.5)",
    )
    obs_diff.add_argument(
        "--q-threshold", type=float, default=2.0, metavar="X",
        help="q-error regression ratio (default 2.0)",
    )
    obs_diff.add_argument(
        "--min-ms", type=float, default=0.1, metavar="MS",
        help="absolute latency floor before a ratio counts as a "
             "regression (default 0.1)",
    )
    obs_diff.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output rendering (default: text)",
    )
    obs_diff.add_argument(
        "--out", metavar="FILE",
        help="write the diff as JSON to FILE",
    )
    obs_diff.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any statement regresses",
    )

    return parser


# --------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------- #

def _cmd_transform(args: argparse.Namespace) -> int:
    graph = load_rdf(args.data)
    if args.shapes:
        shapes = parse_shacl(Path(args.shapes).read_text(encoding="utf-8"))
        print(f"loaded {len(shapes)} node shapes from {args.shapes}")
    else:
        shapes = extract_shapes(graph)
        print(f"extracted {len(shapes)} node shapes from the data")

    options = TransformOptions(
        parsimonious=not args.non_parsimonious, on_unknown=args.on_unknown
    )
    start = time.perf_counter()
    result = S3PG(options).transform(graph, shapes, parallel=args.workers)
    elapsed = time.perf_counter() - start

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    write_csv(result.graph, out)
    (out / "schema.pgs").write_text(
        render_pgschema(result.pg_schema), encoding="utf-8"
    )
    (out / "mapping.json").write_text(result.mapping.to_json(), encoding="utf-8")
    if args.g2gml:
        (out / "mapping.g2g").write_text(
            render_g2gml(result.mapping), encoding="utf-8"
        )

    stats = result.graph.stats()
    print(
        f"transformed {len(graph)} triples -> {stats.n_nodes} nodes / "
        f"{stats.n_edges} edges / {stats.n_rel_types} relationship types "
        f"in {elapsed:.2f}s"
    )
    print(f"wrote nodes.csv, edges.csv, schema.pgs, mapping.json to {out}/")
    if result.instrumentation is not None:
        engine = result.instrumentation
        phases = ", ".join(
            f"{name} {record['wall_s']:.2f}s"
            for name, record in engine["phases"].items()
        )
        print(
            f"parallel engine: {engine['counters'].get('workers', 1)} worker(s), "
            f"{engine['counters'].get('shards', 0)} shard(s); {phases}"
        )
    return 0


def _cmd_extract_shapes(args: argparse.Namespace) -> int:
    graph = load_rdf(args.data)
    config = ExtractionConfig(
        min_class_support=args.min_class_support,
        min_property_support=args.min_property_support,
        min_type_confidence=args.min_type_confidence,
    )
    schema = extract_shapes(graph, config)
    text = serialize_shacl(schema)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {len(schema)} node shapes to {args.out}")
    else:
        print(text)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    graph = load_rdf(args.data)
    shapes = parse_shacl(Path(args.shapes).read_text(encoding="utf-8"))
    report = shacl_validate(graph, shapes)
    if report.conforms:
        print(f"conforms ({report.checked_entities} entities checked)")
        return 0
    print(f"does not conform: {len(report.violations)} violation(s)")
    for violation in report.violations[: args.max_violations]:
        print(" ", violation)
    return 1


def _cmd_conformance(args: argparse.Namespace) -> int:
    pg = read_csv(args.pgdir)
    schema = parse_pgschema_ddl(Path(args.schema).read_text(encoding="utf-8"))
    report = check_conformance(pg, schema)
    if report.conforms:
        print(f"conforms ({pg.node_count()} nodes, {pg.edge_count()} edges)")
        return 0
    print(f"does not conform: {len(report.violations)} violation(s)")
    for violation in report.violations[:20]:
        print(" ", violation)
    return 1


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_rdf(args.data)
    print(render_table([graph.stats().as_row()], title=f"Statistics of {args.data}"))
    return 0


def _cmd_shape_stats(args: argparse.Namespace) -> int:
    shapes = parse_shacl(Path(args.shapes).read_text(encoding="utf-8"))
    print(render_table(
        [shape_stats(shapes).as_row()], title=f"Shape statistics of {args.shapes}"
    ))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from .eval.timing import time_callable

    graph = load_rdf(args.data)
    sparql = args.sparql
    if sparql.startswith("@"):
        sparql = Path(sparql[1:]).read_text(encoding="utf-8")
    planner = not args.no_planner
    if not planner and args.exec_mode != "iterator":
        raise ReproError(
            f"--exec-mode {args.exec_mode} requires the planner "
            "(drop --no-planner)"
        )
    repeat = max(1, args.repeat)
    warmup = max(0, args.warmup)
    tracker = None
    if args.query_log:
        tracker = obs.install_workload(
            log_path=args.query_log,
            sample_every=max(1, args.query_log_sample),
        )
    try:
        if not args.via_pg:
            engine = SparqlEngine(
                graph, planner=planner, exec_mode=args.exec_mode
            )
            if args.explain or args.analyze:
                return _print_explain(
                    engine, sparql, args.explain_format, args.analyze
                )
            for _ in range(warmup):
                engine.query(sparql)
            elapsed, rows = time_callable(engine.query, sparql, repeat=repeat)
            printable = [
                {key: str(value) for key, value in row.items()} for row in rows
            ]
        else:
            shapes = extract_shapes(graph)
            result = S3PG().transform(graph, shapes)
            cypher = translate_sparql_to_cypher(sparql, result.mapping)
            print("translated Cypher:")
            for line in cypher.splitlines():
                print("   ", line)
            engine = CypherEngine(
                PropertyGraphStore(result.graph),
                planner=planner,
                exec_mode=args.exec_mode,
            )
            if args.explain or args.analyze:
                return _print_explain(
                    engine, cypher, args.explain_format, args.analyze
                )
            for _ in range(warmup):
                engine.query(cypher)
            elapsed, rows = time_callable(engine.query, cypher, repeat=repeat)
            printable = [
                {key: scalar_to_lexical(value) if value is not None else ""
                 for key, value in row.items()}
                for row in rows
            ]
    finally:
        if tracker is not None:
            logged = tracker.summary()["logged"]
            obs.uninstall_workload()
            print(f"logged {logged} statement(s) to {args.query_log}")
    print(f"{len(rows)} row(s)")
    if repeat > 1 or warmup:
        print(
            f"mean latency {elapsed * 1000:.3f}ms over {repeat} run(s) "
            f"({warmup} warm-up)"
        )
    if printable:
        print(render_table(printable[: args.limit]))
    return 0


def _print_explain(engine, text: str, fmt: str, analyze: bool = False) -> int:
    """Run ``text`` through ``engine.explain`` and print the plan."""
    rendered = engine.explain(text, fmt=fmt, analyze=analyze)
    if fmt == "json":
        print(json.dumps(rendered, indent=2, sort_keys=True))
    else:
        print(rendered)
    return 0


def _cmd_to_rdf(args: argparse.Namespace) -> int:
    from .core.inverse import pg_to_rdf

    pg = read_csv(args.pgdir)
    mapping = SchemaMapping.from_json(
        Path(args.mapping).read_text(encoding="utf-8")
    )
    graph = pg_to_rdf(pg, mapping)
    count = write_ntriples(graph, args.out)
    print(f"reconstructed {count} triples -> {args.out}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from .core.inverse import rebuild_transformed
    from .core.optimize import optimize

    transformed = rebuild_transformed(args.pgdir, args.mapping)
    before = transformed.graph.stats()
    optimized = optimize(transformed)
    after = optimized.graph.stats()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    write_csv(optimized.graph, out)
    (out / "schema.pgs").write_text(
        render_pgschema(optimized.schema_result.pg_schema), encoding="utf-8"
    )
    (out / "mapping.json").write_text(
        optimized.schema_result.mapping.to_json(), encoding="utf-8"
    )
    print(
        f"compacted {before.n_nodes}->{after.n_nodes} nodes, "
        f"{before.n_edges}->{after.n_edges} edges "
        f"({optimized.stats.edges_folded} edges folded); wrote {out}/"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    spec_fn, base = _DATASETS[args.dataset]
    graph = generate(
        spec_fn(), base_entities=max(1, int(base * args.scale)), seed=args.seed
    )
    count = write_ntriples(graph, args.out)
    print(f"wrote {count} triples to {args.out}")
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from .storage import load_snapshot, save_snapshot, snapshot_info

    if args.snapshot_action == "save":
        start = time.perf_counter()
        graph = load_rdf(args.data)
        parse_s = time.perf_counter() - start
        start = time.perf_counter()
        size = save_snapshot(graph, args.out)
        save_s = time.perf_counter() - start
        print(
            f"saved {len(graph)} triples ({size} bytes) to {args.out} "
            f"in {save_s:.3f}s (source loaded in {parse_s:.3f}s)"
        )
        return 0

    if args.snapshot_action == "info":
        info = snapshot_info(args.snap)
        for key in ("format_version", "file_size", "n_terms", "n_triples",
                    "graph_version", "crc32"):
            print(f"{key}: {info[key]}")
        return 0

    start = time.perf_counter()
    graph = load_snapshot(args.snap)
    load_s = time.perf_counter() - start
    print(f"loaded {len(graph)} triples from {args.snap} in {load_s:.4f}s")
    if args.compare:
        start = time.perf_counter()
        other = load_rdf(args.compare)
        parse_s = time.perf_counter() - start
        ratio = parse_s / load_s if load_s > 0 else float("inf")
        print(f"parsing {args.compare} took {parse_s:.4f}s ({ratio:.1f}x slower)")
        if set(other) != set(graph):
            print(f"snapshot DIFFERS from parsed graph ({len(other)} triples parsed)")
            return 1
        print(f"snapshot matches parsed graph ({len(other)} triples)")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import ORACLES, replay_corpus, run_fuzz

    if args.list_oracles:
        for oracle in ORACLES.values():
            kinds = ", ".join(oracle.kinds)
            print(f"{oracle.name:28s} [{kinds}]  {oracle.description}")
        return 0

    if args.replay:
        failures = replay_corpus(args.corpus)
        if failures:
            print(f"{len(failures)} corpus reproducer(s) still failing:")
            for failure in failures:
                print(" ", failure)
            return 1
        count = len(list(Path(args.corpus).glob("*.json")))
        print(f"replayed {count} reproducer(s): all pass")
        return 0

    start = time.perf_counter()
    report = run_fuzz(
        seed=args.seed,
        cases=args.cases,
        oracle_names=args.oracles,
        corpus_dir=None if args.no_corpus else args.corpus,
        parallel_every=args.parallel_every,
        max_failures=args.max_failures,
    )
    elapsed = time.perf_counter() - start
    runs = ", ".join(
        f"{name} x{count}" for name, count in sorted(report.oracle_runs.items())
    )
    print(
        f"fuzzed {report.cases} case(s) / {report.checks} oracle run(s) "
        f"in {elapsed:.1f}s (seed {report.seed})"
    )
    print(f"  {runs}")
    if report.ok:
        print("all properties hold")
        return 0
    print(f"{len(report.failures)} property violation(s):")
    for failure in report.failures:
        print(" ", failure)
    return 1


def _cmd_profile(args: argparse.Namespace) -> int:
    graph = load_rdf(args.data)
    if args.shapes:
        shapes = parse_shacl(Path(args.shapes).read_text(encoding="utf-8"))
    else:
        shapes = extract_shapes(graph)

    sparql = args.query
    if sparql and sparql.startswith("@"):
        sparql = Path(sparql[1:]).read_text(encoding="utf-8")

    result = None
    for _ in range(max(1, args.repeat)):
        result = S3PG().transform(graph, shapes, parallel=args.workers)
        if args.validate:
            shacl_validate(graph, shapes)
        if sparql:
            SparqlEngine(graph).query(sparql)
            cypher = translate_sparql_to_cypher(sparql, result.mapping)
            CypherEngine(PropertyGraphStore(result.graph)).query(cypher)

    tracer = obs.get_tracer()
    spans = tracer.finished() if tracer is not None else []
    stats = result.graph.stats()
    print(
        f"profiled {len(graph)} triples -> {stats.n_nodes} nodes / "
        f"{stats.n_edges} edges ({len(spans)} spans)"
    )
    print()
    print(obs.render_profile(spans, top=args.top))
    return 0


def _latency_quantiles_ms(samples: list[float], qs: tuple) -> list[float]:
    """Histogram-derived latency quantiles in milliseconds."""
    histogram = obs.histogram_from_samples(samples)
    return [q * 1000.0 for q in obs.quantiles_from_histogram(histogram, qs)]


_STATEMENT_COLUMNS = (
    "lang", "fingerprint", "calls", "mean_ms", "p95_ms", "total_ms",
    "rows_total", "plan_cache_hits", "q_error_max",
)


def _print_statement_table(statements: list[dict], top: int) -> None:
    rows = []
    for statement in statements[: max(0, top)]:
        row = {
            key: "" if statement.get(key) is None else str(statement[key])
            for key in _STATEMENT_COLUMNS
        }
        if statement.get("bag_identical") is not None:
            row["bag_identical"] = str(statement["bag_identical"])
        query = statement.get("query", "")
        row["query"] = query if len(query) <= 60 else query[:57] + "..."
        rows.append(row)
    if rows:
        print(render_table(rows))


def _read_query_log(path: str) -> list[dict]:
    try:
        return obs.read_query_log(path)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc


def _load_report(path: str) -> dict:
    """A workload report from a saved ``.json`` or a raw ``.jsonl`` log."""
    if path.endswith(".jsonl"):
        records = _read_query_log(path)
        return obs.report_from_log(records, source=path)
    with open(path, encoding="utf-8") as handle:
        try:
            report = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ReproError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(report, dict) or "statements" not in report:
        raise ReproError(
            f"{path}: not a workload report (expected a JSON object "
            "with a 'statements' array)"
        )
    return report


def _write_json(path: str, payload: dict) -> None:
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _cmd_obs_report(args: argparse.Namespace) -> int:
    report = _load_report(args.source)
    if args.out:
        _write_json(args.out, report)
        print(f"wrote report to {args.out}")
    if args.format == "json":
        statements = report.get("statements", [])[: max(0, args.top)]
        print(json.dumps(
            dict(report, statements=statements), indent=2, sort_keys=True
        ))
        return 0
    print(
        f"{report.get('records', 0)} record(s), "
        f"{len(report.get('statements', []))} distinct statement(s)"
    )
    _print_statement_table(report.get("statements", []), args.top)
    return 0


def _cmd_obs_replay(args: argparse.Namespace) -> int:
    records = _read_query_log(args.log)
    graph = load_rdf(args.data)
    store = None
    if any(record.get("lang") == "cypher" for record in records):
        shapes = extract_shapes(graph)
        result = S3PG().transform(graph, shapes)
        store = PropertyGraphStore(result.graph)
        registry = obs.get_metrics()
        registry.gauge("repro_store_nodes").set(store.node_count())
        registry.gauge("repro_store_edges").set(store.edge_count())
    obs.get_metrics().gauge("repro_graph_triples").set(len(graph))
    report = obs.replay_workload(
        records, graph=graph, store=store,
        repeat=max(1, args.repeat), source=args.log,
    )
    if args.out:
        _write_json(args.out, report)
        print(f"wrote replay report to {args.out}")
    if args.format == "json":
        statements = report.get("statements", [])[: max(0, args.top)]
        print(json.dumps(
            dict(report, statements=statements), indent=2, sort_keys=True
        ))
    else:
        print(
            f"replayed {report['replayed']} statement(s) x{report['repeat']} "
            f"({report['skipped']} skipped, "
            f"{report['mismatches']} result mismatch(es))"
        )
        _print_statement_table(report.get("statements", []), args.top)
    if report["mismatches"] and not args.allow_mismatch:
        print(
            "error: replayed results are not bag-identical to the capture",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    baseline = _load_report(args.baseline)
    current = _load_report(args.current)
    diff = obs.diff_reports(
        baseline, current,
        latency_ratio=args.threshold,
        q_error_ratio=args.q_threshold,
        min_ms=args.min_ms,
    )
    if args.out:
        _write_json(args.out, diff)
        print(f"wrote diff to {args.out}")
    if args.format == "json":
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(
            f"compared {diff['compared']} statement(s): "
            f"{diff['regressed']} regressed, {diff['added']} added, "
            f"{diff['removed']} removed"
        )
        rows = []
        for entry in diff["statements"]:
            query = entry.get("query", "")
            rows.append({
                "status": entry["status"],
                "lang": entry["lang"],
                "fingerprint": entry["fingerprint"],
                "flags": ",".join(entry.get("flags", ())),
                "base_ms": str(entry.get("baseline_mean_ms", "")),
                "cur_ms": str(entry.get("current_mean_ms", "")),
                "ratio": str(entry.get("latency_ratio", "")),
                "query": query if len(query) <= 48 else query[:45] + "...",
            })
        if rows:
            print(render_table(rows))
    if diff["regressed"] and args.fail_on_regression:
        print(
            f"error: {diff['regressed']} statement(s) regressed",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_obs_serve(args: argparse.Namespace) -> int:
    obs.install_recorder(
        span_capacity=args.span_buffer,
        slow_threshold_ms=args.slow_ms,
        slow_capacity=args.slow_buffer,
    )
    obs.install_workload()
    server = obs.OpsServer(host=args.host, port=args.port)
    try:
        host, port = server.start()
        print(f"ops endpoint on http://{host}:{port}")
        print(
            "routes: /metrics /healthz /debug/slow /debug/trace "
            "/debug/statements /quitquitquit"
        )
        if args.data and args.query:
            sparql = args.query
            if sparql.startswith("@"):
                sparql = Path(sparql[1:]).read_text(encoding="utf-8")
            engine = SparqlEngine(load_rdf(args.data))
            repeat = max(1, args.repeat)
            for _ in range(repeat):
                engine.query(sparql)
            print(f"warmed query metrics with {repeat} run(s)")
        timeout = args.duration if args.duration > 0 else None
        try:
            if server.wait(timeout):
                print("released by /quitquitquit")
            else:
                print(f"duration of {args.duration:g}s elapsed")
        except KeyboardInterrupt:
            print("interrupted")
    finally:
        server.stop()
        obs.uninstall_workload()
        obs.uninstall_recorder()
    return 0


_OBS_ACTIONS = {
    "serve": _cmd_obs_serve,
    "report": _cmd_obs_report,
    "replay": _cmd_obs_replay,
    "diff": _cmd_obs_diff,
}


def _cmd_obs(args: argparse.Namespace) -> int:
    action = _OBS_ACTIONS.get(args.obs_command)
    if action is None:  # pragma: no cover (argparse enforces)
        raise ReproError(f"unknown obs action {args.obs_command!r}")
    return action(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .cdc import CDCConfig, CDCPipeline, JsonlChangefeed
    from .cdc.checkpoint import has_checkpoint, load_checkpoint, save_checkpoint
    from .core.inverse import pgschema_to_shacl
    from .shacl.validator import DeltaValidator

    shapes = None
    if args.shapes:
        shapes = parse_shacl(Path(args.shapes).read_text(encoding="utf-8"))

    watermark = -1
    if args.checkpoint_dir and has_checkpoint(args.checkpoint_dir):
        state = load_checkpoint(args.checkpoint_dir)
        transformed, graph, watermark = (
            state.transformed, state.source_graph, state.watermark
        )
        if shapes is None:
            shapes = pgschema_to_shacl(transformed.mapping)
        print(
            f"resumed from {args.checkpoint_dir} at watermark {watermark} "
            f"({transformed.graph.node_count()} nodes, "
            f"{transformed.graph.edge_count()} edges)"
        )
    else:
        graph = load_rdf(args.data) if args.data else Graph()
        if shapes is None:
            shapes = extract_shapes(graph)
        options = TransformOptions(
            parsimonious=not args.non_parsimonious, on_unknown=args.on_unknown
        )
        result = S3PG(options).transform(graph, shapes)
        transformed = result.transformed
        print(
            f"transformed base graph: {len(graph)} triples -> "
            f"{transformed.graph.node_count()} nodes / "
            f"{transformed.graph.edge_count()} edges"
        )

    store = PropertyGraphStore(transformed.graph)
    validator = None if args.no_validate else DeltaValidator(shapes, graph)
    pipeline = CDCPipeline(
        transformed,
        graph,
        store=store,
        validator=validator,
        config=CDCConfig(
            max_batch_size=args.batch_size,
            max_linger_s=args.linger_ms / 1000.0,
            queue_maxsize=args.queue_size,
            checkpoint_every=args.checkpoint_every,
            validate=not args.no_validate,
        ),
        quarantine_path=args.quarantine,
        checkpoint_dir=args.checkpoint_dir,
        watermark=watermark,
    )

    workload_installed = False
    if args.ops_port is not None or args.query_log:
        obs.install_workload(log_path=args.query_log)
        workload_installed = True
        if args.query_log:
            print(f"capturing query log to {args.query_log}")

    ops_server = None
    if args.ops_port is not None:
        obs.install_recorder(slow_threshold_ms=args.slow_ms)
        ops_server = obs.OpsServer(
            host=args.ops_host,
            port=args.ops_port,
            health=pipeline.health_snapshot,
        )
        host, port = ops_server.start()
        print(f"ops endpoint on http://{host}:{port}")

    feed = JsonlChangefeed(
        args.source, start_after=watermark, follow=not args.once
    )
    mode = "replaying" if args.once else "tailing"
    print(f"{mode} {args.source} from watermark {watermark}")
    try:
        try:
            stats = asyncio.run(pipeline.run(feed))
        except KeyboardInterrupt:
            print("interrupted")
            if pipeline.checkpoint_dir is not None:
                save_checkpoint(pipeline.checkpoint_dir, pipeline)
                pipeline.stats.checkpoints += 1
            stats = pipeline.stats
        return _print_serve_summary(args, pipeline, stats, validator, ops_server)
    finally:
        if ops_server is not None:
            ops_server.stop()
            obs.uninstall_recorder()
        if workload_installed:
            obs.uninstall_workload()


def _print_serve_summary(args, pipeline, stats, validator, ops_server) -> int:
    transformed = pipeline.transformed
    pg_stats = transformed.graph.stats()
    print(
        f"applied {stats.deltas_applied} delta(s) in {stats.batches} "
        f"batch(es) (+{stats.triples_added}/-{stats.triples_removed} "
        f"triples, {stats.deltas_skipped} skipped, "
        f"{stats.deltas_quarantined} quarantined, {stats.retries} retries)"
    )
    print(
        f"graph: {pg_stats.n_nodes} nodes / {pg_stats.n_edges} edges / "
        f"{pg_stats.n_rel_types} relationship types at watermark "
        f"{pipeline.watermark}"
    )
    if stats.latencies:
        p50_ms, p99_ms = _latency_quantiles_ms(stats.latencies, (0.5, 0.99))
        print(f"latency p50 {p50_ms:.2f}ms / p99 {p99_ms:.2f}ms")
    if validator is not None:
        verdict = "conforms" if validator.conforms else (
            f"{len(validator.report().violations)} violation(s)"
        )
        print(
            f"standing report: {verdict} over {validator.focus_count} focus "
            f"node(s) ({stats.focus_rechecked} rechecked incrementally)"
        )
    if stats.checkpoints:
        print(f"wrote {stats.checkpoints} checkpoint(s) to {args.checkpoint_dir}")
    if (
        ops_server is not None
        and args.once
        and args.ops_grace_s > 0
        and not ops_server.shutdown_requested.is_set()
    ):
        print(
            f"holding ops endpoint for up to {args.ops_grace_s:g}s "
            "(/quitquitquit releases early)"
        )
        ops_server.wait(args.ops_grace_s)
    return 0


_COMMANDS = {
    "transform": _cmd_transform,
    "extract-shapes": _cmd_extract_shapes,
    "validate": _cmd_validate,
    "conformance": _cmd_conformance,
    "stats": _cmd_stats,
    "shape-stats": _cmd_shape_stats,
    "query": _cmd_query,
    "generate": _cmd_generate,
    "snapshot": _cmd_snapshot,
    "to-rdf": _cmd_to_rdf,
    "compact": _cmd_compact,
    "fuzz": _cmd_fuzz,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "obs": _cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    tracing = bool(trace_path) or args.command == "profile"
    if tracing:
        obs.configure()
    try:
        if tracing or metrics_path:
            with obs.span(f"cli.{args.command}"):
                return _COMMANDS[args.command](args)
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # The reader went away (e.g. `repro stats ... | head`); exit
        # quietly like a well-behaved unix tool.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    finally:
        if trace_path:
            tracer = obs.get_tracer()
            if tracer is not None:
                obs.write_trace(tracer.finished(), trace_path)
                _print_quietly(f"wrote trace ({len(tracer)} spans) to {trace_path}")
        if metrics_path:
            obs.write_metrics(obs.get_metrics(), metrics_path)
            _print_quietly(f"wrote metrics to {metrics_path}")
        if tracing:
            obs.disable()
        if tracing or metrics_path:
            obs.get_metrics().reset()


def _print_quietly(message: str) -> None:
    """Print, swallowing a broken pipe — these status lines run in the
    ``finally`` of :func:`main`, where a raise would mask the command's
    exit code when the reader went away (``repro ... | head``)."""
    try:
        print(message)
    except BrokenPipeError:
        pass


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
