"""pg_stat_statements-style workload statistics, capture, replay, diff.

The subsystem has three layers, mirroring how PostgreSQL's
``pg_stat_statements`` is used in production:

1. **Fingerprinting** — :func:`normalize_sparql` / :func:`normalize_cypher`
   rewrite a parsed query into a canonical text: literals and IRIs in
   constant positions become ordered ``$n`` placeholders and variables
   are renumbered ``v0, v1, ...`` in first-use order, so literal-renamed
   queries collapse onto one *statement*.  Structural atoms stay intact:
   SPARQL predicates and ``rdf:type`` objects, Cypher labels /
   relationship types / property keys.  The SPARQL canonical pattern
   text is the parameterized form of the plan cache's
   ``str(TriplePattern)`` key, so one fingerprint maps onto one family
   of cached plans.  The fingerprint is a truncated SHA-256 of the
   canonical text.

2. **Aggregation** — a bounded LRU :class:`WorkloadTracker` registry of
   :class:`StatementStats` keyed by ``(lang, fingerprint)``: calls,
   total/min/max latency, a fixed-boundary latency histogram on the
   shared ``LATENCY_BOUNDARIES``, rows returned, plan-cache hit/miss,
   and worst/mean q-error joined from the planner's ``FeedbackStore``.
   Both engines feed it through the :func:`record_statement` fast-path
   hook (a no-op ``None`` check when no tracker is installed, the same
   pattern as the flight recorder).

3. **Capture & replay** — an installed tracker with a ``log_path``
   appends one JSONL record per (sampled) execution: canonical text,
   parameter renderings, timing, rows, and an order-insensitive
   value-only result hash.  :func:`replay_workload` re-executes a
   captured log against a graph/store by substituting the parameters
   back into the canonical text, verifies bag-identity via the result
   hashes, and emits a per-fingerprint report; :func:`diff_reports`
   compares two such reports and flags latency / q-error regressions.

Because canonical texts must be *re-executable*, the normalizers render
exactly the fragment the repo's own parsers accept — round-trip
stability (substitute → parse → normalize → same fingerprint) is pinned
by the fuzz oracle in ``tests/obs/test_workload_fuzz.py``.

Known parameterization limits (documented, tested pathological cases
excluded): an IRI whose text contains ``$<digits>`` would collide with a
placeholder during substitution, and Cypher strings ending in a
backslash cannot be re-escaped losslessly by the fragment's tokenizer.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
import weakref
from collections import OrderedDict
from pathlib import Path

from .metrics import (
    LATENCY_BOUNDARIES,
    Histogram,
    get_metrics,
    quantiles_from_histogram,
)

__all__ = [
    "StatementStats",
    "WorkloadTracker",
    "cypher_result_hash",
    "diff_reports",
    "fingerprint_query",
    "get_workload",
    "install_workload",
    "log_workload_event",
    "normalize_cypher",
    "normalize_sparql",
    "plan_cache_stats",
    "read_query_log",
    "record_statement",
    "register_plan_cache",
    "replay_workload",
    "report_from_log",
    "sparql_result_hash",
    "substitute_params",
    "uninstall_workload",
]

#: How many hex chars of the SHA-256 make a fingerprint.
_FINGERPRINT_LEN = 16

# Lazy module handles — the query/rdf packages import ``repro.obs`` at
# module load, so importing them back from here at import time would
# create a cycle.  Resolved on first use instead.
_LAZY: dict[str, object] = {}


def _sparql_ast():
    module = _LAZY.get("sparql_ast")
    if module is None:
        from ..query.sparql import ast as module  # type: ignore[no-redef]

        _LAZY["sparql_ast"] = module
    return module


def _cypher_ast():
    module = _LAZY.get("cypher_ast")
    if module is None:
        from ..query.cypher import ast as module  # type: ignore[no-redef]

        _LAZY["cypher_ast"] = module
    return module


def _terms():
    module = _LAZY.get("terms")
    if module is None:
        from ..rdf import terms as module  # type: ignore[no-redef]

        _LAZY["terms"] = module
    return module


def _rdf_type_iri() -> str:
    value = _LAZY.get("rdf_type")
    if value is None:
        from ..namespaces import RDF_TYPE as value  # type: ignore[no-redef]

        _LAZY["rdf_type"] = value
    return value


# --------------------------------------------------------------------- #
# SPARQL normalization
# --------------------------------------------------------------------- #

class _SparqlNormalizer:
    """One normalization pass: variable renumbering + parameter lifting."""

    def __init__(self) -> None:
        self._vars: dict[str, str] = {}
        self.params: list[str] = []

    def var(self, name: str) -> str:
        canonical = self._vars.get(name)
        if canonical is None:
            canonical = f"v{len(self._vars)}"
            self._vars[name] = canonical
        return f"?{canonical}"

    def param(self, term) -> str:
        self.params.append(term.n3())
        return f"${len(self.params)}"

    def _term(self, term, structural: bool) -> str:
        ast = _sparql_ast()
        if isinstance(term, ast.Var):
            return self.var(term.name)
        if structural:
            return term.n3()
        return self.param(term)

    def triple(self, pattern) -> str:
        ast = _sparql_ast()
        terms = _terms()
        is_type = (
            isinstance(pattern.p, terms.IRI)
            and pattern.p.value == _rdf_type_iri()
        )
        s = self._term(pattern.s, structural=False)
        p = self._term(pattern.p, structural=True)
        # The object of rdf:type names a *class* — that is query shape,
        # not a parameter (U3 over :Student and U3 over :Course are
        # different statements).
        o = self._term(pattern.o, structural=is_type)
        return f"{s} {p} {o} ."

    def group(self, patterns) -> str:
        return " ".join(self.triple(p) for p in patterns)

    def expr(self, node) -> str:
        ast = _sparql_ast()
        terms = _terms()
        if isinstance(node, ast.Var):
            return self.var(node.name)
        if isinstance(node, (terms.IRI, terms.Literal)):
            return self.param(node)
        if isinstance(node, ast.Comparison):
            return f"({self.expr(node.lhs)} {node.op} {self.expr(node.rhs)})"
        if isinstance(node, ast.BooleanOp):
            glue = " && " if node.op == "and" else " || "
            return "(" + glue.join(self.expr(op) for op in node.operands) + ")"
        if isinstance(node, ast.NotOp):
            return f"(! {self.expr(node.operand)})"
        if isinstance(node, ast.IsLiteralFn):
            return f"isLiteral({self.expr(node.operand)})"
        if isinstance(node, ast.IsIriFn):
            return f"isIRI({self.expr(node.operand)})"
        if isinstance(node, ast.StrFn):
            return f"STR({self.expr(node.operand)})"
        if isinstance(node, ast.RegexFn):
            pattern = self.param(terms.Literal(node.pattern))
            return f"REGEX({self.expr(node.operand)}, {pattern})"
        raise TypeError(f"unknown SPARQL expression node {type(node).__name__}")


def normalize_sparql(query) -> tuple[str, tuple[str, ...]]:
    """Canonical text + lifted parameters (N3 renderings) of a query."""
    n = _SparqlNormalizer()
    body: list[str] = []
    if query.patterns:
        body.append(n.group(query.patterns))
    if query.unions:
        body.append(
            " UNION ".join("{ " + n.group(g) + " }" for g in query.unions)
        )
    for group in query.optionals:
        body.append("OPTIONAL { " + n.group(group) + " }")
    for expression in query.filters:
        body.append(f"FILTER({n.expr(expression)})")
    where = "{ " + " ".join(body) + " }" if body else "{ }"
    if query.ask:
        text = f"ASK {where}"
    elif query.count is not None:
        text = f"SELECT (COUNT(*) AS {n.var(query.count)}) WHERE {where}"
    else:
        if query.variables:
            projection = " ".join(n.var(v.name) for v in query.variables)
        else:
            projection = "*"
        distinct = "DISTINCT " if query.distinct else ""
        text = f"SELECT {distinct}{projection} WHERE {where}"
    if query.order_by:
        keys = " ".join(
            f"DESC({n.var(k.var.name)})" if k.descending else n.var(k.var.name)
            for k in query.order_by
        )
        text += f" ORDER BY {keys}"
    if query.limit is not None:
        text += f" LIMIT {query.limit}"
    return text, tuple(n.params)


# --------------------------------------------------------------------- #
# Cypher normalization
# --------------------------------------------------------------------- #

def _cypher_value_text(value: object) -> str:
    """Render a parsed Cypher literal value back into parseable syntax."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        # The fragment's tokenizer only unescapes \' and \" — mirror
        # exactly that (see the module docstring for the corner cases).
        if "'" in value and '"' not in value:
            return '"' + value.replace('"', '\\"') + '"'
        return "'" + value.replace("'", "\\'") + "'"
    return repr(value)


class _CypherNormalizer:
    """One normalization pass over a parsed Cypher query."""

    def __init__(self) -> None:
        self._vars: dict[str, str] = {}
        self.params: list[str] = []

    def var(self, name: str) -> str:
        canonical = self._vars.get(name)
        if canonical is None:
            canonical = f"v{len(self._vars)}"
            self._vars[name] = canonical
        return canonical

    def param(self, value: object) -> str:
        self.params.append(_cypher_value_text(value))
        return f"${len(self.params)}"

    def node(self, pattern) -> str:
        inner = self.var(pattern.var) if pattern.var else ""
        inner += "".join(f":{label}" for label in pattern.labels)
        if pattern.properties:
            pairs = ", ".join(
                f"{key}: {self.param(value)}"
                for key, value in pattern.properties
            )
            inner += ("{" if not inner else " {") + pairs + "}"
        return f"({inner})"

    def rel(self, pattern) -> str:
        inner = self.var(pattern.var) if pattern.var else ""
        if pattern.types:
            inner += ":" + "|".join(pattern.types)
        if pattern.direction == "in":
            return f"<-[{inner}]-"
        if pattern.direction == "any":
            return f"-[{inner}]-"
        return f"-[{inner}]->"

    def path(self, pattern) -> str:
        parts = [self.node(pattern.start)]
        for rel, node in pattern.hops:
            parts.append(self.rel(rel))
            parts.append(self.node(node))
        return "".join(parts)

    def expr(self, node) -> str:
        ast = _cypher_ast()
        if isinstance(node, ast.CypherLiteral):
            return self.param(node.value)
        if isinstance(node, ast.VarRef):
            return self.var(node.name)
        if isinstance(node, ast.PropertyAccess):
            return f"{self.var(node.var)}.{node.key}"
        if isinstance(node, ast.Coalesce):
            args = ", ".join(self.expr(a) for a in node.args)
            return f"COALESCE({args})"
        if isinstance(node, ast.CountStar):
            return "count(*)"
        if isinstance(node, ast.CypherComparison):
            return f"({self.expr(node.lhs)} {node.op} {self.expr(node.rhs)})"
        if isinstance(node, ast.CypherBoolean):
            glue = " AND " if node.op == "and" else " OR "
            return "(" + glue.join(self.expr(op) for op in node.operands) + ")"
        if isinstance(node, ast.CypherNot):
            return f"(NOT {self.expr(node.operand)})"
        if isinstance(node, ast.IsNull):
            op = "IS NOT NULL" if node.negated else "IS NULL"
            return f"({self.expr(node.operand)} {op})"
        if isinstance(node, ast.HasLabel):
            return f"({self.var(node.var)}:{node.label})"
        raise TypeError(f"unknown Cypher expression node {type(node).__name__}")

    def clause(self, clause) -> str:
        ast = _cypher_ast()
        if isinstance(clause, ast.MatchClause):
            text = "OPTIONAL MATCH " if clause.optional else "MATCH "
            text += ", ".join(self.path(p) for p in clause.paths)
            if clause.where is not None:
                text += f" WHERE {self.expr(clause.where)}"
            return text
        if isinstance(clause, ast.UnwindClause):
            return f"UNWIND {self.expr(clause.expr)} AS {self.var(clause.var)}"
        if isinstance(clause, ast.WithClause):
            text = "WITH *"
            if clause.where is not None:
                text += f" WHERE {self.expr(clause.where)}"
            return text
        if isinstance(clause, ast.ReturnClause):
            items = []
            for item in clause.items:
                rendered = self.expr(item.expr)
                if item.alias:
                    rendered += f" AS {self.var(item.alias)}"
                items.append(rendered)
            text = "RETURN "
            if clause.distinct:
                text += "DISTINCT "
            text += ", ".join(items)
            if clause.order_by:
                keys = ", ".join(
                    self.expr(k.expr) + (" DESC" if k.descending else "")
                    for k in clause.order_by
                )
                text += f" ORDER BY {keys}"
            if clause.limit is not None:
                text += f" LIMIT {clause.limit}"
            return text
        raise TypeError(f"unknown Cypher clause {type(clause).__name__}")


def normalize_cypher(query) -> tuple[str, tuple[str, ...]]:
    """Canonical text + lifted parameters of a parsed Cypher query."""
    n = _CypherNormalizer()
    parts = [
        " ".join(n.clause(clause) for clause in part.clauses)
        for part in query.parts
    ]
    return " UNION ALL ".join(parts), tuple(n.params)


# --------------------------------------------------------------------- #
# Fingerprints and parameter substitution
# --------------------------------------------------------------------- #

def _fingerprint(lang: str, canonical: str) -> str:
    digest = hashlib.sha256(f"{lang}\n{canonical}".encode("utf-8"))
    return digest.hexdigest()[:_FINGERPRINT_LEN]


#: Bounded raw-text → (fingerprint, canonical, params) cache so the
#: per-execution hook pays one dict lookup for repeated query texts.
_FP_CACHE: OrderedDict[tuple[str, str], tuple[str, str, tuple[str, ...]]]
_FP_CACHE = OrderedDict()
_FP_CACHE_CAPACITY = 1024
_FP_LOCK = threading.Lock()


def fingerprint_query(
    lang: str, text: str, query=None
) -> tuple[str, str, tuple[str, ...]]:
    """``(fingerprint, canonical_text, params)`` for a query.

    ``query`` is the parsed AST when the caller already has it (both
    engines do); without it the text is parsed with the matching
    parser.  Results are cached on the raw text.
    """
    cache_key = (lang, text)
    with _FP_LOCK:
        cached = _FP_CACHE.get(cache_key)
        if cached is not None:
            _FP_CACHE.move_to_end(cache_key)
            return cached
    if query is None:
        if lang == "sparql":
            from ..query.sparql.parser import parse_sparql

            query = parse_sparql(text)
        elif lang == "cypher":
            from ..query.cypher.parser import parse_cypher

            query = parse_cypher(text)
        else:
            raise ValueError(f"unknown query language {lang!r}")
    if lang == "sparql":
        canonical, params = normalize_sparql(query)
    elif lang == "cypher":
        canonical, params = normalize_cypher(query)
    else:
        raise ValueError(f"unknown query language {lang!r}")
    result = (_fingerprint(lang, canonical), canonical, params)
    with _FP_LOCK:
        _FP_CACHE[cache_key] = result
        if len(_FP_CACHE) > _FP_CACHE_CAPACITY:
            _FP_CACHE.popitem(last=False)
    return result


_PLACEHOLDER_RE = re.compile(r"\$(\d+)")


def substitute_params(canonical: str, params) -> str:
    """Rebuild an executable query from canonical text + parameters."""
    params = list(params)

    def _sub(match) -> str:
        index = int(match.group(1)) - 1
        if index < 0 or index >= len(params):
            raise ValueError(
                f"placeholder ${match.group(1)} out of range "
                f"({len(params)} parameter(s))"
            )
        return params[index]

    return _PLACEHOLDER_RE.sub(_sub, canonical)


# --------------------------------------------------------------------- #
# Result hashing (order-insensitive, values only)
# --------------------------------------------------------------------- #
#
# Column names are excluded on purpose: variable renumbering renames the
# binding keys, so a replayed query returns the same *values* under
# canonical names.  Rows are reduced to sorted value renderings and the
# row hashes sorted, making the hash a bag identity.

def _bag_hash(row_texts) -> str:
    digest = hashlib.sha256()
    for text in sorted(row_texts):
        digest.update(text.encode("utf-8", "replace"))
        digest.update(b"\x00")
    return digest.hexdigest()[:_FINGERPRINT_LEN]


def sparql_result_hash(rows) -> str:
    """Bag hash of SPARQL solutions (term N3 renderings, names ignored)."""
    return _bag_hash(
        "|".join(sorted(term.n3() for term in row.values())) for row in rows
    )


def _cypher_value_id(value) -> str:
    type_name = type(value).__name__
    if type_name == "PGNode":
        iri = value.properties.get("iri") if hasattr(value, "properties") else None
        return f"node:{iri if iri is not None else value.id}"
    if type_name == "PGEdge":
        return f"edge:{value.id}"
    if isinstance(value, list):
        return "[" + ",".join(_cypher_value_id(v) for v in value) + "]"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def cypher_result_hash(rows) -> str:
    """Bag hash of Cypher rows (stable value ids, names ignored)."""
    return _bag_hash(
        "|".join(sorted(_cypher_value_id(v) for v in row.values()))
        for row in rows
    )


# --------------------------------------------------------------------- #
# Statement statistics
# --------------------------------------------------------------------- #

class StatementStats:
    """Aggregated execution statistics of one fingerprint."""

    __slots__ = (
        "lang", "fingerprint", "query", "calls", "total_s", "min_s",
        "max_s", "rows_total", "histogram", "cache_hits", "cache_misses",
        "q_error_max", "q_error_sum", "q_error_count",
    )

    def __init__(self, lang: str, fingerprint: str, query: str) -> None:
        self.lang = lang
        self.fingerprint = fingerprint
        self.query = query
        self.calls = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.rows_total = 0
        self.histogram = Histogram(LATENCY_BOUNDARIES)
        self.cache_hits = 0
        self.cache_misses = 0
        self.q_error_max = 0.0
        self.q_error_sum = 0.0
        self.q_error_count = 0

    def observe(
        self,
        duration_s: float,
        rows: int,
        cache_hit: bool | None = None,
        q_error: float | None = None,
    ) -> None:
        self.calls += 1
        self.total_s += duration_s
        self.min_s = min(self.min_s, duration_s)
        self.max_s = max(self.max_s, duration_s)
        self.rows_total += rows
        self.histogram.observe(duration_s)
        if cache_hit is True:
            self.cache_hits += 1
        elif cache_hit is False:
            self.cache_misses += 1
        if q_error is not None:
            self.q_error_max = max(self.q_error_max, q_error)
            self.q_error_sum += q_error
            self.q_error_count += 1

    def snapshot(self) -> dict:
        p50, p95, p99 = quantiles_from_histogram(
            self.histogram, (0.5, 0.95, 0.99)
        )
        q_max = round(self.q_error_max, 3) if self.q_error_count else None
        q_mean = (
            round(self.q_error_sum / self.q_error_count, 3)
            if self.q_error_count
            else None
        )
        return {
            "fingerprint": self.fingerprint,
            "lang": self.lang,
            "query": self.query,
            "calls": self.calls,
            "rows_total": self.rows_total,
            "total_ms": round(self.total_s * 1000.0, 3),
            "mean_ms": round(self.total_s * 1000.0 / self.calls, 3)
            if self.calls
            else 0.0,
            "min_ms": round(self.min_s * 1000.0, 3) if self.calls else 0.0,
            "max_ms": round(self.max_s * 1000.0, 3),
            "p50_ms": round(p50 * 1000.0, 3),
            "p95_ms": round(p95 * 1000.0, 3),
            "p99_ms": round(p99 * 1000.0, 3),
            "plan_cache_hits": self.cache_hits,
            "plan_cache_misses": self.cache_misses,
            "q_error_max": q_max,
            "q_error_mean": q_mean,
        }


class WorkloadTracker:
    """Bounded per-fingerprint statement registry with optional capture.

    Args:
        capacity: max distinct statements kept (LRU eviction beyond it).
        log_path: when given, append one JSONL record per sampled
            execution to this file (the *query log*).
        sample_every: stride sampling for the log — record every Nth
            execution (statistics always see every execution).
    """

    def __init__(
        self,
        capacity: int = 256,
        log_path: str | Path | None = None,
        sample_every: int = 1,
    ) -> None:
        self.capacity = max(1, int(capacity))
        self.sample_every = max(1, int(sample_every))
        self.log_path = Path(log_path) if log_path is not None else None
        self.evicted = 0
        self.logged = 0
        self.seq = 0
        self._statements: OrderedDict[tuple[str, str], StatementStats]
        self._statements = OrderedDict()
        self._lock = threading.Lock()
        self._log_file = (
            open(self.log_path, "a", encoding="utf-8")
            if self.log_path is not None
            else None
        )
        metrics = get_metrics()
        self._m_calls = metrics.counter(
            "repro_statement_calls_total",
            help="statement executions aggregated by the workload tracker",
        )
        self._m_rows = metrics.counter(
            "repro_statement_rows_total",
            help="rows returned by tracked statements",
        )
        self._m_evicted = metrics.counter(
            "repro_statements_evicted_total",
            help="statements evicted from the bounded registry",
        )
        self._m_tracked = metrics.gauge(
            "repro_statements_tracked",
            help="distinct statements currently tracked",
        )
        self._m_logged = metrics.counter(
            "repro_statement_log_records_total",
            help="records appended to the query log",
        )

    # -- recording ------------------------------------------------------ #

    def record(
        self,
        lang: str,
        text: str,
        query,
        duration_s: float,
        rows: int,
        cache_hit: bool | None = None,
        q_error: float | None = None,
        result_hash=None,
    ) -> None:
        """Fold one execution into the registry (and the query log)."""
        fingerprint, canonical, params = fingerprint_query(lang, text, query)
        with self._lock:
            key = (lang, fingerprint)
            stats = self._statements.get(key)
            if stats is None:
                stats = StatementStats(lang, fingerprint, canonical)
                self._statements[key] = stats
                if len(self._statements) > self.capacity:
                    self._statements.popitem(last=False)
                    self.evicted += 1
                    self._m_evicted.inc(1, lang=lang)
            else:
                self._statements.move_to_end(key)
            stats.observe(duration_s, rows, cache_hit, q_error)
            self.seq += 1
            sampled = (
                self._log_file is not None
                and (self.seq - 1) % self.sample_every == 0
            )
            tracked = len(self._statements)
        self._m_calls.inc(1, lang=lang)
        self._m_rows.inc(rows, lang=lang)
        self._m_tracked.set(tracked)
        if sampled:
            record = {
                "seq": self.seq,
                "lang": lang,
                "fingerprint": fingerprint,
                "query": canonical,
                "params": list(params),
                "duration_ms": round(duration_s * 1000.0, 6),
                "rows": rows,
            }
            if cache_hit is not None:
                record["cache_hit"] = bool(cache_hit)
            if q_error is not None:
                record["q_error"] = round(q_error, 6)
            if callable(result_hash):
                record["result_hash"] = result_hash()
            self._append(record)

    def log_event(self, record: dict) -> None:
        """Append a non-query event (e.g. a CDC revalidation probe)."""
        if self._log_file is None:
            return
        with self._lock:
            self.seq += 1
            record = {"seq": self.seq, **record}
        self._append(record)

    def _append(self, record: dict) -> None:
        with self._lock:
            if self._log_file is None:
                return
            self._log_file.write(json.dumps(record, sort_keys=True) + "\n")
            self._log_file.flush()
            self.logged += 1
        self._m_logged.inc(1, lang=record.get("lang", "event"))

    # -- reading -------------------------------------------------------- #

    def snapshot(self, top: int | None = None, lang: str | None = None) -> list[dict]:
        """Per-statement snapshots, heaviest (total time) first."""
        with self._lock:
            snapshots = [
                stats.snapshot()
                for stats in self._statements.values()
                if lang is None or stats.lang == lang
            ]
        snapshots.sort(key=lambda s: (-s["total_ms"], s["fingerprint"]))
        if top is not None:
            snapshots = snapshots[: max(0, int(top))]
        return snapshots

    def summary(self) -> dict:
        with self._lock:
            return {
                "statements": len(self._statements),
                "calls": self.seq,
                "evicted": self.evicted,
                "logged": self.logged,
                "capacity": self.capacity,
            }

    def close(self) -> None:
        with self._lock:
            if self._log_file is not None:
                self._log_file.close()
                self._log_file = None


# --------------------------------------------------------------------- #
# Global tracker (install/uninstall + fast-path hooks)
# --------------------------------------------------------------------- #

_TRACKER: WorkloadTracker | None = None


def install_workload(
    capacity: int = 256,
    log_path: str | Path | None = None,
    sample_every: int = 1,
) -> WorkloadTracker:
    """Install (replacing any previous) the global workload tracker."""
    global _TRACKER
    if _TRACKER is not None:
        _TRACKER.close()
    _TRACKER = WorkloadTracker(
        capacity=capacity, log_path=log_path, sample_every=sample_every
    )
    return _TRACKER


def uninstall_workload() -> None:
    """Remove the global tracker (closing its query log, if any)."""
    global _TRACKER
    if _TRACKER is not None:
        _TRACKER.close()
        _TRACKER = None


def get_workload() -> WorkloadTracker | None:
    return _TRACKER


def record_statement(
    lang: str,
    text: str,
    query,
    duration_s: float,
    rows: int,
    cache_hit: bool | None = None,
    q_error: float | None = None,
    result_hash=None,
) -> None:
    """Engine hook: a no-op unless a tracker is installed."""
    tracker = _TRACKER
    if tracker is None:
        return
    tracker.record(
        lang, text, query, duration_s, rows,
        cache_hit=cache_hit, q_error=q_error, result_hash=result_hash,
    )


def log_workload_event(record: dict) -> None:
    """Event hook (CDC revalidation probes): no-op unless capturing."""
    tracker = _TRACKER
    if tracker is None:
        return
    tracker.log_event(record)


# --------------------------------------------------------------------- #
# Plan-cache registry (for /healthz occupancy and hit-ratio)
# --------------------------------------------------------------------- #

_PLAN_CACHES: list[tuple[str, weakref.ref]] = []
_PLAN_CACHES_LOCK = threading.Lock()


def register_plan_cache(engine: str, cache) -> None:
    """Register a planner's :class:`PlanCache` for healthz aggregation."""
    with _PLAN_CACHES_LOCK:
        _PLAN_CACHES[:] = [
            (name, ref) for name, ref in _PLAN_CACHES if ref() is not None
        ]
        _PLAN_CACHES.append((engine, weakref.ref(cache)))


def plan_cache_stats() -> dict:
    """Aggregated live plan-cache statistics, keyed by engine."""
    engines: dict[str, dict] = {}
    with _PLAN_CACHES_LOCK:
        live = []
        for engine, ref in _PLAN_CACHES:
            cache = ref()
            if cache is None:
                continue
            live.append((engine, ref))
            agg = engines.setdefault(
                engine,
                {"caches": 0, "entries": 0, "capacity": 0,
                 "hits": 0, "misses": 0},
            )
            stats = cache.stats()
            agg["caches"] += 1
            agg["entries"] += stats["entries"]
            agg["capacity"] += stats["maxsize"]
            agg["hits"] += stats["hits"]
            agg["misses"] += stats["misses"]
        _PLAN_CACHES[:] = live
    for agg in engines.values():
        lookups = agg["hits"] + agg["misses"]
        agg["hit_ratio"] = (
            round(agg["hits"] / lookups, 4) if lookups else None
        )
        agg["occupancy"] = (
            round(agg["entries"] / agg["capacity"], 4)
            if agg["capacity"]
            else 0.0
        )
    return engines


# --------------------------------------------------------------------- #
# Query-log IO, offline reports, replay, diff
# --------------------------------------------------------------------- #

def read_query_log(path: str | Path) -> list[dict]:
    """Parse a JSONL query log; malformed lines raise ``ValueError``."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: malformed query-log record: {error}"
                ) from error
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{number}: query-log record is not an object"
                )
            records.append(record)
    return records


def report_from_log(records, source: str = "") -> dict:
    """Aggregate captured records offline into a workload report."""
    stats: dict[tuple[str, str], StatementStats] = {}
    events = 0
    for record in records:
        lang = record.get("lang")
        if lang not in ("sparql", "cypher"):
            events += 1
            continue
        fingerprint = record.get("fingerprint", "")
        key = (lang, fingerprint)
        entry = stats.get(key)
        if entry is None:
            entry = StatementStats(lang, fingerprint, record.get("query", ""))
            stats[key] = entry
        entry.observe(
            float(record.get("duration_ms", 0.0)) / 1000.0,
            int(record.get("rows", 0)),
            record.get("cache_hit"),
            record.get("q_error"),
        )
    statements = [entry.snapshot() for entry in stats.values()]
    statements.sort(key=lambda s: (-s["total_ms"], s["fingerprint"]))
    return {
        "kind": "workload-report",
        "source": str(source),
        "records": len(records),
        "events": events,
        "statements": statements,
    }


def replay_workload(
    records,
    graph=None,
    store=None,
    repeat: int = 1,
    source: str = "",
) -> dict:
    """Re-execute a captured workload and report per-fingerprint stats.

    SPARQL records run against ``graph``; Cypher records against
    ``store``.  Each record's canonical text is rebuilt with its logged
    parameters, executed ``repeat`` times, and — when the record
    carries a ``result_hash`` — checked for bag-identity against the
    capture.  The replay installs its own tracker for the duration (the
    previously installed one, if any, is restored afterwards).
    """
    global _TRACKER
    repeat = max(1, int(repeat))
    previous = _TRACKER
    tracker = WorkloadTracker(capacity=4096)
    _TRACKER = tracker
    sparql_engine = None
    cypher_engine = None
    replayed = skipped = mismatches = 0
    verified: dict[str, list[int]] = {}
    try:
        for record in records:
            lang = record.get("lang")
            if lang == "sparql":
                if graph is None:
                    raise ValueError(
                        "query log contains SPARQL records but no graph "
                        "was provided"
                    )
                if sparql_engine is None:
                    from ..query.sparql.evaluator import SparqlEngine

                    sparql_engine = SparqlEngine(graph)
                engine = sparql_engine
                hasher = sparql_result_hash
            elif lang == "cypher":
                if store is None:
                    raise ValueError(
                        "query log contains Cypher records but no property "
                        "graph store was provided (transform the data first)"
                    )
                if cypher_engine is None:
                    from ..query.cypher.evaluator import CypherEngine

                    cypher_engine = CypherEngine(store)
                engine = cypher_engine
                hasher = cypher_result_hash
            else:
                skipped += 1
                continue
            text = substitute_params(
                record["query"], record.get("params", ())
            )
            for _ in range(repeat):
                rows = engine.query(text)
            replayed += 1
            expected = record.get("result_hash")
            if expected is not None:
                counts = verified.setdefault(record["fingerprint"], [0, 0])
                counts[0] += 1
                if hasher(rows) != expected:
                    counts[1] += 1
                    mismatches += 1
    finally:
        _TRACKER = previous
    statements = tracker.snapshot()
    for statement in statements:
        counts = verified.get(statement["fingerprint"])
        statement["bag_identical"] = (
            None if counts is None else counts[1] == 0
        )
    return {
        "kind": "workload-report",
        "source": str(source),
        "records": len(records),
        "replayed": replayed,
        "repeat": repeat,
        "skipped": skipped,
        "mismatches": mismatches,
        "statements": statements,
    }


def diff_reports(
    baseline: dict,
    current: dict,
    latency_ratio: float = 1.5,
    q_error_ratio: float = 2.0,
    min_ms: float = 0.1,
) -> dict:
    """Compare two workload reports, flagging per-fingerprint regressions.

    A statement regresses on latency when its mean latency grew by more
    than ``latency_ratio``× *and* the current mean exceeds ``min_ms``
    (absolute floor against timer noise on micro-queries), and on
    q-error when its worst q-error grew by more than ``q_error_ratio``×.
    """
    base = {s["fingerprint"]: s for s in baseline.get("statements", ())}
    cur = {s["fingerprint"]: s for s in current.get("statements", ())}
    statements: list[dict] = []
    regressed = added = removed = 0
    for fingerprint in sorted(set(base) | set(cur)):
        b, c = base.get(fingerprint), cur.get(fingerprint)
        entry = {
            "fingerprint": fingerprint,
            "lang": (c or b)["lang"],
            "query": (c or b)["query"],
        }
        if c is None:
            entry["status"] = "removed"
            entry["baseline_mean_ms"] = b["mean_ms"]
            removed += 1
        elif b is None:
            entry["status"] = "added"
            entry["current_mean_ms"] = c["mean_ms"]
            added += 1
        else:
            flags = []
            ratio = (
                round(c["mean_ms"] / b["mean_ms"], 3)
                if b["mean_ms"] > 0
                else None
            )
            if (
                ratio is not None
                and ratio > latency_ratio
                and c["mean_ms"] >= min_ms
            ):
                flags.append("latency")
            bq, cq = b.get("q_error_max"), c.get("q_error_max")
            if bq and cq and cq > bq * q_error_ratio:
                flags.append("q_error")
            entry.update(
                status="regressed" if flags else "ok",
                flags=flags,
                baseline_mean_ms=b["mean_ms"],
                current_mean_ms=c["mean_ms"],
                latency_ratio=ratio,
                baseline_q_error=bq,
                current_q_error=cq,
            )
            if flags:
                regressed += 1
        statements.append(entry)
    order = {"regressed": 0, "added": 1, "removed": 2, "ok": 3}
    statements.sort(key=lambda s: (order[s["status"]], s["fingerprint"]))
    return {
        "kind": "workload-diff",
        "thresholds": {
            "latency_ratio": latency_ratio,
            "q_error_ratio": q_error_ratio,
            "min_ms": min_ms,
        },
        "compared": len(statements),
        "regressed": regressed,
        "added": added,
        "removed": removed,
        "statements": statements,
    }
