"""Self-time aggregation over a span list (the ``repro profile`` view).

*Self time* of a span is its duration minus the summed durations of its
direct children — the time spent in the span's own code rather than in
instrumented callees.  Aggregating self time by span name answers "where
did this run actually go?" without double-counting nested phases.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from .tracer import Span

__all__ = ["SelfTimeRow", "aggregate_self_times", "render_profile"]


@dataclass
class SelfTimeRow:
    """Aggregated timing of all spans sharing one name."""

    name: str
    count: int
    total_s: float
    self_s: float

    @property
    def mean_ms(self) -> float:
        return (self.total_s / self.count) * 1000.0 if self.count else 0.0


def aggregate_self_times(spans: list[Span]) -> list[SelfTimeRow]:
    """Per-name span statistics, sorted by descending self time."""
    children_ns: dict[str, int] = defaultdict(int)
    for span in spans:
        if span.parent_id is not None and span.end_ns is not None:
            children_ns[span.parent_id] += span.duration_ns

    totals: dict[str, list[float]] = {}
    for span in spans:
        if span.end_ns is None:
            continue
        self_ns = max(0, span.duration_ns - children_ns.get(span.span_id, 0))
        row = totals.setdefault(span.name, [0, 0.0, 0.0])
        row[0] += 1
        row[1] += span.duration_ns / 1e9
        row[2] += self_ns / 1e9
    rows = [
        SelfTimeRow(name=name, count=int(count), total_s=total, self_s=self_s)
        for name, (count, total, self_s) in totals.items()
    ]
    rows.sort(key=lambda row: row.self_s, reverse=True)
    return rows


def render_profile(spans: list[Span], top: int = 15) -> str:
    """A fixed-width top-N self-time table for terminal output."""
    rows = aggregate_self_times(spans)[:top]
    if not rows:
        return "no spans recorded"
    name_width = max(len("span"), max(len(row.name) for row in rows))
    lines = [
        f"{'span':<{name_width}}  {'count':>6}  {'total s':>9}  "
        f"{'self s':>9}  {'self %':>6}"
    ]
    grand_self = sum(row.self_s for row in rows) or 1.0
    for row in rows:
        lines.append(
            f"{row.name:<{name_width}}  {row.count:>6}  {row.total_s:>9.4f}  "
            f"{row.self_s:>9.4f}  {100.0 * row.self_s / grand_self:>5.1f}%"
        )
    return "\n".join(lines)
