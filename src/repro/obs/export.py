"""Exporters for the observability layer.

Three span formats and two metric formats:

* **JSON-lines** (``.jsonl``) — one span object per line, the grep-able
  archival format;
* **Chrome trace events** (``.json``) — the ``traceEvents`` array of
  complete (``"ph": "X"``) events, loadable in Perfetto or
  ``chrome://tracing``; timestamps are rebased to the earliest span so
  traces start at t=0 regardless of the monotonic-clock origin;
* **Prometheus text exposition** (``.prom`` / anything else) and a JSON
  snapshot (``.json``) for metrics.

``write_trace`` / ``write_metrics`` dispatch on the file suffix, which
is what the ``--trace FILE`` / ``--metrics FILE`` CLI flags call.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import MetricsRegistry
from .tracer import Span

__all__ = [
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
    "write_trace",
]


def spans_to_jsonl(spans: list[Span]) -> str:
    """One compact JSON object per span, one span per line."""
    lines = []
    for span in spans:
        record = span.as_dict()
        record["duration_ns"] = span.duration_ns
        lines.append(json.dumps(record, sort_keys=True, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(spans: list[Span], path: str | Path) -> None:
    """Write the JSON-lines trace to ``path``."""
    Path(path).write_text(spans_to_jsonl(spans), encoding="utf-8")


def spans_to_chrome_trace(spans: list[Span]) -> dict:
    """The Chrome trace-event document for a span list.

    Every span becomes one complete event; span attributes land in
    ``args`` so Perfetto shows them in the details pane.  Open spans
    (no end time) are skipped — a written trace only contains finished
    work.
    """
    closed = [span for span in spans if span.end_ns is not None]
    base_ns = min((span.start_ns for span in closed), default=0)
    events = []
    for span in closed:
        args = {str(k): v for k, v in span.attributes.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.status != "ok":
            args["status"] = span.status
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": (span.start_ns - base_ns) / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": span.pid,
            "tid": span.tid,
            "args": args,
        })
    events.sort(key=lambda event: event["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: list[Span], path: str | Path) -> None:
    """Write the Chrome trace-event JSON to ``path``."""
    Path(path).write_text(
        json.dumps(spans_to_chrome_trace(spans), indent=1, default=str) + "\n",
        encoding="utf-8",
    )


def write_trace(spans: list[Span], path: str | Path) -> None:
    """Write spans to ``path``; ``.jsonl`` selects JSON-lines, anything
    else the Chrome trace-event format."""
    path = Path(path)
    if path.suffix == ".jsonl":
        write_jsonl(spans, path)
    else:
        write_chrome_trace(spans, path)


def write_metrics(registry: MetricsRegistry, path: str | Path) -> None:
    """Write the registry to ``path``; ``.json`` selects the snapshot
    dump, anything else (conventionally ``.prom``) the Prometheus text
    exposition format."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(
            json.dumps(registry.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    else:
        path.write_text(registry.to_prometheus(), encoding="utf-8")
