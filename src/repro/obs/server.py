"""A stdlib-only HTTP ops endpoint for live introspection.

:class:`OpsServer` runs a :class:`~http.server.ThreadingHTTPServer` on a
daemon thread and exposes the process's runtime diagnostics:

======================  ================================================
``GET /metrics``        Prometheus text exposition of the process-global
                        metrics registry.
``GET /healthz``        JSON liveness document: uptime, recorder
                        occupancy, plan-cache occupancy/hit-ratio,
                        store size gauges, workload-tracker summary,
                        plus whatever the optional ``health`` callable
                        contributes (the CDC pipeline adds its
                        staleness watermark and queue depth).
``GET /debug/slow``     JSON array: the flight recorder's slow-op log.
``GET /debug/trace``    JSON array: recent spans from the span ring
                        (``?limit=N`` caps the tail).
``GET /debug/statements``  JSON array: per-fingerprint statement
                        statistics from the workload tracker, heaviest
                        first (``?top=N``, ``?lang=sparql|cypher``).
``GET /``               Route index.
``/quitquitquit``       Sets the shutdown event (GET or POST) — the
                        owning process decides what to do with it; used
                        by ``repro serve --once`` to end a grace period
                        deterministically.
======================  ================================================

Everything is read-only snapshots over thread-safe structures, so
serving concurrent scrapes while the service mutates state needs no
extra locking here.
"""

from __future__ import annotations

import json
import threading
from collections.abc import Callable
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .metrics import get_metrics
from .recorder import get_recorder
from .workload import get_workload, plan_cache_stats

__all__ = ["OpsServer"]

_ROUTES = [
    "/metrics",
    "/healthz",
    "/debug/slow",
    "/debug/trace",
    "/debug/statements",
    "/quitquitquit",
]

#: Gauges surfaced by ``/healthz`` as the store-size summary (set by the
#: CDC pipeline per batch and by the replay/serve CLI paths on load).
_STORE_GAUGES = (
    ("nodes", "repro_store_nodes"),
    ("edges", "repro_store_edges"),
    ("triples", "repro_graph_triples"),
)


def _store_sizes() -> dict:
    sizes: dict = {}
    registry = get_metrics()
    for key, name in _STORE_GAUGES:
        family = registry.family(name)
        if family is None:
            continue
        for labels, gauge in family.children():
            if labels == ():
                sizes[key] = gauge.value
    return sizes


class OpsServer:
    """Serve ``/metrics``, ``/healthz``, and the debug routes.

    Args:
        host: bind address (default loopback).
        port: bind port; 0 picks an ephemeral port (see :meth:`start`'s
            return value for the actual one).
        health: optional zero-argument callable returning a dict merged
            into the ``/healthz`` document (e.g. CDC pipeline state).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        health: Callable[[], dict] | None = None,
    ):
        self.host = host
        self.port = port
        self.health = health
        #: Set when a ``/quitquitquit`` request arrives.
        self.shutdown_requested = threading.Event()
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> tuple[str, int]:
        """Bind and serve on a daemon thread; returns ``(host, port)``."""
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-ops-server",
            daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def wait(self, timeout: float | None = None) -> bool:
        """Block until ``/quitquitquit`` is hit (True) or timeout (False)."""
        return self.shutdown_requested.wait(timeout)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # Route payloads
    # ------------------------------------------------------------------ #

    def healthz(self) -> dict:
        document: dict = {"status": "ok"}
        recorder = get_recorder()
        if recorder is not None:
            document["recorder"] = recorder.snapshot()
        caches = plan_cache_stats()
        if caches:
            document["plan_cache"] = caches
        sizes = _store_sizes()
        if sizes:
            document["store"] = sizes
        tracker = get_workload()
        if tracker is not None:
            document["statements"] = tracker.summary()
        if self.health is not None:
            try:
                document.update(self.health())
            except Exception as exc:
                document["status"] = "degraded"
                document["health_error"] = f"{type(exc).__name__}: {exc}"
        return document

    def debug_slow(self) -> list[dict]:
        recorder = get_recorder()
        return recorder.slow() if recorder is not None else []

    def debug_trace(self, limit: int | None = None) -> list[dict]:
        recorder = get_recorder()
        if recorder is not None:
            return recorder.recent_spans(limit)
        from .tracer import get_tracer

        tracer = get_tracer()
        if tracer is None:
            return []
        spans = tracer.serialized()
        return spans[-limit:] if limit is not None else spans

    def debug_statements(
        self, top: int | None = None, lang: str | None = None
    ) -> list[dict]:
        tracker = get_workload()
        return tracker.snapshot(top=top, lang=lang) if tracker else []


def _make_handler(server: OpsServer):
    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format: str, *args: object) -> None:
            pass  # scrapes should not spam the service's stderr

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            parsed = urlparse(self.path)
            route = parsed.path.rstrip("/") or "/"
            if route == "/metrics":
                body = get_metrics().to_prometheus().encode()
                self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
            elif route == "/healthz":
                self._json(200, server.healthz())
            elif route == "/debug/slow":
                self._json(200, server.debug_slow())
            elif route == "/debug/trace":
                query = parse_qs(parsed.query)
                limit = None
                if "limit" in query:
                    try:
                        limit = max(0, int(query["limit"][0]))
                    except ValueError:
                        self._json(400, {"error": "limit must be an integer"})
                        return
                self._json(200, server.debug_trace(limit))
            elif route == "/debug/statements":
                query = parse_qs(parsed.query)
                top = None
                if "top" in query:
                    try:
                        top = max(0, int(query["top"][0]))
                    except ValueError:
                        self._json(400, {"error": "top must be an integer"})
                        return
                lang = query.get("lang", [None])[0]
                if lang not in (None, "sparql", "cypher"):
                    self._json(400, {"error": "lang must be sparql or cypher"})
                    return
                self._json(200, server.debug_statements(top, lang))
            elif route == "/quitquitquit":
                server.shutdown_requested.set()
                self._json(200, {"shutdown": True})
            elif route == "/":
                self._json(200, {"routes": _ROUTES})
            else:
                self._json(404, {"error": f"unknown route {route!r}"})

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            route = urlparse(self.path).path.rstrip("/")
            if route == "/quitquitquit":
                server.shutdown_requested.set()
                self._json(200, {"shutdown": True})
            else:
                self._json(404, {"error": f"unknown route {route!r}"})

        def _json(self, status: int, payload: object) -> None:
            body = json.dumps(payload, indent=2, default=str).encode()
            self._reply(status, body, "application/json")

        def _reply(self, status: int, body: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

    return _Handler
