"""Unified observability: hierarchical tracing + a metrics registry.

One layer serves every subsystem — the serial pipeline, the parallel
engine (with cross-process span re-parenting), the SHACL validator, and
both query engines — replacing the per-module timing silos that existed
before.  The two halves:

* :mod:`repro.obs.tracer` — contextvar-propagated spans with per-span
  attributes/counters, zero-cost when no tracer is configured;
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-boundary
  histograms with Prometheus text exposition.

Exporters (:mod:`repro.obs.export`) write JSON-lines, Chrome
trace-event, and Prometheus artifacts; :mod:`repro.obs.profile` turns a
span list into a top-N self-time table.  The ``--trace`` / ``--metrics``
CLI flags and the ``repro profile`` subcommand are the user-facing
entry points.
"""

from .export import (
    spans_to_chrome_trace,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
    write_trace,
)
from .metrics import (
    DEFAULT_BOUNDARIES,
    LATENCY_BOUNDARIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    histogram_from_samples,
    quantiles_from_histogram,
)
from .profile import SelfTimeRow, aggregate_self_times, render_profile
from .recorder import (
    FlightRecorder,
    get_recorder,
    install_recorder,
    record_op,
    record_query,
    uninstall_recorder,
)
from .server import OpsServer
from .workload import (
    StatementStats,
    WorkloadTracker,
    cypher_result_hash,
    diff_reports,
    fingerprint_query,
    get_workload,
    install_workload,
    log_workload_event,
    normalize_cypher,
    normalize_sparql,
    plan_cache_stats,
    read_query_log,
    record_statement,
    register_plan_cache,
    replay_workload,
    report_from_log,
    sparql_result_hash,
    substitute_params,
    uninstall_workload,
)
from .tracer import (
    Span,
    SpanContext,
    Tracer,
    configure,
    current_context,
    current_span,
    disable,
    enabled,
    get_tracer,
    set_tracer,
    span,
    timed_span,
)

__all__ = [
    "Counter",
    "DEFAULT_BOUNDARIES",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDARIES",
    "MetricsRegistry",
    "OpsServer",
    "SelfTimeRow",
    "Span",
    "SpanContext",
    "StatementStats",
    "Tracer",
    "WorkloadTracker",
    "aggregate_self_times",
    "configure",
    "current_context",
    "current_span",
    "cypher_result_hash",
    "diff_reports",
    "disable",
    "enabled",
    "fingerprint_query",
    "get_metrics",
    "get_recorder",
    "get_tracer",
    "get_workload",
    "histogram_from_samples",
    "install_recorder",
    "install_workload",
    "log_workload_event",
    "normalize_cypher",
    "normalize_sparql",
    "plan_cache_stats",
    "quantiles_from_histogram",
    "read_query_log",
    "record_op",
    "record_query",
    "record_statement",
    "register_plan_cache",
    "render_profile",
    "replay_workload",
    "report_from_log",
    "set_tracer",
    "span",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "sparql_result_hash",
    "substitute_params",
    "timed_span",
    "uninstall_recorder",
    "uninstall_workload",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
    "write_trace",
]
