"""Unified observability: hierarchical tracing + a metrics registry.

One layer serves every subsystem — the serial pipeline, the parallel
engine (with cross-process span re-parenting), the SHACL validator, and
both query engines — replacing the per-module timing silos that existed
before.  The two halves:

* :mod:`repro.obs.tracer` — contextvar-propagated spans with per-span
  attributes/counters, zero-cost when no tracer is configured;
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-boundary
  histograms with Prometheus text exposition.

Exporters (:mod:`repro.obs.export`) write JSON-lines, Chrome
trace-event, and Prometheus artifacts; :mod:`repro.obs.profile` turns a
span list into a top-N self-time table.  The ``--trace`` / ``--metrics``
CLI flags and the ``repro profile`` subcommand are the user-facing
entry points.
"""

from .export import (
    spans_to_chrome_trace,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
    write_trace,
)
from .metrics import (
    DEFAULT_BOUNDARIES,
    LATENCY_BOUNDARIES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
)
from .profile import SelfTimeRow, aggregate_self_times, render_profile
from .recorder import (
    FlightRecorder,
    get_recorder,
    install_recorder,
    record_op,
    record_query,
    uninstall_recorder,
)
from .server import OpsServer
from .tracer import (
    Span,
    SpanContext,
    Tracer,
    configure,
    current_context,
    current_span,
    disable,
    enabled,
    get_tracer,
    set_tracer,
    span,
    timed_span,
)

__all__ = [
    "Counter",
    "DEFAULT_BOUNDARIES",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDARIES",
    "MetricsRegistry",
    "OpsServer",
    "SelfTimeRow",
    "Span",
    "SpanContext",
    "Tracer",
    "aggregate_self_times",
    "configure",
    "current_context",
    "current_span",
    "disable",
    "enabled",
    "get_metrics",
    "get_recorder",
    "get_tracer",
    "install_recorder",
    "record_op",
    "record_query",
    "render_profile",
    "set_tracer",
    "span",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "timed_span",
    "uninstall_recorder",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
    "write_trace",
]
