"""Counters, gauges, and fixed-boundary histograms with Prometheus export.

The registry follows the Prometheus data model: a *family* is a named
metric of one kind; a family with labels holds one child instrument per
distinct label set.  Both label-less use::

    get_metrics().counter("repro_transform_runs_total").inc()

and labelled use::

    get_metrics().counter("repro_validator_checks_total").inc(3, shape="Person")

go through the family.  :meth:`MetricsRegistry.to_prometheus` renders
the text exposition format; :meth:`MetricsRegistry.snapshot` produces a
JSON-ready dict (embedded in the ``BENCH_*.json`` benchmark artifacts).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "histogram_from_samples",
    "quantiles_from_histogram",
    "DEFAULT_BOUNDARIES",
    "LATENCY_BOUNDARIES",
]

#: Default histogram bucket boundaries (seconds-flavoured).
DEFAULT_BOUNDARIES: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
)

#: Sub-second-biased boundaries for per-event latencies (e.g. the CDC
#: pipeline's end-to-end delta latency), where the interesting range is
#: hundreds of microseconds to a few seconds.
LATENCY_BOUNDARIES: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A fixed-boundary histogram (cumulative buckets, Prometheus-style)."""

    __slots__ = ("boundaries", "bucket_counts", "sum", "count")

    kind = "histogram"

    def __init__(self, boundaries: tuple[float, ...] = DEFAULT_BOUNDARIES):
        self.boundaries = tuple(sorted(boundaries))
        #: One count per boundary plus the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: int | float) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative-count)`` rows, ending with ``(inf, count)``."""
        rows = []
        running = 0
        for boundary, bucket in zip(self.boundaries, self.bucket_counts):
            running += bucket
            rows.append((boundary, running))
        rows.append((float("inf"), self.count))
        return rows

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "buckets": {
                ("+Inf" if le == float("inf") else repr(le)): cumulative
                for le, cumulative in self.cumulative()
            },
        }


def quantiles_from_histogram(
    histogram: Histogram, qs: tuple[float, ...] = (0.5, 0.95, 0.99)
) -> list[float]:
    """Estimate quantiles from a fixed-boundary histogram.

    The shared percentile path for ``repro obs report``, the ops
    server's ``/debug/statements``, and the benchmark artifacts.  Each
    quantile is found by walking the buckets to the target rank and
    interpolating linearly inside the containing bucket (the first
    bucket interpolates from 0, the +Inf overflow bucket is capped at
    the top boundary — fixed-boundary histograms cannot resolve beyond
    it).  An empty histogram reports 0.0 for every quantile.
    """
    total = histogram.count
    if total == 0:
        return [0.0 for _ in qs]
    boundaries = histogram.boundaries
    values: list[float] = []
    for q in qs:
        rank = q * total
        running = 0
        value = float(boundaries[-1])
        for index, bucket in enumerate(histogram.bucket_counts):
            if bucket and running + bucket >= rank:
                lo = 0.0 if index == 0 else boundaries[index - 1]
                hi = (
                    boundaries[index]
                    if index < len(boundaries)
                    else boundaries[-1]
                )
                fraction = max(0.0, min(1.0, (rank - running) / bucket))
                value = lo + (hi - lo) * fraction
                break
            running += bucket
        values.append(value)
    return values


def histogram_from_samples(
    samples, boundaries: tuple[float, ...] = LATENCY_BOUNDARIES
) -> Histogram:
    """Bucket raw samples so they can feed :func:`quantiles_from_histogram`."""
    histogram = Histogram(boundaries)
    for sample in samples:
        histogram.observe(sample)
    return histogram


class _Family:
    """All instruments of one metric name (one per label set)."""

    def __init__(self, name: str, kind: str, help: str, factory):
        self.name = name
        self.kind = kind
        self.help = help
        self._factory = factory
        self._children: dict[tuple[tuple[str, str], ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        """The child instrument for one label set (created on demand)."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._factory())
        return child

    # Convenience: calling the family without labels() operates on the
    # label-less child, so `counter(name).inc(3, shape="X")` and
    # `counter(name).inc()` both read naturally.
    def inc(self, amount: int | float = 1, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def set(self, value: int | float, **labels: str) -> None:
        self.labels(**labels).set(value)

    def observe(self, value: int | float, **labels: str) -> None:
        self.labels(**labels).observe(value)

    def children(self) -> list[tuple[tuple[tuple[str, str], ...], object]]:
        with self._lock:
            return sorted(self._children.items())


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{key}="{_escape_label(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """A named collection of metric families."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Family constructors (idempotent by name)
    # ------------------------------------------------------------------ #

    def _family(self, name: str, kind: str, help: str, factory) -> _Family:
        family = self._families.get(name)
        if family is None:
            with self._lock:
                family = self._families.setdefault(
                    name, _Family(name, kind, help, factory)
                )
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}"
            )
        return family

    def counter(self, name: str, help: str = "") -> _Family:
        """Get-or-create a counter family."""
        return self._family(name, "counter", help, Counter)

    def gauge(self, name: str, help: str = "") -> _Family:
        """Get-or-create a gauge family."""
        return self._family(name, "gauge", help, Gauge)

    def histogram(
        self,
        name: str,
        boundaries: tuple[float, ...] = DEFAULT_BOUNDARIES,
        help: str = "",
    ) -> _Family:
        """Get-or-create a histogram family with fixed bucket boundaries."""
        return self._family(
            name, "histogram", help, lambda: Histogram(boundaries)
        )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def family(self, name: str) -> _Family | None:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._families.get(name)

    def snapshot(self) -> dict:
        """JSON-ready dump: name -> {kind, help, series: [...]}."""
        out: dict[str, dict] = {}
        for family in self.families():
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": [
                    {"labels": dict(labels), **instrument.snapshot()}
                    for labels, instrument in family.children()
                ],
            }
        return out

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, instrument in family.children():
                if family.kind == "histogram":
                    for le, cumulative in instrument.cumulative():
                        le_text = "+Inf" if le == float("inf") else _format_value(float(le))
                        label_text = _render_labels(labels, f'le="{le_text}"')
                        lines.append(
                            f"{family.name}_bucket{label_text} {cumulative}"
                        )
                    label_text = _render_labels(labels)
                    lines.append(
                        f"{family.name}_sum{label_text} "
                        f"{_format_value(float(instrument.sum))}"
                    )
                    lines.append(
                        f"{family.name}_count{label_text} {instrument.count}"
                    )
                else:
                    label_text = _render_labels(labels)
                    lines.append(
                        f"{family.name}{label_text} "
                        f"{_format_value(float(instrument.value))}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every family (used between CLI runs and in tests)."""
        with self._lock:
            self._families.clear()


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry (always available)."""
    return _METRICS
