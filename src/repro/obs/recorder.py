"""The flight recorder: always-on, bounded runtime diagnostics.

A :class:`FlightRecorder` owns two ring buffers sized for an always-on
service:

* a **span ring** — a :class:`~repro.obs.tracer.Tracer` bounded to the
  most recent ``span_capacity`` spans, installed as the global tracer
  so every existing instrument point feeds it; and
* a **slow-op log** — any observed operation (query, CDC batch) slower
  than ``slow_threshold_ms`` is captured with its metadata, including
  the full plan with actuals for queries.  Plan capture is *lazy*: the
  instrument points pass a zero-argument callable that is only invoked
  when the operation actually crossed the threshold, so fast operations
  never pay for explain assembly.

The module-level hooks (:func:`record_query`, :func:`record_op`) are
called unconditionally from the engines and the CDC pipeline; with no
recorder installed they are a single attribute check, keeping the
disabled path within the overhead budget pinned by
``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from collections.abc import Callable

from .metrics import LATENCY_BOUNDARIES, get_metrics
from .tracer import Tracer, get_tracer, set_tracer

__all__ = [
    "FlightRecorder",
    "get_recorder",
    "install_recorder",
    "record_op",
    "record_query",
    "uninstall_recorder",
]


class FlightRecorder:
    """Bounded recent-history diagnostics for a long-running process.

    Args:
        span_capacity: how many recent spans the span ring retains.
        slow_threshold_ms: operations at or above this latency are
            captured in the slow-op log (0 captures everything).
        slow_capacity: how many slow operations the log retains.
    """

    def __init__(
        self,
        span_capacity: int = 4096,
        slow_threshold_ms: float = 100.0,
        slow_capacity: int = 64,
    ):
        self.span_capacity = span_capacity
        self.slow_threshold_ms = slow_threshold_ms
        self.slow_capacity = slow_capacity
        self.started_ns = time.time_ns()
        #: The bounded tracer backing ``/debug/trace``.
        self.tracer = Tracer(max_spans=span_capacity)
        self._slow: deque[dict] = deque(maxlen=slow_capacity)
        self._seq = itertools.count(1)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #

    def observe(
        self,
        kind: str,
        name: str,
        duration_s: float,
        detail: dict | None = None,
        plan: Callable[[], object] | None = None,
    ) -> dict | None:
        """Record one finished operation; capture it if it was slow.

        ``plan`` is a lazy callable producing a JSON-friendly plan
        snapshot — only invoked when the operation crosses the slow
        threshold.  Returns the captured record, or None for fast ops.
        """
        duration_ms = duration_s * 1000.0
        if duration_ms < self.slow_threshold_ms:
            return None
        record: dict = {
            "seq": next(self._seq),
            "kind": kind,
            "name": name,
            "duration_ms": round(duration_ms, 3),
            "unix_ms": time.time_ns() // 1_000_000,
        }
        if detail:
            record.update(detail)
        if plan is not None:
            try:
                record["plan"] = plan()
            except Exception as exc:  # capture must never fail the op
                record["plan_error"] = f"{type(exc).__name__}: {exc}"
        with self._lock:
            self._slow.append(record)
        get_metrics().counter(
            "repro_slow_ops_total",
            help="operations captured by the slow-op log",
        ).inc(1, kind=kind)
        return record

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def slow(self) -> list[dict]:
        """The slow-op log, oldest first."""
        with self._lock:
            return list(self._slow)

    def recent_spans(self, limit: int | None = None) -> list[dict]:
        """The most recent spans of the ring, as dicts, oldest first."""
        spans = self.tracer.serialized()
        if limit is not None:
            spans = spans[-limit:]
        return spans

    def snapshot(self) -> dict:
        """Recorder configuration + occupancy (for ``/healthz``)."""
        with self._lock:
            slow_len = len(self._slow)
        return {
            "span_capacity": self.span_capacity,
            "spans_buffered": len(self.tracer),
            "slow_threshold_ms": self.slow_threshold_ms,
            "slow_capacity": self.slow_capacity,
            "slow_captured": slow_len,
            "started_unix_ms": self.started_ns // 1_000_000,
        }


# --------------------------------------------------------------------- #
# Process-global recorder + fast-path hooks
# --------------------------------------------------------------------- #

_RECORDER: FlightRecorder | None = None


def install_recorder(
    span_capacity: int = 4096,
    slow_threshold_ms: float = 100.0,
    slow_capacity: int = 64,
) -> FlightRecorder:
    """Install the process-global flight recorder (idempotent).

    The recorder's bounded tracer becomes the global tracer *unless*
    one is already configured (an explicit ``--trace`` run keeps its
    unbounded tracer; the recorder then only maintains the slow-op
    log).  Metric families that the ops endpoint promises are
    pre-registered so a scrape before the first query still shows them.
    """
    global _RECORDER
    if _RECORDER is not None:
        return _RECORDER
    _RECORDER = FlightRecorder(
        span_capacity=span_capacity,
        slow_threshold_ms=slow_threshold_ms,
        slow_capacity=slow_capacity,
    )
    if get_tracer() is None:
        set_tracer(_RECORDER.tracer)
    metrics = get_metrics()
    metrics.counter("repro_query_runs_total", help="query engine invocations")
    metrics.histogram(
        "repro_query_latency_seconds",
        boundaries=LATENCY_BOUNDARIES,
        help="end-to-end query evaluation latency",
    )
    metrics.counter(
        "repro_slow_ops_total", help="operations captured by the slow-op log"
    )
    # Lazy import: plan.stats imports repro.obs at module load.
    from ..query.plan.stats import Q_ERROR_BOUNDARIES

    metrics.histogram(
        "repro_plan_q_error",
        boundaries=Q_ERROR_BOUNDARIES,
        help="per-plan worst cardinality q-error",
    )
    return _RECORDER


def uninstall_recorder() -> None:
    """Remove the global recorder (and its tracer, if installed)."""
    global _RECORDER
    if _RECORDER is None:
        return
    if get_tracer() is _RECORDER.tracer:
        set_tracer(None)
    _RECORDER = None


def get_recorder() -> FlightRecorder | None:
    """The global flight recorder, or None when not installed."""
    return _RECORDER


def record_query(
    lang: str,
    text: str,
    duration_s: float,
    rows: int,
    plan: Callable[[], object] | None = None,
) -> None:
    """Feed one finished query to the recorder (no-op when absent)."""
    recorder = _RECORDER
    if recorder is None:
        return
    recorder.observe(
        "query",
        text,
        duration_s,
        detail={"lang": lang, "rows": rows},
        plan=plan,
    )


def record_op(
    kind: str,
    name: str,
    duration_s: float,
    detail: dict | None = None,
    plan: Callable[[], object] | None = None,
) -> None:
    """Feed one finished operation to the recorder (no-op when absent)."""
    recorder = _RECORDER
    if recorder is None:
        return
    recorder.observe(kind, name, duration_s, detail=detail, plan=plan)
