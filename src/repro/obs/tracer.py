"""Hierarchical span tracing with contextvar propagation.

The tracer is the collection half of :mod:`repro.obs`: code under
measurement opens *spans* (named, attributed intervals on the monotonic
clock) through the module-level :func:`span` helper, and the active
:class:`Tracer` — installed per run via :func:`configure` — records every
finished span for export (JSON-lines, Chrome trace events, see
:mod:`repro.obs.export`).

Three properties drive the design:

* **zero cost when disabled** — :func:`span` short-circuits to a shared
  no-op context manager when no tracer is configured, so instrument
  points may stay in hot paths unconditionally;
* **contextvar parenting** — the current span lives in a
  :class:`~contextvars.ContextVar`, so nesting works across call
  boundaries without threading span objects through signatures, and
  concurrent threads/tasks are isolated from each other;
* **cross-process propagation** — a :class:`SpanContext` is picklable
  and travels to worker processes; their spans (serialized as dicts)
  are re-parented under the originating span via :meth:`Tracer.adopt`.
  ``time.perf_counter_ns`` reads ``CLOCK_MONOTONIC``, which is
  system-wide on the platforms the engine forks on, so worker
  timestamps land on the coordinator's timeline directly.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "configure",
    "current_context",
    "current_span",
    "disable",
    "enabled",
    "get_tracer",
    "set_tracer",
    "span",
    "timed_span",
]

_IDS = itertools.count(1)


def _new_id(prefix: str = "s") -> str:
    """A process-unique identifier (pid + process-local counter)."""
    return f"{prefix}{os.getpid():x}-{next(_IDS):x}"


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a span, for cross-process propagation."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One named interval on the monotonic clock.

    Attributes are free-form key -> value pairs; :meth:`incr` treats an
    attribute as a counter (so per-span counters and attributes share
    one namespace, as in the OpenTelemetry span model).
    """

    name: str
    span_id: str
    trace_id: str
    parent_id: str | None
    start_ns: int
    end_ns: int | None = None
    attributes: dict[str, object] = field(default_factory=dict)
    status: str = "ok"
    pid: int = field(default_factory=os.getpid)
    tid: int = 0
    _cpu0: float | None = None

    def set(self, key: str, value: object) -> None:
        """Set one attribute."""
        self.attributes[key] = value

    def incr(self, key: str, amount: int | float = 1) -> None:
        """Increment a numeric attribute (a per-span counter)."""
        self.attributes[key] = self.attributes.get(key, 0) + amount

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (0 while the span is still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return self.duration_ns / 1e9

    def as_dict(self) -> dict:
        """A JSON- and pickle-friendly snapshot."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attributes": dict(self.attributes),
            "status": self.status,
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, data: dict) -> Span:
        """Rebuild a span from :meth:`as_dict` output."""
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            trace_id=data["trace_id"],
            parent_id=data.get("parent_id"),
            start_ns=data["start_ns"],
            end_ns=data.get("end_ns"),
            attributes=dict(data.get("attributes", {})),
            status=data.get("status", "ok"),
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
        )


#: The active span of the current execution context (thread / task).
_CURRENT: ContextVar[Span | None] = ContextVar("repro_obs_current_span", default=None)


class Tracer:
    """Collects finished spans of one run.

    Thread-safe: spans may finish on any thread; parenting follows the
    contextvar of the opening context.

    Args:
        trace_id: explicit trace identity (one is generated otherwise).
        max_spans: when set, retain only the most recent ``max_spans``
            finished spans (a bounded ring, for always-on services
            where an unbounded run would grow without limit).
    """

    def __init__(self, trace_id: str | None = None, max_spans: int | None = None):
        self.trace_id = trace_id or _new_id("t")
        self.max_spans = max_spans
        self._spans: deque[Span] | list[Span] = (
            deque(maxlen=max_spans) if max_spans is not None else []
        )
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Span lifecycle
    # ------------------------------------------------------------------ #

    def start_span(
        self,
        name: str,
        parent: Span | None = None,
        parent_context: SpanContext | None = None,
        cpu: bool = False,
        **attributes: object,
    ) -> Span:
        """Open a span without activating it (no contextvar push).

        Parent resolution order: explicit ``parent`` span, explicit
        ``parent_context`` (a remote span), then the contextvar-current
        span.  ``cpu=True`` additionally samples process CPU time, ending
        up in the ``cpu_s`` attribute.
        """
        if parent is not None:
            parent_id, trace_id = parent.span_id, parent.trace_id
        elif parent_context is not None:
            parent_id, trace_id = parent_context.span_id, parent_context.trace_id
        else:
            current = _CURRENT.get()
            parent_id = current.span_id if current is not None else None
            trace_id = current.trace_id if current is not None else self.trace_id
        span = Span(
            name=name,
            span_id=_new_id(),
            trace_id=trace_id,
            parent_id=parent_id,
            start_ns=time.perf_counter_ns(),
            attributes=dict(attributes),
            tid=threading.get_ident() & 0xFFFFFFFF,
        )
        if cpu:
            span._cpu0 = time.process_time()
        return span

    def end_span(self, span: Span) -> None:
        """Close a span and record it."""
        span.end_ns = time.perf_counter_ns()
        if span._cpu0 is not None:
            span.attributes["cpu_s"] = round(time.process_time() - span._cpu0, 6)
            span._cpu0 = None
        with self._lock:
            self._spans.append(span)

    @contextmanager
    def span(
        self,
        name: str,
        parent: Span | None = None,
        parent_context: SpanContext | None = None,
        cpu: bool = False,
        **attributes: object,
    ):
        """Open, activate, and (on exit) record a span.

        The span becomes the contextvar-current span for the duration of
        the block; an exception marks it ``status="error"`` (recording
        the exception type) and propagates.
        """
        span = self.start_span(
            name, parent=parent, parent_context=parent_context, cpu=cpu,
            **attributes,
        )
        token = _CURRENT.set(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attributes.setdefault("exception", type(exc).__name__)
            raise
        finally:
            _CURRENT.reset(token)
            self.end_span(span)

    # ------------------------------------------------------------------ #
    # Access and propagation
    # ------------------------------------------------------------------ #

    def finished(self) -> list[Span]:
        """Snapshot of all recorded (closed) spans, in finish order."""
        with self._lock:
            return list(self._spans)

    def serialized(self) -> list[dict]:
        """All recorded spans as dicts (picklable, for worker -> parent)."""
        return [span.as_dict() for span in self.finished()]

    def adopt(self, span_dicts: list[dict] | tuple[dict, ...]) -> list[Span]:
        """Attach spans recorded by another process to this trace.

        The spans keep their own ids and parent links (the worker already
        parented its roots on the propagated :class:`SpanContext`); only
        the trace id is rewritten so every adopted span belongs to this
        tracer's trace.
        """
        adopted = []
        for data in span_dicts:
            span = Span.from_dict(data)
            span.trace_id = self.trace_id
            adopted.append(span)
        with self._lock:
            self._spans.extend(adopted)
        return adopted

    def clear(self) -> None:
        """Drop all recorded spans."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:
        return f"<Tracer {self.trace_id} spans={len(self)}>"


# --------------------------------------------------------------------- #
# Module-level API (the zero-cost instrument points)
# --------------------------------------------------------------------- #

class _NoopSpan:
    """The span handed out when tracing is disabled: absorbs everything."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def incr(self, key: str, amount: int | float = 1) -> None:
        pass

    @property
    def attributes(self) -> dict:
        return {}

    @property
    def duration_s(self) -> float:
        return 0.0


class _NoopSpanManager:
    """A reusable no-op context manager (no allocation per call)."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return _NOOP_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()
_NOOP_CM = _NoopSpanManager()

_TRACER: Tracer | None = None


def configure(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the process-global tracer."""
    global _TRACER
    _TRACER = tracer or Tracer()
    return _TRACER


def disable() -> None:
    """Remove the global tracer; :func:`span` reverts to the no-op path."""
    global _TRACER
    _TRACER = None


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Swap the global tracer, returning the previous one (for restore)."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def get_tracer() -> Tracer | None:
    """The global tracer, or None when tracing is disabled."""
    return _TRACER


def enabled() -> bool:
    """Whether a global tracer is installed."""
    return _TRACER is not None


def span(name: str, **attributes: object):
    """Open a span on the global tracer (no-op when tracing is off)."""
    if _TRACER is None:
        return _NOOP_CM
    return _TRACER.span(name, **attributes)


def current_span() -> Span | None:
    """The contextvar-current span, or None."""
    return _CURRENT.get()


def current_context() -> SpanContext | None:
    """The propagation context of the current span (None outside spans)."""
    current = _CURRENT.get()
    if current is None:
        return None
    return SpanContext(trace_id=current.trace_id, span_id=current.span_id)


@contextmanager
def timed_span(name: str, **attributes: object):
    """A span that measures even when tracing is disabled.

    Used where the caller needs the duration itself (e.g. the benchmark
    phase timers): with a tracer installed this is exactly :func:`span`;
    without one it yields an unrecorded :class:`Span` that still runs on
    the same monotonic clock.
    """
    tracer = _TRACER
    if tracer is not None:
        with tracer.span(name, **attributes) as sp:
            yield sp
        return
    sp = Span(
        name=name,
        span_id="unrecorded",
        trace_id="unrecorded",
        parent_id=None,
        start_ns=time.perf_counter_ns(),
        attributes=dict(attributes),
    )
    try:
        yield sp
    finally:
        sp.end_ns = time.perf_counter_ns()
