"""Property-graph substrate: model, indexed store, CSV and YARS-PG I/O."""

from .csv_io import export_csv, import_csv, read_csv, write_csv
from .model import (
    MergeStats,
    PGEdge,
    PGNode,
    PGStats,
    PropertyGraph,
    PropertyValue,
    Scalar,
)
from .store import PropertyGraphStore
from .yarspg import export_yarspg, import_yarspg

__all__ = [
    "MergeStats",
    "PGEdge",
    "PGNode",
    "PGStats",
    "PropertyGraph",
    "PropertyGraphStore",
    "PropertyValue",
    "Scalar",
    "export_csv",
    "export_yarspg",
    "import_csv",
    "import_yarspg",
    "read_csv",
    "write_csv",
]
