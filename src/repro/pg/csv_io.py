"""Neo4j-style bulk CSV export/import for property graphs.

The paper loads transformed graphs into Neo4j; rdf2pg's Neo4JWriter was
"enhanced to produce the graph in CSV format" for efficient bulk loading.
This module reproduces that interchange: one ``nodes.csv`` with
``id:ID``, ``:LABEL``, and property columns, and one ``edges.csv`` with
``:START_ID``, ``:END_ID``, ``:TYPE``, and property columns.  Arrays use
the Neo4j convention of ``;``-separated values.
"""

from __future__ import annotations

import csv
import io
import re
from pathlib import Path

from ..errors import GraphError
from .model import PropertyGraph, PropertyValue

ARRAY_SEPARATOR = ";"
LABEL_SEPARATOR = ";"
EMPTY_ARRAY_MARKER = "\\a"


def _escape_scalar_text(text: str) -> str:
    """Escape the array separator (and the escape char) inside values."""
    return text.replace("\\", "\\\\").replace(ARRAY_SEPARATOR, "\\" + ARRAY_SEPARATOR)


def _unescape_scalar_text(text: str) -> str:
    return text.replace("\\" + ARRAY_SEPARATOR, ARRAY_SEPARATOR).replace("\\\\", "\\")


def _split_unescaped(text: str) -> list[str]:
    """Split at separators that are not preceded by the escape char."""
    parts: list[str] = []
    current: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            current.append(ch)
            current.append(text[i + 1])
            i += 2
            continue
        if ch == ARRAY_SEPARATOR:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    parts.append("".join(current))
    return parts


def _encode_value(value: PropertyValue) -> str:
    if isinstance(value, list):
        if not value:
            # A bare separator would decode as [""], so the empty array
            # gets its own marker.
            return EMPTY_ARRAY_MARKER
        return ARRAY_SEPARATOR.join(_encode_scalar(v) for v in value) + ARRAY_SEPARATOR
    return _encode_scalar(value)


def _encode_scalar(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if value == "":
        # An empty CSV cell means "property absent"; empty strings get an
        # explicit escape marker so they survive the round trip.
        return "\\e"
    if isinstance(value, str) and _parses_as_non_string(value):
        # A *string* that looks like a number/boolean gets a string-type
        # marker so the round trip preserves its type.
        return "\\s" + _escape_scalar_text(value)
    return _escape_scalar_text(str(value))


def _parses_as_non_string(text: str) -> bool:
    if text in ("true", "false", "\\e", EMPTY_ARRAY_MARKER):
        return True
    if text.startswith("\\s"):
        return True
    if _INT_RE.match(text):
        return True
    return bool(_FLOAT_RE.match(text) and any(c in text for c in ".eE"))


def _decode_value(text: str) -> PropertyValue:
    if text == EMPTY_ARRAY_MARKER:
        return []
    parts = _split_unescaped(text)
    if len(parts) > 1 and parts[-1] == "":
        # Trailing (unescaped) separator marks an array value.
        return [_decode_scalar(part) for part in parts[:-1]]
    return _decode_scalar(text)


_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?$")


def _decode_scalar(text: str) -> object:
    if text == "\\e":
        return ""
    if text.startswith("\\s"):
        return _unescape_scalar_text(text[2:])
    if text == "true":
        return True
    if text == "false":
        return False
    if _INT_RE.match(text):
        return int(text)
    if _FLOAT_RE.match(text) and any(c in text for c in ".eE"):
        return float(text)
    return _unescape_scalar_text(text)


def export_csv(graph: PropertyGraph) -> tuple[str, str]:
    """Serialize the graph; returns ``(nodes_csv, edges_csv)`` strings."""
    node_keys = sorted({k for n in graph.nodes.values() for k in n.properties})
    nodes_buffer = io.StringIO()
    writer = csv.writer(nodes_buffer, lineterminator="\n")
    writer.writerow(["id:ID", ":LABEL", *node_keys])
    for node in graph.nodes.values():
        row = [node.id, LABEL_SEPARATOR.join(sorted(node.labels))]
        for key in node_keys:
            value = node.properties.get(key)
            row.append("" if value is None else _encode_value(value))
        writer.writerow(row)

    edge_keys = sorted({k for e in graph.edges.values() for k in e.properties})
    edges_buffer = io.StringIO()
    writer = csv.writer(edges_buffer, lineterminator="\n")
    writer.writerow(["id", ":START_ID", ":END_ID", ":TYPE", *edge_keys])
    for edge in graph.edges.values():
        row = [edge.id, edge.src, edge.dst, LABEL_SEPARATOR.join(sorted(edge.labels))]
        for key in edge_keys:
            value = edge.properties.get(key)
            row.append("" if value is None else _encode_value(value))
        writer.writerow(row)

    return nodes_buffer.getvalue(), edges_buffer.getvalue()


def import_csv(nodes_csv: str, edges_csv: str) -> PropertyGraph:
    """Rebuild a property graph from its CSV serialization.

    Raises:
        GraphError: when required columns are missing.
    """
    graph = PropertyGraph()

    node_reader = csv.reader(io.StringIO(nodes_csv))
    header = next(node_reader, None)
    if header is None or header[:2] != ["id:ID", ":LABEL"]:
        raise GraphError("nodes CSV must start with columns id:ID,:LABEL")
    node_keys = header[2:]
    for row in node_reader:
        if not row:
            continue
        node_id, label_field, *values = row
        labels = [lab for lab in label_field.split(LABEL_SEPARATOR) if lab]
        properties: dict[str, PropertyValue] = {}
        for key, text in zip(node_keys, values):
            if text != "":
                properties[key] = _decode_value(text)
        graph.add_node(node_id, labels=labels, properties=properties)

    edge_reader = csv.reader(io.StringIO(edges_csv))
    header = next(edge_reader, None)
    if header is None or header[:4] != ["id", ":START_ID", ":END_ID", ":TYPE"]:
        raise GraphError("edges CSV must start with columns id,:START_ID,:END_ID,:TYPE")
    edge_keys = header[4:]
    for row in edge_reader:
        if not row:
            continue
        edge_id, src, dst, label_field, *values = row
        labels = [lab for lab in label_field.split(LABEL_SEPARATOR) if lab]
        properties = {}
        for key, text in zip(edge_keys, values):
            if text != "":
                properties[key] = _decode_value(text)
        graph.add_edge(src, dst, labels=labels, properties=properties, edge_id=edge_id)

    return graph


def write_csv(graph: PropertyGraph, directory: str | Path) -> tuple[Path, Path]:
    """Write ``nodes.csv`` and ``edges.csv`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    nodes_csv, edges_csv = export_csv(graph)
    nodes_path = directory / "nodes.csv"
    edges_path = directory / "edges.csv"
    nodes_path.write_text(nodes_csv, encoding="utf-8")
    edges_path.write_text(edges_csv, encoding="utf-8")
    return nodes_path, edges_path


def read_csv(directory: str | Path) -> PropertyGraph:
    """Read a graph written by :func:`write_csv`."""
    directory = Path(directory)
    nodes_csv = (directory / "nodes.csv").read_text(encoding="utf-8")
    edges_csv = (directory / "edges.csv").read_text(encoding="utf-8")
    return import_csv(nodes_csv, edges_csv)
