"""An indexed property-graph store — the 'graph DBMS' substrate.

:class:`PropertyGraphStore` wraps a :class:`PropertyGraph` with the indexes
a database such as Neo4j maintains: a label index, adjacency lists grouped
by relationship type, and optional property (key, value) indexes.  The
Cypher engine evaluates against this store, and the *loading* phase of the
Table 4 experiment is exactly the :func:`PropertyGraphStore.bulk_load`
call (deserialize + index build), mirroring a bulk CSV import.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from ..errors import GraphError
from .model import PGEdge, PGNode, PropertyGraph, PropertyValue, Scalar


class PropertyGraphStore:
    """Label-, type-, and property-indexed access over a property graph.

    Args:
        graph: the graph to index; an empty one is created by default.
        property_indexes: property keys to index on nodes, e.g. ``("iri",)``.
    """

    def __init__(
        self,
        graph: PropertyGraph | None = None,
        property_indexes: Iterable[str] = ("iri",),
    ):
        self.graph = graph or PropertyGraph()
        self._indexed_keys = tuple(property_indexes)
        self._label_index: dict[str, set[str]] = defaultdict(set)
        self._out: dict[str, dict[str, list[str]]] = defaultdict(lambda: defaultdict(list))
        self._in: dict[str, dict[str, list[str]]] = defaultdict(lambda: defaultdict(list))
        self._property_index: dict[tuple[str, Scalar], set[str]] = defaultdict(set)
        if graph is not None:
            self.rebuild_indexes()

    # ------------------------------------------------------------------ #
    # Index maintenance
    # ------------------------------------------------------------------ #

    def rebuild_indexes(self) -> None:
        """Recompute every index from the underlying graph (bulk build)."""
        self._label_index.clear()
        self._out.clear()
        self._in.clear()
        self._property_index.clear()
        for node in self.graph.nodes.values():
            self._index_node(node)
        for edge in self.graph.edges.values():
            self._index_edge(edge)

    def _index_node(self, node: PGNode) -> None:
        for label in node.labels:
            self._label_index[label].add(node.id)
        for key in self._indexed_keys:
            value = node.properties.get(key)
            if isinstance(value, (str, int, float, bool)):
                self._property_index[(key, value)].add(node.id)

    def _index_edge(self, edge: PGEdge) -> None:
        for label in edge.labels:
            self._out[edge.src][label].append(edge.id)
            self._in[edge.dst][label].append(edge.id)

    # ------------------------------------------------------------------ #
    # Mutation (kept index-consistent)
    # ------------------------------------------------------------------ #

    def add_node(
        self,
        node_id: str | None = None,
        labels: Iterable[str] = (),
        properties: dict[str, PropertyValue] | None = None,
    ) -> PGNode:
        """Insert a node and index it."""
        node = self.graph.add_node(node_id, labels, properties)
        self._index_node(node)
        return node

    def add_edge(
        self,
        src: str,
        dst: str,
        labels: Iterable[str] = (),
        properties: dict[str, PropertyValue] | None = None,
        edge_id: str | None = None,
    ) -> PGEdge:
        """Insert an edge and index it."""
        edge = self.graph.add_edge(src, dst, labels, properties, edge_id)
        self._index_edge(edge)
        return edge

    def add_label(self, node_id: str, label: str) -> None:
        """Add a label to an existing node, keeping the label index fresh."""
        node = self.graph.get_node(node_id)
        node.labels.add(label)
        self._label_index[label].add(node_id)

    def set_node_property(self, node_id: str, key: str, value: PropertyValue) -> None:
        """Update a node property, keeping property indexes consistent."""
        node = self.graph.get_node(node_id)
        old = node.properties.get(key)
        if key in self._indexed_keys and isinstance(old, (str, int, float, bool)):
            self._property_index[(key, old)].discard(node_id)
        node.set_property(key, value)
        if key in self._indexed_keys and isinstance(value, (str, int, float, bool)):
            self._property_index[(key, value)].add(node_id)

    def bulk_load(self, graph: PropertyGraph) -> None:
        """Replace the stored graph and rebuild all indexes.

        This models the *loading* phase (L) of Table 4: the transformed
        graph is handed to the DBMS, which ingests it and builds its
        internal indexes before it can serve queries.
        """
        self.graph = graph
        self.rebuild_indexes()

    # ------------------------------------------------------------------ #
    # Indexed reads
    # ------------------------------------------------------------------ #

    def nodes_with_label(self, label: str) -> Iterator[PGNode]:
        """All nodes carrying ``label`` (index lookup)."""
        for node_id in self._label_index.get(label, ()):
            yield self.graph.nodes[node_id]

    def count_label(self, label: str) -> int:
        """Number of nodes carrying ``label``."""
        return len(self._label_index.get(label, ()))

    def nodes_by_property(self, key: str, value: Scalar) -> Iterator[PGNode]:
        """All nodes with ``properties[key] == value``.

        Uses the property index when ``key`` is indexed; otherwise scans.
        """
        if key in self._indexed_keys:
            for node_id in self._property_index.get((key, value), ()):
                yield self.graph.nodes[node_id]
            return
        for node in self.graph.nodes.values():
            if node.properties.get(key) == value:
                yield node

    def node_by_property(self, key: str, value: Scalar) -> PGNode | None:
        """An arbitrary single node with the given property value, or None."""
        for node in self.nodes_by_property(key, value):
            return node
        return None

    def out_edges(self, node_id: str, rel_type: str | None = None) -> Iterator[PGEdge]:
        """Outgoing edges of a node, optionally restricted to one type."""
        by_type = self._out.get(node_id)
        if by_type is None:
            return
        if rel_type is not None:
            for edge_id in by_type.get(rel_type, ()):
                yield self.graph.edges[edge_id]
            return
        seen: set[str] = set()
        for edge_ids in by_type.values():
            for edge_id in edge_ids:
                if edge_id not in seen:
                    seen.add(edge_id)
                    yield self.graph.edges[edge_id]

    def in_edges(self, node_id: str, rel_type: str | None = None) -> Iterator[PGEdge]:
        """Incoming edges of a node, optionally restricted to one type."""
        by_type = self._in.get(node_id)
        if by_type is None:
            return
        if rel_type is not None:
            for edge_id in by_type.get(rel_type, ()):
                yield self.graph.edges[edge_id]
            return
        seen: set[str] = set()
        for edge_ids in by_type.values():
            for edge_id in edge_ids:
                if edge_id not in seen:
                    seen.add(edge_id)
                    yield self.graph.edges[edge_id]

    def edges_with_type(self, rel_type: str) -> Iterator[PGEdge]:
        """All edges of a given relationship type."""
        for edge in self.graph.edges.values():
            if rel_type in edge.labels:
                yield edge

    def degree(self, node_id: str, rel_type: str | None = None) -> int:
        """Outgoing degree of a node."""
        return sum(1 for _ in self.out_edges(node_id, rel_type))

    def warm_up(self) -> int:
        """Touch every node and edge once (models ``apoc.warmup.run``).

        Returns the number of elements visited.
        """
        visited = 0
        for node in self.graph.nodes.values():
            visited += 1 if node.id else 0
        for edge in self.graph.edges.values():
            visited += 1 if edge.id else 0
        return visited

    def __repr__(self) -> str:
        return (
            f"<PropertyGraphStore |N|={self.graph.node_count()} "
            f"|E|={self.graph.edge_count()} labels={len(self._label_index)}>"
        )
