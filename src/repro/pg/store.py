"""An indexed property-graph store — the 'graph DBMS' substrate.

:class:`PropertyGraphStore` wraps a :class:`PropertyGraph` with the indexes
a database such as Neo4j maintains: a label index, adjacency lists grouped
by relationship type, and optional property (key, value) indexes.  The
Cypher engine evaluates against this store, and the *loading* phase of the
Table 4 experiment is exactly the :func:`PropertyGraphStore.bulk_load`
call (deserialize + index build), mirroring a bulk CSV import.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from ..errors import GraphError
from .model import PGEdge, PGNode, PropertyGraph, PropertyValue, Scalar


class PropertyGraphStore:
    """Label-, type-, and property-indexed access over a property graph.

    Args:
        graph: the graph to index; an empty one is created by default.
        property_indexes: property keys to index on nodes, e.g. ``("iri",)``.
    """

    def __init__(
        self,
        graph: PropertyGraph | None = None,
        property_indexes: Iterable[str] = ("iri",),
    ):
        self.graph = graph or PropertyGraph()
        self._indexed_keys = tuple(property_indexes)
        self._label_index: dict[str, set[str]] = defaultdict(set)
        self._out: dict[str, dict[str, list[str]]] = defaultdict(lambda: defaultdict(list))
        self._in: dict[str, dict[str, list[str]]] = defaultdict(lambda: defaultdict(list))
        self._property_index: dict[tuple[str, Scalar], set[str]] = defaultdict(set)
        #: Edges per relationship type (planner statistics).
        self._rel_count: dict[str, int] = {}
        #: Mutation counter (plan/statistics cache invalidation).
        self._version = 0
        if graph is not None:
            self.rebuild_indexes()

    # ------------------------------------------------------------------ #
    # Index maintenance
    # ------------------------------------------------------------------ #

    def rebuild_indexes(self) -> None:
        """Recompute every index from the underlying graph (bulk build)."""
        self._label_index.clear()
        self._out.clear()
        self._in.clear()
        self._property_index.clear()
        self._rel_count.clear()
        self._version += 1
        for node in self.graph.nodes.values():
            self._index_node(node)
        for edge in self.graph.edges.values():
            self._index_edge(edge)

    def _index_node(self, node: PGNode) -> None:
        for label in node.labels:
            self._label_index[label].add(node.id)
        for key in self._indexed_keys:
            value = node.properties.get(key)
            if isinstance(value, (str, int, float, bool)):
                self._property_index[(key, value)].add(node.id)

    def _index_edge(self, edge: PGEdge) -> None:
        for label in edge.labels:
            self._out[edge.src][label].append(edge.id)
            self._in[edge.dst][label].append(edge.id)
            self._rel_count[label] = self._rel_count.get(label, 0) + 1

    def _unindex_node(self, node: PGNode) -> None:
        for label in node.labels:
            bucket = self._label_index.get(label)
            if bucket is not None:
                bucket.discard(node.id)
                if not bucket:
                    del self._label_index[label]
        for key in self._indexed_keys:
            value = node.properties.get(key)
            if isinstance(value, (str, int, float, bool)):
                bucket = self._property_index.get((key, value))
                if bucket is not None:
                    bucket.discard(node.id)
                    if not bucket:
                        del self._property_index[(key, value)]

    def _unindex_edge(self, edge: PGEdge) -> None:
        for label in edge.labels:
            for adjacency, endpoint in ((self._out, edge.src), (self._in, edge.dst)):
                by_type = adjacency.get(endpoint)
                if by_type is None:
                    continue
                edge_ids = by_type.get(label)
                if edge_ids is not None and edge.id in edge_ids:
                    edge_ids.remove(edge.id)
                    if not edge_ids:
                        del by_type[label]
                if not by_type:
                    del adjacency[endpoint]
            remaining = self._rel_count.get(label, 0) - 1
            if remaining > 0:
                self._rel_count[label] = remaining
            else:
                self._rel_count.pop(label, None)

    # ------------------------------------------------------------------ #
    # Mutation (kept index-consistent)
    # ------------------------------------------------------------------ #

    def add_node(
        self,
        node_id: str | None = None,
        labels: Iterable[str] = (),
        properties: dict[str, PropertyValue] | None = None,
    ) -> PGNode:
        """Insert a node and index it."""
        node = self.graph.add_node(node_id, labels, properties)
        self._index_node(node)
        self._version += 1
        return node

    def add_edge(
        self,
        src: str,
        dst: str,
        labels: Iterable[str] = (),
        properties: dict[str, PropertyValue] | None = None,
        edge_id: str | None = None,
    ) -> PGEdge:
        """Insert an edge and index it."""
        edge = self.graph.add_edge(src, dst, labels, properties, edge_id)
        self._index_edge(edge)
        self._version += 1
        return edge

    def add_label(self, node_id: str, label: str) -> None:
        """Add a label to an existing node, keeping the label index fresh."""
        node = self.graph.get_node(node_id)
        node.labels.add(label)
        self._label_index[label].add(node_id)
        self._version += 1

    def remove_label(self, node_id: str, label: str) -> None:
        """Drop a label from an existing node, keeping the label index fresh."""
        node = self.graph.get_node(node_id)
        if label not in node.labels:
            return
        node.labels.discard(label)
        bucket = self._label_index.get(label)
        if bucket is not None:
            bucket.discard(node_id)
            if not bucket:
                del self._label_index[label]
        self._version += 1

    def set_node_property(self, node_id: str, key: str, value: PropertyValue) -> None:
        """Update a node property, keeping property indexes consistent."""
        node = self.graph.get_node(node_id)
        old = node.properties.get(key)
        if key in self._indexed_keys and isinstance(old, (str, int, float, bool)):
            self._property_index[(key, old)].discard(node_id)
        node.set_property(key, value)
        if key in self._indexed_keys and isinstance(value, (str, int, float, bool)):
            self._property_index[(key, value)].add(node_id)
        self._version += 1

    def delete_node_property(self, node_id: str, key: str) -> None:
        """Remove a node property, keeping property indexes consistent."""
        node = self.graph.get_node(node_id)
        if key not in node.properties:
            return
        old = node.properties[key]
        if key in self._indexed_keys and isinstance(old, (str, int, float, bool)):
            bucket = self._property_index.get((key, old))
            if bucket is not None:
                bucket.discard(node_id)
                if not bucket:
                    del self._property_index[(key, old)]
        del node.properties[key]
        self._version += 1

    def remove_edge(self, edge_id: str) -> None:
        """Delete an edge, updating adjacency and statistics incrementally."""
        edge = self.graph.get_edge(edge_id)
        self._unindex_edge(edge)
        self.graph.remove_edge(edge_id)
        self._version += 1

    def remove_node(self, node_id: str) -> None:
        """Delete a node and its incident edges, indexes kept incremental.

        O(degree), like :meth:`PropertyGraph.remove_node`.
        """
        node = self.graph.get_node(node_id)
        for edge in list(self.graph.incident_edges(node_id)):
            self._unindex_edge(edge)
        self._unindex_node(node)
        self.graph.remove_node(node_id)
        self._version += 1

    def merge_from(self, other: PropertyGraph, strict: bool = False):
        """Merge another property graph in and re-sync every index.

        Merging rewrites nodes in place (label/property union, list
        promotion), which can invalidate any index entry, so this is a
        rebuild rather than an incremental update.
        """
        stats = self.graph.merge_from(other, strict=strict)
        self.rebuild_indexes()
        return stats

    def bulk_load(self, graph: PropertyGraph) -> None:
        """Replace the stored graph and rebuild all indexes.

        This models the *loading* phase (L) of Table 4: the transformed
        graph is handed to the DBMS, which ingests it and builds its
        internal indexes before it can serve queries.
        """
        self.graph = graph
        self.rebuild_indexes()

    # ------------------------------------------------------------------ #
    # Indexed reads
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Mutation counter; changes on every index-affecting mutation."""
        return self._version

    def catalog_snapshot(self) -> dict:
        """An order-free view of the derived indexes and statistics.

        Two stores over structurally equal graphs must produce equal
        snapshots regardless of the mutation history that built them —
        the invariant incremental maintenance has to preserve.
        """
        return {
            "rel_count": dict(self._rel_count),
            "labels": {
                label: frozenset(ids)
                for label, ids in self._label_index.items()
                if ids
            },
            "properties": {
                key: frozenset(ids)
                for key, ids in self._property_index.items()
                if ids
            },
            "out": {
                node: {
                    label: sorted(ids)
                    for label, ids in adjacency.items()
                    if ids
                }
                for node, adjacency in self._out.items()
                if any(adjacency.values())
            },
            "in": {
                node: {
                    label: sorted(ids)
                    for label, ids in adjacency.items()
                    if ids
                }
                for node, adjacency in self._in.items()
                if any(adjacency.values())
            },
        }

    def catalog_discrepancies(self) -> list[str]:
        """Sections of the maintained catalogs that a fresh bulk rebuild
        over the same graph would populate differently (empty = consistent)."""
        fresh = PropertyGraphStore(
            self.graph, property_indexes=self._indexed_keys
        )
        mine, theirs = self.catalog_snapshot(), fresh.catalog_snapshot()
        return [
            f"{section} catalog diverges from a fresh rebuild"
            for section in mine
            if mine[section] != theirs[section]
        ]

    @property
    def indexed_keys(self) -> tuple[str, ...]:
        """Property keys covered by the (key, value) index."""
        return self._indexed_keys

    def node_count(self) -> int:
        """Number of nodes in the stored graph."""
        return self.graph.node_count()

    def edge_count(self) -> int:
        """Number of edges in the stored graph."""
        return self.graph.edge_count()

    def rel_type_count(self, rel_type: str) -> int:
        """Number of edges carrying ``rel_type`` (O(1))."""
        return self._rel_count.get(rel_type, 0)

    def property_hits(self, key: str, value: Scalar) -> int | None:
        """Indexed hit count for ``key = value``; None when not indexed."""
        if key not in self._indexed_keys:
            return None
        if not isinstance(value, (str, int, float, bool)):
            return 0
        return len(self._property_index.get((key, value), ()))

    def nodes_with_label(self, label: str) -> Iterator[PGNode]:
        """All nodes carrying ``label`` (index lookup)."""
        for node_id in self._label_index.get(label, ()):
            yield self.graph.nodes[node_id]

    def count_label(self, label: str) -> int:
        """Number of nodes carrying ``label``."""
        return len(self._label_index.get(label, ()))

    def nodes_by_property(self, key: str, value: Scalar) -> Iterator[PGNode]:
        """All nodes with ``properties[key] == value``.

        Uses the property index when ``key`` is indexed; otherwise scans.
        """
        if key in self._indexed_keys:
            for node_id in self._property_index.get((key, value), ()):
                yield self.graph.nodes[node_id]
            return
        for node in self.graph.nodes.values():
            if node.properties.get(key) == value:
                yield node

    def node_by_property(self, key: str, value: Scalar) -> PGNode | None:
        """An arbitrary single node with the given property value, or None."""
        for node in self.nodes_by_property(key, value):
            return node
        return None

    def out_edges(self, node_id: str, rel_type: str | None = None) -> Iterator[PGEdge]:
        """Outgoing edges of a node, optionally restricted to one type."""
        by_type = self._out.get(node_id)
        if by_type is None:
            return
        if rel_type is not None:
            for edge_id in by_type.get(rel_type, ()):
                yield self.graph.edges[edge_id]
            return
        seen: set[str] = set()
        for edge_ids in by_type.values():
            for edge_id in edge_ids:
                if edge_id not in seen:
                    seen.add(edge_id)
                    yield self.graph.edges[edge_id]

    def in_edges(self, node_id: str, rel_type: str | None = None) -> Iterator[PGEdge]:
        """Incoming edges of a node, optionally restricted to one type."""
        by_type = self._in.get(node_id)
        if by_type is None:
            return
        if rel_type is not None:
            for edge_id in by_type.get(rel_type, ()):
                yield self.graph.edges[edge_id]
            return
        seen: set[str] = set()
        for edge_ids in by_type.values():
            for edge_id in edge_ids:
                if edge_id not in seen:
                    seen.add(edge_id)
                    yield self.graph.edges[edge_id]

    def edges_with_type(self, rel_type: str) -> Iterator[PGEdge]:
        """All edges of a given relationship type."""
        for edge in self.graph.edges.values():
            if rel_type in edge.labels:
                yield edge

    def degree(self, node_id: str, rel_type: str | None = None) -> int:
        """Outgoing degree of a node."""
        return sum(1 for _ in self.out_edges(node_id, rel_type))

    def warm_up(self) -> int:
        """Touch every node and edge once (models ``apoc.warmup.run``).

        Returns the number of elements visited.
        """
        visited = 0
        for node in self.graph.nodes.values():
            visited += 1 if node.id else 0
        for edge in self.graph.edges.values():
            visited += 1 if edge.id else 0
        return visited

    def __repr__(self) -> str:
        return (
            f"<PropertyGraphStore |N|={self.graph.node_count()} "
            f"|E|={self.graph.edge_count()} labels={len(self._label_index)}>"
        )
