"""An indexed property-graph store — the 'graph DBMS' substrate.

:class:`PropertyGraphStore` wraps a :class:`PropertyGraph` with the indexes
a database such as Neo4j maintains: a label index, adjacency lists grouped
by relationship type, and optional property (key, value) indexes.  The
Cypher engine evaluates against this store, and the *loading* phase of the
Table 4 experiment is exactly the :func:`PropertyGraphStore.bulk_load`
call (deserialize + index build), mirroring a bulk CSV import.

Physically the indexes are dictionary-encoded (:mod:`repro.storage`):
node/edge identifiers and labels/relationship types are interned to dense
integer ids, and every bucket is an
:class:`~repro.storage.postings.IntPostings` (sorted ``array('q')``)
rather than a ``set``/``list`` of strings.  Strings only appear at the
public API boundary.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator

from ..storage.intern import Interner
from ..storage.postings import IntPostings
from .model import PGEdge, PGNode, PropertyGraph, PropertyValue, Scalar


class PropertyGraphStore:
    """Label-, type-, and property-indexed access over a property graph.

    Args:
        graph: the graph to index; an empty one is created by default.
        property_indexes: property keys to index on nodes, e.g. ``("iri",)``.
    """

    def __init__(
        self,
        graph: PropertyGraph | None = None,
        property_indexes: Iterable[str] = ("iri",),
    ):
        self.graph = graph or PropertyGraph()
        self._indexed_keys = tuple(property_indexes)
        #: Node/edge identifier ⇄ dense int dictionary.
        self._names = Interner()
        #: Label / relationship-type ⇄ dense int dictionary.
        self._labels = Interner()
        # label id -> postings of node ids
        self._label_index: dict[int, IntPostings] = {}
        # node id -> rel-type id -> postings of edge ids
        self._out: dict[int, dict[int, IntPostings]] = {}
        self._in: dict[int, dict[int, IntPostings]] = {}
        # (property key, scalar value) -> postings of node ids
        self._property_index: dict[tuple[str, Scalar], IntPostings] = {}
        #: Edges per relationship type id (planner statistics).
        self._rel_count: dict[int, int] = {}
        #: Mutation counter (plan/statistics cache invalidation).
        self._version = 0
        # Version-tagged caches for the vectorized executor's batch
        # adjacency API (see endpoint_arrays / node_id_array).
        self._endpoints: tuple[int, array, array] | None = None
        self._node_ids: tuple[int, array] | None = None
        if graph is not None:
            self.rebuild_indexes()

    # ------------------------------------------------------------------ #
    # Index maintenance
    # ------------------------------------------------------------------ #

    def rebuild_indexes(self) -> None:
        """Recompute every index from the underlying graph (bulk build)."""
        self._label_index.clear()
        self._out.clear()
        self._in.clear()
        self._property_index.clear()
        self._rel_count.clear()
        self._version += 1
        for node in self.graph.nodes.values():
            self._index_node(node)
        for edge in self.graph.edges.values():
            self._index_edge(edge)

    def _index_node(self, node: PGNode) -> None:
        nid = self._names.intern(node.id)
        intern_label = self._labels.intern
        for label in node.labels:
            li = intern_label(label)
            bucket = self._label_index.get(li)
            if bucket is None:
                bucket = self._label_index[li] = IntPostings()
            bucket.add(nid)
        for key in self._indexed_keys:
            value = node.properties.get(key)
            if isinstance(value, (str, int, float, bool)):
                bucket = self._property_index.get((key, value))
                if bucket is None:
                    bucket = self._property_index[(key, value)] = IntPostings()
                bucket.add(nid)

    def _index_edge(self, edge: PGEdge) -> None:
        names = self._names.intern
        eid = names(edge.id)
        src = names(edge.src)
        dst = names(edge.dst)
        intern_label = self._labels.intern
        for label in edge.labels:
            li = intern_label(label)
            for adjacency, endpoint in ((self._out, src), (self._in, dst)):
                by_type = adjacency.get(endpoint)
                if by_type is None:
                    by_type = adjacency[endpoint] = {}
                bucket = by_type.get(li)
                if bucket is None:
                    bucket = by_type[li] = IntPostings()
                bucket.add(eid)
            self._rel_count[li] = self._rel_count.get(li, 0) + 1

    def _unindex_node(self, node: PGNode) -> None:
        nid = self._names.lookup(node.id)
        if nid is None:
            return
        lookup_label = self._labels.lookup
        for label in node.labels:
            li = lookup_label(label)
            bucket = self._label_index.get(li) if li is not None else None
            if bucket is not None:
                bucket.discard(nid)
                if not bucket:
                    del self._label_index[li]
        for key in self._indexed_keys:
            value = node.properties.get(key)
            if isinstance(value, (str, int, float, bool)):
                bucket = self._property_index.get((key, value))
                if bucket is not None:
                    bucket.discard(nid)
                    if not bucket:
                        del self._property_index[(key, value)]

    def _unindex_edge(self, edge: PGEdge) -> None:
        names = self._names.lookup
        eid = names(edge.id)
        src = names(edge.src)
        dst = names(edge.dst)
        lookup_label = self._labels.lookup
        for label in edge.labels:
            li = lookup_label(label)
            if li is None:
                continue
            for adjacency, endpoint in ((self._out, src), (self._in, dst)):
                by_type = adjacency.get(endpoint)
                if by_type is None:
                    continue
                bucket = by_type.get(li)
                if bucket is not None and eid is not None and eid in bucket:
                    bucket.discard(eid)
                    if not bucket:
                        del by_type[li]
                if not by_type:
                    del adjacency[endpoint]
            remaining = self._rel_count.get(li, 0) - 1
            if remaining > 0:
                self._rel_count[li] = remaining
            else:
                self._rel_count.pop(li, None)

    # ------------------------------------------------------------------ #
    # Mutation (kept index-consistent)
    # ------------------------------------------------------------------ #

    def add_node(
        self,
        node_id: str | None = None,
        labels: Iterable[str] = (),
        properties: dict[str, PropertyValue] | None = None,
    ) -> PGNode:
        """Insert a node and index it."""
        node = self.graph.add_node(node_id, labels, properties)
        self._index_node(node)
        self._version += 1
        return node

    def add_edge(
        self,
        src: str,
        dst: str,
        labels: Iterable[str] = (),
        properties: dict[str, PropertyValue] | None = None,
        edge_id: str | None = None,
    ) -> PGEdge:
        """Insert an edge and index it."""
        edge = self.graph.add_edge(src, dst, labels, properties, edge_id)
        self._index_edge(edge)
        self._version += 1
        return edge

    def add_label(self, node_id: str, label: str) -> None:
        """Add a label to an existing node, keeping the label index fresh."""
        node = self.graph.get_node(node_id)
        node.labels.add(label)
        li = self._labels.intern(label)
        bucket = self._label_index.get(li)
        if bucket is None:
            bucket = self._label_index[li] = IntPostings()
        bucket.add(self._names.intern(node_id))
        self._version += 1

    def remove_label(self, node_id: str, label: str) -> None:
        """Drop a label from an existing node, keeping the label index fresh."""
        node = self.graph.get_node(node_id)
        if label not in node.labels:
            return
        node.labels.discard(label)
        li = self._labels.lookup(label)
        nid = self._names.lookup(node_id)
        bucket = self._label_index.get(li) if li is not None else None
        if bucket is not None and nid is not None:
            bucket.discard(nid)
            if not bucket:
                del self._label_index[li]
        self._version += 1

    def set_node_property(self, node_id: str, key: str, value: PropertyValue) -> None:
        """Update a node property, keeping property indexes consistent."""
        node = self.graph.get_node(node_id)
        old = node.properties.get(key)
        indexed = key in self._indexed_keys
        nid = self._names.intern(node_id) if indexed else None
        if indexed and isinstance(old, (str, int, float, bool)):
            bucket = self._property_index.get((key, old))
            if bucket is not None:
                bucket.discard(nid)
        node.set_property(key, value)
        if indexed and isinstance(value, (str, int, float, bool)):
            bucket = self._property_index.get((key, value))
            if bucket is None:
                bucket = self._property_index[(key, value)] = IntPostings()
            bucket.add(nid)
        self._version += 1

    def delete_node_property(self, node_id: str, key: str) -> None:
        """Remove a node property, keeping property indexes consistent."""
        node = self.graph.get_node(node_id)
        if key not in node.properties:
            return
        old = node.properties[key]
        if key in self._indexed_keys and isinstance(old, (str, int, float, bool)):
            bucket = self._property_index.get((key, old))
            nid = self._names.lookup(node_id)
            if bucket is not None and nid is not None:
                bucket.discard(nid)
                if not bucket:
                    del self._property_index[(key, old)]
        del node.properties[key]
        self._version += 1

    def remove_edge(self, edge_id: str) -> None:
        """Delete an edge, updating adjacency and statistics incrementally."""
        edge = self.graph.get_edge(edge_id)
        self._unindex_edge(edge)
        self.graph.remove_edge(edge_id)
        self._version += 1

    def remove_node(self, node_id: str) -> None:
        """Delete a node and its incident edges, indexes kept incremental.

        O(degree), like :meth:`PropertyGraph.remove_node`.
        """
        node = self.graph.get_node(node_id)
        for edge in list(self.graph.incident_edges(node_id)):
            self._unindex_edge(edge)
        self._unindex_node(node)
        self.graph.remove_node(node_id)
        self._version += 1

    def merge_from(self, other: PropertyGraph, strict: bool = False):
        """Merge another property graph in and re-sync every index.

        Merging rewrites nodes in place (label/property union, list
        promotion), which can invalidate any index entry, so this is a
        rebuild rather than an incremental update.
        """
        stats = self.graph.merge_from(other, strict=strict)
        self.rebuild_indexes()
        return stats

    def bulk_load(self, graph: PropertyGraph) -> None:
        """Replace the stored graph and rebuild all indexes.

        This models the *loading* phase (L) of Table 4: the transformed
        graph is handed to the DBMS, which ingests it and builds its
        internal indexes before it can serve queries.
        """
        self.graph = graph
        self.rebuild_indexes()

    # ------------------------------------------------------------------ #
    # Indexed reads
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Mutation counter; changes on every index-affecting mutation."""
        return self._version

    def catalog_snapshot(self) -> dict:
        """An order-free view of the derived indexes and statistics.

        Two stores over structurally equal graphs must produce equal
        snapshots regardless of the mutation history that built them —
        the invariant incremental maintenance has to preserve.  Keys and
        identifiers are decoded back to strings, so snapshots compare
        across stores with different interning histories.
        """
        label = self._labels.value
        name = self._names.value
        return {
            "rel_count": {label(li): n for li, n in self._rel_count.items()},
            "labels": {
                label(li): frozenset(name(i) for i in ids)
                for li, ids in self._label_index.items()
                if ids
            },
            "properties": {
                key: frozenset(name(i) for i in ids)
                for key, ids in self._property_index.items()
                if ids
            },
            "out": {
                name(node): {
                    label(li): sorted(name(i) for i in ids)
                    for li, ids in adjacency.items()
                    if ids
                }
                for node, adjacency in self._out.items()
                if any(adjacency.values())
            },
            "in": {
                name(node): {
                    label(li): sorted(name(i) for i in ids)
                    for li, ids in adjacency.items()
                    if ids
                }
                for node, adjacency in self._in.items()
                if any(adjacency.values())
            },
        }

    def catalog_discrepancies(self) -> list[str]:
        """Sections of the maintained catalogs that a fresh bulk rebuild
        over the same graph would populate differently (empty = consistent)."""
        fresh = PropertyGraphStore(
            self.graph, property_indexes=self._indexed_keys
        )
        mine, theirs = self.catalog_snapshot(), fresh.catalog_snapshot()
        return [
            f"{section} catalog diverges from a fresh rebuild"
            for section in mine
            if mine[section] != theirs[section]
        ]

    @property
    def indexed_keys(self) -> tuple[str, ...]:
        """Property keys covered by the (key, value) index."""
        return self._indexed_keys

    def node_count(self) -> int:
        """Number of nodes in the stored graph."""
        return self.graph.node_count()

    def edge_count(self) -> int:
        """Number of edges in the stored graph."""
        return self.graph.edge_count()

    def rel_type_count(self, rel_type: str) -> int:
        """Number of edges carrying ``rel_type`` (O(1))."""
        li = self._labels.lookup(rel_type)
        return self._rel_count.get(li, 0) if li is not None else 0

    def property_hits(self, key: str, value: Scalar) -> int | None:
        """Indexed hit count for ``key = value``; None when not indexed."""
        if key not in self._indexed_keys:
            return None
        if not isinstance(value, (str, int, float, bool)):
            return 0
        return len(self._property_index.get((key, value), ()))

    def nodes_with_label(self, label: str) -> Iterator[PGNode]:
        """All nodes carrying ``label`` (index lookup)."""
        li = self._labels.lookup(label)
        if li is None:
            return
        name = self._names.value
        nodes = self.graph.nodes
        for nid in self._label_index.get(li, ()):
            yield nodes[name(nid)]

    def count_label(self, label: str) -> int:
        """Number of nodes carrying ``label``."""
        li = self._labels.lookup(label)
        return len(self._label_index.get(li, ())) if li is not None else 0

    def nodes_by_property(self, key: str, value: Scalar) -> Iterator[PGNode]:
        """All nodes with ``properties[key] == value``.

        Uses the property index when ``key`` is indexed; otherwise scans.
        """
        if key in self._indexed_keys:
            name = self._names.value
            nodes = self.graph.nodes
            for nid in self._property_index.get((key, value), ()):
                yield nodes[name(nid)]
            return
        for node in self.graph.nodes.values():
            if node.properties.get(key) == value:
                yield node

    def node_by_property(self, key: str, value: Scalar) -> PGNode | None:
        """An arbitrary single node with the given property value, or None."""
        for node in self.nodes_by_property(key, value):
            return node
        return None

    def out_edges(self, node_id: str, rel_type: str | None = None) -> Iterator[PGEdge]:
        """Outgoing edges of a node, optionally restricted to one type."""
        yield from self._adjacent_edges(self._out, node_id, rel_type)

    def in_edges(self, node_id: str, rel_type: str | None = None) -> Iterator[PGEdge]:
        """Incoming edges of a node, optionally restricted to one type."""
        yield from self._adjacent_edges(self._in, node_id, rel_type)

    def _adjacent_edges(
        self, adjacency: dict, node_id: str, rel_type: str | None
    ) -> Iterator[PGEdge]:
        nid = self._names.lookup(node_id)
        by_type = adjacency.get(nid) if nid is not None else None
        if by_type is None:
            return
        name = self._names.value
        edges = self.graph.edges
        if rel_type is not None:
            li = self._labels.lookup(rel_type)
            if li is None:
                return
            for eid in by_type.get(li, ()):
                yield edges[name(eid)]
            return
        seen: set[int] = set()
        for edge_ids in by_type.values():
            for eid in edge_ids:
                if eid not in seen:
                    seen.add(eid)
                    yield edges[name(eid)]

    # ------------------------------------------------------------------ #
    # Batch (vectorized) read API
    # ------------------------------------------------------------------ #

    def endpoint_arrays(self) -> tuple[array, array]:
        """``(src, dst)`` node ids indexed by edge name-id.

        The vectorized :class:`~repro.query.plan.vectorized.BatchExpand`
        resolves an edge's far endpoint with one array index instead of
        decoding the edge object.  Built lazily, cached per store
        version (any index-affecting mutation invalidates it).
        """
        cached = self._endpoints
        if cached is not None and cached[0] == self._version:
            return cached[1], cached[2]
        n = len(self._names)
        src = array("q", bytes(8 * n))
        dst = array("q", bytes(8 * n))
        lookup = self._names.lookup
        for edge in self.graph.edges.values():
            eid = lookup(edge.id)
            s = lookup(edge.src)
            d = lookup(edge.dst)
            if eid is not None and s is not None and d is not None:
                src[eid] = s
                dst[eid] = d
        self._endpoints = (self._version, src, dst)
        return src, dst

    def node_id_array(self) -> array:
        """Every node's name-id as one ``array('q')`` (full-scan seeds).

        Cached per store version, like :meth:`endpoint_arrays`.
        """
        cached = self._node_ids
        if cached is not None and cached[0] == self._version:
            return cached[1]
        lookup = self._names.lookup
        ids = array("q")
        for node_id in self.graph.nodes:
            nid = lookup(node_id)
            if nid is not None:
                ids.append(nid)
        self._node_ids = (self._version, ids)
        return ids

    def edges_with_type(self, rel_type: str) -> Iterator[PGEdge]:
        """All edges of a given relationship type."""
        for edge in self.graph.edges.values():
            if rel_type in edge.labels:
                yield edge

    def degree(self, node_id: str, rel_type: str | None = None) -> int:
        """Outgoing degree of a node."""
        return sum(1 for _ in self.out_edges(node_id, rel_type))

    def warm_up(self) -> int:
        """Touch every node and edge once (models ``apoc.warmup.run``).

        Returns the number of elements visited.
        """
        visited = 0
        for node in self.graph.nodes.values():
            visited += 1 if node.id else 0
        for edge in self.graph.edges.values():
            visited += 1 if edge.id else 0
        return visited

    def __repr__(self) -> str:
        return (
            f"<PropertyGraphStore |N|={self.graph.node_count()} "
            f"|E|={self.graph.edge_count()} labels={len(self._label_index)}>"
        )
