"""YARS-PG serialization (subset) for property graphs.

The rdf2pg baseline "outputs PG graphs in YARS-PG serialization format"
[Tomaszuk et al., BDAS 2019].  This module implements the node/edge
statement subset used for data interchange::

    ("n1" {"Person", "Student"} ["name": "Alice", "age": 30])
    ("n1")-["knows" ["since": 2020]]->("n2")

Values are JSON-style scalars; arrays use JSON list syntax.
"""

from __future__ import annotations

import json
import re

from ..errors import ParseError
from .model import PropertyGraph, PropertyValue


def _encode_props(properties: dict[str, PropertyValue]) -> str:
    if not properties:
        return ""
    parts = [f"{json.dumps(key)}: {json.dumps(value)}" for key, value in properties.items()]
    return " [" + ", ".join(parts) + "]"


def export_yarspg(graph: PropertyGraph) -> str:
    """Serialize ``graph`` in YARS-PG node/edge statements.

    Node and edge identifiers are JSON-encoded: literal nodes embed
    arbitrary lexical forms in their ids, and ``json.dumps`` (with its
    default ``ensure_ascii``) escapes every quote, control character,
    and Unicode line separator — keeping the format one statement per
    line no matter what the data contains.
    """
    lines: list[str] = ["# YARS-PG 1.0"]
    for node in graph.nodes.values():
        labels = "{" + ", ".join(json.dumps(lab) for lab in sorted(node.labels)) + "}"
        lines.append(f"({json.dumps(node.id)} {labels}{_encode_props(node.properties)})")
    for edge in graph.edges.values():
        label = json.dumps(sorted(edge.labels)[0] if edge.labels else "")
        lines.append(
            f"({json.dumps(edge.src)})-[{label}{_encode_props(edge.properties)}]"
            f"->({json.dumps(edge.dst)})"
        )
    return "\n".join(lines) + "\n"


#: A JSON string token, escaped quotes included (quotes kept so the
#: match can be handed to ``json.loads`` verbatim).
_JSTR = r'"(?:[^"\\]|\\.)*"'
_NODE_RE = re.compile(
    rf"^\((?P<id>{_JSTR})\s*\{{(?P<labels>[^}}]*)\}}(?:\s*\[(?P<props>.*)\])?\)$"
)
_EDGE_RE = re.compile(
    rf"^\((?P<src>{_JSTR})\)-\[(?P<label>{_JSTR})(?:\s*\[(?P<props>.*)\])?\]"
    rf"->\((?P<dst>{_JSTR})\)$"
)


def _parse_props(text: str | None) -> dict[str, PropertyValue]:
    if not text:
        return {}
    # The bracketed property list is JSON-object-like with ':'-separated
    # pairs; wrap it in braces and parse with the JSON decoder.
    try:
        return json.loads("{" + text + "}")
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid YARS-PG property list: {text!r}") from exc


def import_yarspg(text: str) -> PropertyGraph:
    """Parse a YARS-PG document produced by :func:`export_yarspg`."""
    graph = PropertyGraph()
    pending_edges: list[tuple[str, str, str, dict[str, PropertyValue]]] = []
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        node_match = _NODE_RE.match(line)
        if node_match:
            labels = [
                json.loads(part.strip())
                for part in node_match.group("labels").split(",")
                if part.strip()
            ]
            graph.add_node(
                json.loads(node_match.group("id")),
                labels=labels,
                properties=_parse_props(node_match.group("props")),
            )
            continue
        edge_match = _EDGE_RE.match(line)
        if edge_match:
            pending_edges.append(
                (
                    json.loads(edge_match.group("src")),
                    json.loads(edge_match.group("dst")),
                    json.loads(edge_match.group("label")),
                    _parse_props(edge_match.group("props")),
                )
            )
            continue
        raise ParseError(f"unrecognized YARS-PG statement: {line!r}", line=lineno)
    for src, dst, label, properties in pending_edges:
        graph.add_edge(src, dst, labels=[label] if label else [], properties=properties)
    return graph
