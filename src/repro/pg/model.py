"""Property graph model (Definition 2.4).

A property graph ``PG = (N, E, rho, lambda, pi)``: nodes ``N``, edges ``E``
(disjoint from ``N``), a total function ``rho`` mapping edges to ordered
node pairs, a labelling ``lambda`` assigning finite label sets to nodes and
edges, and a record function ``pi`` assigning key/value records.

Property values are the usual PG scalar types (str, int, float, bool) or
homogeneous arrays thereof (lists); arrays are what the parsimonious
transformation produces for ``[·..N]`` cardinalities (Table 1).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Union

from ..errors import GraphError

#: Scalar property value types supported by the PG data model.
Scalar = Union[str, int, float, bool]
#: A property value: a scalar or a homogeneous array of scalars.
PropertyValue = Union[Scalar, list]


def _check_property_value(key: str, value: object) -> None:
    if isinstance(value, bool) or isinstance(value, (str, int, float)):
        return
    if isinstance(value, list):
        for item in value:
            if not isinstance(item, (str, int, float, bool)):
                raise GraphError(
                    f"array property {key!r} contains non-scalar {item!r}"
                )
        return
    raise GraphError(f"unsupported property value for {key!r}: {value!r}")


@dataclass
class PGNode:
    """A node with multiple labels and a key/value record.

    Attributes:
        id: unique node identifier within its graph.
        labels: the label set ``lambda(n)`` (may be empty).
        properties: the record ``pi(n)``.
    """

    id: str
    labels: set[str] = field(default_factory=set)
    properties: dict[str, PropertyValue] = field(default_factory=dict)

    def set_property(self, key: str, value: PropertyValue) -> None:
        """Assign a property, validating the value type."""
        _check_property_value(key, value)
        self.properties[key] = value

    def append_property(self, key: str, value: Scalar) -> None:
        """Append ``value`` to an array property, promoting a scalar.

        Used when a max-cardinality > 1 literal property receives its second
        value: ``x`` becomes ``[x, value]``.
        """
        _check_property_value(key, value)
        existing = self.properties.get(key)
        if existing is None:
            self.properties[key] = value
        elif isinstance(existing, list):
            existing.append(value)
        else:
            self.properties[key] = [existing, value]

    def has_label(self, label: str) -> bool:
        """True when ``label`` is in this node's label set."""
        return label in self.labels

    def __repr__(self) -> str:
        return f"PGNode({self.id!r}, labels={sorted(self.labels)}, props={len(self.properties)})"


@dataclass
class PGEdge:
    """A directed edge with labels and a record.

    Attributes:
        id: unique edge identifier within its graph.
        src: source node id (``rho(e)[0]``).
        dst: target node id (``rho(e)[1]``).
        labels: the label set ``lambda(e)``; usually a single relationship type.
        properties: the record ``pi(e)``.
    """

    id: str
    src: str
    dst: str
    labels: set[str] = field(default_factory=set)
    properties: dict[str, PropertyValue] = field(default_factory=dict)

    def set_property(self, key: str, value: PropertyValue) -> None:
        """Assign a property, validating the value type."""
        _check_property_value(key, value)
        self.properties[key] = value

    def label(self) -> str:
        """The relationship type (first label); raises if unlabelled."""
        for lab in self.labels:
            return lab
        raise GraphError(f"edge {self.id} has no label")

    def __repr__(self) -> str:
        return (
            f"PGEdge({self.id!r}, {self.src!r}->{self.dst!r}, "
            f"labels={sorted(self.labels)})"
        )


@dataclass(frozen=True)
class PGStats:
    """Transformed-graph statistics in the layout of Table 5."""

    n_nodes: int
    n_edges: int
    n_rel_types: int
    n_labels: int
    n_node_properties: int
    n_edge_properties: int

    def as_row(self) -> dict[str, int]:
        """The Table 5 columns (plus extra detail columns)."""
        return {
            "# of Nodes": self.n_nodes,
            "# of Edges": self.n_edges,
            "# of Rel Types": self.n_rel_types,
            "# of Node Labels": self.n_labels,
            "# of Node Properties": self.n_node_properties,
            "# of Edge Properties": self.n_edge_properties,
        }


@dataclass
class MergeStats:
    """What one :meth:`PropertyGraph.merge_from` call did."""

    nodes_added: int = 0
    nodes_merged: int = 0
    edges_added: int = 0
    edges_merged: int = 0
    conflicts: int = 0


def _values_agree(a: PropertyValue, b: PropertyValue) -> bool:
    """Property-value equality; arrays compare as multisets."""
    if isinstance(a, list) and isinstance(b, list):
        return sorted(map(repr, a)) == sorted(map(repr, b))
    return type(a) is type(b) and a == b


def _merge_records(
    mine: dict[str, PropertyValue],
    theirs: dict[str, PropertyValue],
    strict: bool,
    context: str,
) -> int:
    """Union ``theirs`` into ``mine``; returns the conflict count."""
    conflicts = 0
    for key, value in theirs.items():
        existing = mine.get(key)
        if existing is None:
            mine[key] = list(value) if isinstance(value, list) else value
        elif not _values_agree(existing, value):
            if strict:
                raise GraphError(
                    f"merge conflict: {context} property {key!r} is "
                    f"{existing!r} here but {value!r} in the merged graph"
                )
            conflicts += 1
    return conflicts


class PropertyGraph:
    """A mutable property graph: Definition 2.4 plus indexing-free storage.

    Invariants maintained:

    * node and edge identifier spaces are disjoint;
    * every edge endpoint refers to an existing node (``rho`` is total).

    For label- and property-indexed access (as a graph DBMS would provide)
    wrap the graph in :class:`repro.pg.store.PropertyGraphStore`.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, PGNode] = {}
        self._edges: dict[str, PGEdge] = {}
        # Incidence index: node id -> ids of edges touching it (in or out).
        self._incidence: dict[str, set[str]] = {}
        self._edge_counter = 0
        self._node_counter = 0

    # ------------------------------------------------------------------ #
    # Nodes
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> dict[str, PGNode]:
        """The node map (id -> node). Treat as read-only."""
        return self._nodes

    @property
    def edges(self) -> dict[str, PGEdge]:
        """The edge map (id -> edge). Treat as read-only."""
        return self._edges

    def fresh_node_id(self, prefix: str = "n") -> str:
        """Mint an unused node identifier."""
        while True:
            self._node_counter += 1
            candidate = f"{prefix}{self._node_counter}"
            if candidate not in self._nodes and candidate not in self._edges:
                return candidate

    def fresh_edge_id(self, prefix: str = "e") -> str:
        """Mint an unused edge identifier."""
        while True:
            self._edge_counter += 1
            candidate = f"{prefix}{self._edge_counter}"
            if candidate not in self._edges and candidate not in self._nodes:
                return candidate

    def add_node(
        self,
        node_id: str | None = None,
        labels: Iterable[str] = (),
        properties: dict[str, PropertyValue] | None = None,
    ) -> PGNode:
        """Create and insert a node; returns the new node.

        Raises:
            GraphError: when ``node_id`` is already used.
        """
        if node_id is None:
            node_id = self.fresh_node_id()
        if node_id in self._nodes or node_id in self._edges:
            raise GraphError(f"identifier {node_id!r} already in use")
        node = PGNode(id=node_id, labels=set(labels))
        if properties:
            for key, value in properties.items():
                node.set_property(key, value)
        self._nodes[node_id] = node
        return node

    def get_node(self, node_id: str) -> PGNode:
        """The node with ``node_id``; raises GraphError when absent."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"no node with id {node_id!r}") from None

    def has_node(self, node_id: str) -> bool:
        """True when a node with this id exists."""
        return node_id in self._nodes

    def remove_node(self, node_id: str) -> None:
        """Delete a node and all its incident edges (O(degree))."""
        if node_id not in self._nodes:
            raise GraphError(f"no node with id {node_id!r}")
        for edge_id in list(self._incidence.get(node_id, ())):
            self.remove_edge(edge_id)
        self._incidence.pop(node_id, None)
        del self._nodes[node_id]

    def remove_isolated_node(self, node_id: str) -> None:
        """Delete a node that has no incident edges.

        O(1); used by incremental maintenance, which tracks degrees
        itself.  Raises GraphError when edges still touch the node, so
        the ``rho`` totality invariant cannot be silently broken.
        """
        if node_id not in self._nodes:
            raise GraphError(f"no node with id {node_id!r}")
        if self._incidence.get(node_id):
            raise GraphError(f"node {node_id!r} still has incident edges")
        self._incidence.pop(node_id, None)
        del self._nodes[node_id]

    # ------------------------------------------------------------------ #
    # Edges
    # ------------------------------------------------------------------ #

    def add_edge(
        self,
        src: str,
        dst: str,
        labels: Iterable[str] = (),
        properties: dict[str, PropertyValue] | None = None,
        edge_id: str | None = None,
    ) -> PGEdge:
        """Create and insert an edge ``src -> dst``.

        Raises:
            GraphError: when an endpoint does not exist or the id is taken.
        """
        if src not in self._nodes:
            raise GraphError(f"edge source {src!r} does not exist")
        if dst not in self._nodes:
            raise GraphError(f"edge target {dst!r} does not exist")
        if edge_id is None:
            edge_id = self.fresh_edge_id()
        if edge_id in self._edges or edge_id in self._nodes:
            raise GraphError(f"identifier {edge_id!r} already in use")
        edge = PGEdge(id=edge_id, src=src, dst=dst, labels=set(labels))
        if properties:
            for key, value in properties.items():
                edge.set_property(key, value)
        self._edges[edge_id] = edge
        self._incidence.setdefault(src, set()).add(edge_id)
        self._incidence.setdefault(dst, set()).add(edge_id)
        return edge

    def get_edge(self, edge_id: str) -> PGEdge:
        """The edge with ``edge_id``; raises GraphError when absent."""
        try:
            return self._edges[edge_id]
        except KeyError:
            raise GraphError(f"no edge with id {edge_id!r}") from None

    def remove_edge(self, edge_id: str) -> None:
        """Delete an edge, keeping the incidence index consistent."""
        edge = self._edges.pop(edge_id, None)
        if edge is None:
            raise GraphError(f"no edge with id {edge_id!r}")
        for endpoint in (edge.src, edge.dst):
            incident = self._incidence.get(endpoint)
            if incident is not None:
                incident.discard(edge_id)
                if not incident:
                    del self._incidence[endpoint]

    def incident_edges(self, node_id: str) -> Iterator[PGEdge]:
        """All edges touching ``node_id`` in either direction (O(degree))."""
        return (self._edges[eid] for eid in self._incidence.get(node_id, ()))

    def degree(self, node_id: str) -> int:
        """Number of edges touching ``node_id`` (O(1))."""
        return len(self._incidence.get(node_id, ()))

    def out_edges(self, node_id: str) -> Iterator[PGEdge]:
        """All edges whose source is ``node_id`` (O(degree))."""
        return (e for e in self.incident_edges(node_id) if e.src == node_id)

    def in_edges(self, node_id: str) -> Iterator[PGEdge]:
        """All edges whose target is ``node_id`` (O(degree))."""
        return (e for e in self.incident_edges(node_id) if e.dst == node_id)

    # ------------------------------------------------------------------ #
    # Whole-graph views
    # ------------------------------------------------------------------ #

    def node_count(self) -> int:
        """|N|."""
        return len(self._nodes)

    def edge_count(self) -> int:
        """|E|."""
        return len(self._edges)

    def labels(self) -> set[str]:
        """All node labels in use."""
        result: set[str] = set()
        for node in self._nodes.values():
            result.update(node.labels)
        return result

    def relationship_types(self) -> set[str]:
        """All edge labels in use (Neo4j's 'relationship types')."""
        result: set[str] = set()
        for edge in self._edges.values():
            result.update(edge.labels)
        return result

    def nodes_with_label(self, label: str) -> Iterator[PGNode]:
        """All nodes carrying ``label`` (linear scan)."""
        return (n for n in self._nodes.values() if label in n.labels)

    def stats(self) -> PGStats:
        """Compute the Table 5 statistics."""
        return PGStats(
            n_nodes=len(self._nodes),
            n_edges=len(self._edges),
            n_rel_types=len(self.relationship_types()),
            n_labels=len(self.labels()),
            n_node_properties=sum(len(n.properties) for n in self._nodes.values()),
            n_edge_properties=sum(len(e.properties) for e in self._edges.values()),
        )

    def canonical_form(self) -> tuple:
        """A hashable canonical form for structural equality.

        Two graphs with the same nodes (id, labels, properties) and edges
        (src, dst, labels) have the same canonical form; array property
        values compare as multisets (insertion order is irrelevant).
        """
        def canon_props(properties: dict[str, PropertyValue]) -> tuple:
            items = []
            for key in sorted(properties):
                value = properties[key]
                if isinstance(value, list):
                    items.append((key, ("array", *sorted(map(repr, value)))))
                else:
                    items.append((key, ("scalar", repr(value))))
            return tuple(items)

        nodes = tuple(
            sorted(
                (n.id, tuple(sorted(n.labels)), canon_props(n.properties))
                for n in self._nodes.values()
            )
        )
        edges = tuple(
            sorted(
                (e.src, e.dst, tuple(sorted(e.labels)), canon_props(e.properties))
                for e in self._edges.values()
            )
        )
        return (nodes, edges)

    def structurally_equal(self, other: "PropertyGraph") -> bool:
        """True when both graphs have the same canonical form."""
        return self.canonical_form() == other.canonical_form()

    def merge_from(self, other: "PropertyGraph", strict: bool = False) -> "MergeStats":
        """Union ``other`` into this graph, reconciling elements by id.

        Node ids in the S3PG output are deterministic functions of the RDF
        terms (entity nodes are keyed on the entity IRI), so the same
        logical node produced by two independent transformations carries
        the same id; merging unions its label sets and records.  By the
        monotonicity of ``F_dt`` (Proposition 4.3) the merge of two shard
        outputs is a *pure* union: shared elements never disagree, they
        only differ in which shard contributed which labels/properties.

        Args:
            other: the graph to union in (not modified).
            strict: when True, raise :class:`GraphError` on any conflict —
                a shared property key with different values, or a shared
                edge id with different endpoints.  Used by the parallel
                engine's debug mode to assert the pure-union invariant.

        Returns:
            Counters describing what the merge did.
        """
        stats = MergeStats()
        for node in other._nodes.values():
            mine = self._nodes.get(node.id)
            if mine is None:
                self.add_node(
                    node.id,
                    labels=set(node.labels),
                    properties={
                        k: list(v) if isinstance(v, list) else v
                        for k, v in node.properties.items()
                    },
                )
                stats.nodes_added += 1
                continue
            mine.labels.update(node.labels)
            stats.conflicts += _merge_records(
                mine.properties, node.properties, strict, f"node {node.id!r}"
            )
            stats.nodes_merged += 1
        for edge in other._edges.values():
            mine_edge = self._edges.get(edge.id)
            if mine_edge is None:
                self.add_edge(
                    edge.src,
                    edge.dst,
                    labels=set(edge.labels),
                    properties={
                        k: list(v) if isinstance(v, list) else v
                        for k, v in edge.properties.items()
                    },
                    edge_id=edge.id,
                )
                stats.edges_added += 1
                continue
            if (mine_edge.src, mine_edge.dst) != (edge.src, edge.dst):
                if strict:
                    raise GraphError(
                        f"merge conflict: edge {edge.id!r} connects "
                        f"{mine_edge.src!r}->{mine_edge.dst!r} here but "
                        f"{edge.src!r}->{edge.dst!r} in the merged graph"
                    )
                stats.conflicts += 1
                continue
            mine_edge.labels.update(edge.labels)
            stats.conflicts += _merge_records(
                mine_edge.properties, edge.properties, strict, f"edge {edge.id!r}"
            )
            stats.edges_merged += 1
        self._node_counter = max(self._node_counter, other._node_counter)
        self._edge_counter = max(self._edge_counter, other._edge_counter)
        return stats

    def copy(self) -> "PropertyGraph":
        """A deep copy of the graph."""
        clone = PropertyGraph()
        for node in self._nodes.values():
            clone.add_node(
                node.id,
                labels=set(node.labels),
                properties={
                    k: list(v) if isinstance(v, list) else v
                    for k, v in node.properties.items()
                },
            )
        for edge in self._edges.values():
            clone.add_edge(
                edge.src,
                edge.dst,
                labels=set(edge.labels),
                properties={
                    k: list(v) if isinstance(v, list) else v
                    for k, v in edge.properties.items()
                },
                edge_id=edge.id,
            )
        clone._edge_counter = self._edge_counter
        clone._node_counter = self._node_counter
        return clone

    def __repr__(self) -> str:
        return f"<PropertyGraph |N|={len(self._nodes)} |E|={len(self._edges)}>"
