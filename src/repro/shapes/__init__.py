"""Shape extraction from RDF data (QSE-style, the paper's reference [33])."""

from .extractor import ExtractionConfig, ShapeExtractor, extract_shapes

__all__ = ["ExtractionConfig", "ShapeExtractor", "extract_shapes"]
