"""SHACL shape extraction from RDF data (the paper's reference [33]).

The paper assumes a shape schema is available, extracting one with QSE
[Rabbani, Lissandrini, Hose; PVLDB 2023] when it is not.  This module
implements the same frequency-based idea: for every class, observe which
predicates its instances use, the kinds and datatypes of their values, and
their per-entity multiplicities, then emit node/property shapes with
support- and confidence-based pruning.

Extraction rules:

* one node shape per class with at least ``min_class_support`` instances;
* one property shape per (class, predicate) with support above
  ``min_property_support`` (fraction of the class's instances using it);
* value types: every observed literal datatype, plus a class constraint
  for every observed object class (pruned below ``min_type_confidence``);
* ``sh:minCount 1`` when every instance has the property, else 0;
  ``sh:maxCount 1`` when no instance has two values, else unbounded;
* ``rdfs:subClassOf`` links between shaped classes become ``sh:node``
  inheritance, and property shapes identical to a parent's are removed
  from the child.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from ..namespaces import RDF_TYPE, RDFS, SHAPES, local_name
from ..rdf.graph import Graph
from ..rdf.terms import IRI, BlankNode, Literal
from ..shacl.model import (
    UNBOUNDED,
    ClassType,
    LiteralType,
    NodeShape,
    PropertyShape,
    ShapeSchema,
    ValueType,
)

_TYPE = IRI(RDF_TYPE)
_SUBCLASS = IRI(RDFS.subClassOf)


@dataclass(frozen=True)
class ExtractionConfig:
    """Support/confidence thresholds for shape extraction.

    Attributes:
        min_class_support: minimum number of instances for a class to get
            a node shape.
        min_property_support: minimum fraction of instances using a
            predicate for it to get a property shape.
        min_type_confidence: minimum fraction of a property's values a
            value type must cover to be kept in ``sh:or``.
        derive_hierarchy: turn ``rdfs:subClassOf`` into ``sh:node``.
    """

    min_class_support: int = 1
    min_property_support: float = 0.0
    min_type_confidence: float = 0.0
    derive_hierarchy: bool = True


class ShapeExtractor:
    """Extracts a :class:`ShapeSchema` from instance data (QSE-style)."""

    def __init__(self, config: ExtractionConfig | None = None):
        self.config = config or ExtractionConfig()

    def extract(self, graph: Graph) -> ShapeSchema:
        """Run extraction over ``graph``."""
        config = self.config
        schema = ShapeSchema()
        classes = sorted(
            (
                c
                for c in graph.classes()
                if sum(1 for _ in graph.instances_of(c)) >= config.min_class_support
            ),
            key=lambda c: c.value,
        )
        class_set = {c.value for c in classes}
        shape_names = {
            c.value: SHAPES.term(local_name(c.value) + "Shape") for c in classes
        }
        # Disambiguate local-name collisions across namespaces.
        seen: dict[str, str] = {}
        for class_iri, shape_name in list(shape_names.items()):
            other = seen.get(shape_name)
            if other is not None:
                shape_names[class_iri] = shape_name + "_" + str(len(seen))
            seen[shape_names[class_iri]] = class_iri

        for cls in classes:
            shape = self._extract_node_shape(
                graph, cls, shape_names, class_set
            )
            schema.add(shape)

        if config.derive_hierarchy:
            self._apply_hierarchy(graph, schema, shape_names, class_set)
        return schema

    # ------------------------------------------------------------------ #

    def _extract_node_shape(
        self,
        graph: Graph,
        cls: IRI,
        shape_names: dict[str, str],
        class_set: set[str],
    ) -> NodeShape:
        config = self.config
        instances = list(graph.instances_of(cls))
        n_instances = len(instances)
        usage: dict[IRI, int] = Counter()  # instances using the predicate
        multi: dict[IRI, bool] = defaultdict(bool)
        value_kinds: dict[IRI, Counter] = defaultdict(Counter)
        value_totals: dict[IRI, int] = Counter()

        for entity in instances:
            for predicate in list(graph.predicates_of(entity)):
                if predicate == _TYPE:
                    continue
                values = list(graph.objects(entity, predicate))
                usage[predicate] += 1
                if len(values) > 1:
                    multi[predicate] = True
                for value in values:
                    value_totals[predicate] += 1
                    for kind in self._value_kinds(graph, value):
                        value_kinds[predicate][kind] += 1

        property_shapes: list[PropertyShape] = []
        for predicate in sorted(usage, key=lambda p: p.value):
            support = usage[predicate] / n_instances if n_instances else 0.0
            if support < config.min_property_support:
                continue
            value_types = self._select_value_types(
                value_kinds[predicate], value_totals[predicate]
            )
            if not value_types:
                continue
            property_shapes.append(
                PropertyShape(
                    path=predicate.value,
                    value_types=value_types,
                    min_count=1 if usage[predicate] == n_instances else 0,
                    max_count=UNBOUNDED if multi[predicate] else 1,
                )
            )
        return NodeShape(
            name=shape_names[cls.value],
            target_class=cls.value,
            property_shapes=property_shapes,
        )

    @staticmethod
    def _value_kinds(graph: Graph, value) -> list[tuple[str, str]]:
        if isinstance(value, Literal):
            if value.language is not None:
                return [("literal", Literal.LANG_STRING)]
            return [("literal", value.datatype)]
        if isinstance(value, (IRI, BlankNode)):
            types = graph.types_of(value)
            # Keep only the most specific types: drop any type that is a
            # superclass of another type the object carries, so that an
            # object typed {Settlement, Place} yields just Settlement.
            specific = [
                t
                for t in types
                if not any(
                    t in graph.superclasses(other) for other in types if other != t
                )
            ]
            return [
                ("class", t.value)
                for t in sorted(specific, key=lambda t: t.value)
            ]  # untyped IRIs contribute no constraint
        return []

    def _select_value_types(
        self, kinds: Counter, total: int
    ) -> tuple[ValueType, ...]:
        config = self.config
        selected: list[ValueType] = []
        # Order by descending support (the first literal type is the
        # property's dominant datatype, which schema-dependent consumers
        # like rdf2pg treat as the declared attribute type).
        for (kind, iri), count in sorted(
            kinds.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            confidence = count / total if total else 0.0
            if confidence < config.min_type_confidence:
                continue
            if kind == "literal":
                selected.append(LiteralType(iri))
            else:
                selected.append(ClassType(iri))
        return tuple(selected)

    # ------------------------------------------------------------------ #

    def _apply_hierarchy(
        self,
        graph: Graph,
        schema: ShapeSchema,
        shape_names: dict[str, str],
        class_set: set[str],
    ) -> None:
        for triple in graph.triples(p=_SUBCLASS):
            if not (isinstance(triple.s, IRI) and isinstance(triple.o, IRI)):
                continue
            child_iri, parent_iri = triple.s.value, triple.o.value
            if child_iri not in class_set or parent_iri not in class_set:
                continue
            child = schema[shape_names[child_iri]]
            parent_name = shape_names[parent_iri]
            if parent_name not in child.extends:
                child.extends = (*child.extends, parent_name)
        # Remove child-local property shapes identical to an inherited one.
        for shape in schema:
            if not shape.extends:
                continue
            inherited: dict[str, PropertyShape] = {}
            for ancestor in schema.ancestors(shape.name):
                for phi in schema[ancestor].property_shapes:
                    inherited.setdefault(phi.path, phi)
            shape.property_shapes = [
                phi
                for phi in shape.property_shapes
                if not (
                    phi.path in inherited
                    and set(phi.value_types) == set(inherited[phi.path].value_types)
                    and phi.cardinality() == inherited[phi.path].cardinality()
                )
            ]


def extract_shapes(
    graph: Graph, config: ExtractionConfig | None = None
) -> ShapeSchema:
    """Extract a shape schema from ``graph`` (module-level convenience)."""
    return ShapeExtractor(config).extract(graph)
