"""Result-set comparison and accuracy metrics (Section 5.2).

Ground truth is the SPARQL result over the source RDF graph; each method's
Cypher result over its transformed PG is compared after applying the value
translation ``tr(mu)`` of Definition 3.2 (IRIs and blank-node ids become
strings, literals their lexical forms).  Accuracy is result completeness:
``|GT ∩ method| / |GT|`` as a percentage over multisets of rows.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.inverse import scalar_to_lexical
from ..rdf.terms import IRI, BlankNode, Literal


def tr_term(term: object) -> str:
    """The ``tr`` value translation for one SPARQL result value."""
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return term.value
    if isinstance(term, BlankNode):
        return f"_:{term.label}"
    return str(term)


def normalize_sparql_rows(rows: list[dict]) -> Counter:
    """SPARQL solutions as a multiset of value tuples (column-order free)."""
    return Counter(
        tuple(tr_term(row[key]) for key in sorted(row)) for row in rows
    )


def normalize_cypher_rows(rows: list[dict]) -> Counter:
    """Cypher rows as a multiset of value tuples (column-order free)."""
    normalized = []
    for row in rows:
        normalized.append(
            tuple(
                "" if row[key] is None else scalar_to_lexical(row[key])
                for key in sorted(row)
            )
        )
    return Counter(normalized)


@dataclass(frozen=True)
class AccuracyResult:
    """Completeness of one method's answer for one query."""

    ground_truth: int
    returned: int
    matched: int

    @property
    def accuracy_percent(self) -> float:
        """``matched / ground_truth`` as a percentage (100 when GT empty)."""
        if self.ground_truth == 0:
            return 100.0
        return 100.0 * self.matched / self.ground_truth

    @property
    def spurious(self) -> int:
        """Rows returned that are not in the ground truth."""
        return self.returned - self.matched


def accuracy(gt_rows: list[dict], method_rows: list[dict]) -> AccuracyResult:
    """Compare a method's rows against the SPARQL ground truth.

    Both inputs are multisets; a ground-truth row counts as matched at most
    as many times as the method returned it.
    """
    gt = normalize_sparql_rows(gt_rows)
    method = normalize_cypher_rows(method_rows)
    matched = sum(min(count, method.get(row, 0)) for row, count in gt.items())
    return AccuracyResult(
        ground_truth=sum(gt.values()),
        returned=sum(method.values()),
        matched=matched,
    )
