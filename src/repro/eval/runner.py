"""Experiment drivers shared by the benchmark harness (Section 5).

Every benchmark under ``benchmarks/`` is a thin wrapper around one of
these functions, which implement the paper's experiments:

* :func:`load_dataset` — generate a synthetic dataset and extract its
  SHACL shapes (Tables 2 and 3 inputs);
* :func:`run_all_transformations` — run S3PG, rdf2pg, and NeoSemantics
  with phase timing (Table 4) and collect PG statistics (Table 5);
* :func:`accuracy_experiment` — ground-truth SPARQL vs each method's
  Cypher, per workload query (Tables 6 and 7);
* :func:`runtime_experiment` — mean query runtimes per engine (Figure 6);
* :func:`monotonicity_experiment` — full re-conversion vs delta-only
  incremental conversion (Section 5.4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..baselines.neosemantics import (
    NeoSemanticsResult,
    NeoSemanticsTransformer,
)
from ..baselines.neosemantics import (
    cypher_for_class_property as neosem_cypher_for,
)
from ..baselines.rdf2pg import Rdf2pgResult, Rdf2pgTransformer
from ..baselines.rdf2pg import cypher_for_class_property as rdf2pg_cypher_for
from ..core.config import DEFAULT_OPTIONS, MONOTONE_OPTIONS, TransformOptions
from ..core.incremental import apply_delta
from ..core.pipeline import S3PG, TransformResult
from ..datasets.bio2rdf import bio2rdf_spec
from ..datasets.common import DatasetSpec, generate
from ..datasets.dbpedia import dbpedia2020_spec, dbpedia2022_spec
from ..datasets.evolution import make_evolution_pair
from ..datasets.workloads import WorkloadQuery
from ..pg.store import PropertyGraphStore
from ..query.cypher.evaluator import CypherEngine
from ..query.sparql.evaluator import SparqlEngine
from ..query.translate import SparqlToCypherTranslator
from ..rdf.graph import Graph
from ..shacl.model import ShapeSchema
from ..shapes.extractor import extract_shapes
from .metrics import AccuracyResult, accuracy

#: Method names in the paper's column order.
METHODS = ("S3PG", "rdf2pg", "NeoSem")

_SPECS = {
    "dbpedia2022": (dbpedia2022_spec, 400, 42),
    "dbpedia2020": (dbpedia2020_spec, 200, 7),
    "bio2rdf": (bio2rdf_spec, 300, 17),
}


@dataclass
class DatasetBundle:
    """A generated dataset plus its extracted shape schema."""

    name: str
    spec: DatasetSpec
    graph: Graph
    shapes: ShapeSchema


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None) -> DatasetBundle:
    """Generate one of the three evaluation datasets and extract shapes.

    Args:
        name: ``dbpedia2022``, ``dbpedia2020``, or ``bio2rdf``.
        scale: multiplier on the default entity counts.
        seed: RNG seed override.
    """
    spec_fn, base_entities, default_seed = _SPECS[name]
    spec = spec_fn()
    graph = generate(
        spec,
        base_entities=max(1, int(base_entities * scale)),
        seed=default_seed if seed is None else seed,
    )
    shapes = extract_shapes(graph)
    return DatasetBundle(name=name, spec=spec, graph=graph, shapes=shapes)


# --------------------------------------------------------------------- #
# Transformation (Tables 4 & 5)
# --------------------------------------------------------------------- #

@dataclass
class MethodRun:
    """One method's transformation output and phase timings."""

    method: str
    store: PropertyGraphStore
    transform_s: float | None
    load_s: float | None
    combined_s: float
    extra: dict = field(default_factory=dict)

    @property
    def pg_stats(self):
        """Table 5 statistics of the transformed graph."""
        return self.store.graph.stats()


def run_s3pg(
    bundle: DatasetBundle, options: TransformOptions = DEFAULT_OPTIONS
) -> tuple[MethodRun, TransformResult]:
    """Run the full S3PG pipeline and load the output into a store."""
    result = S3PG(options).transform(bundle.graph, bundle.shapes)
    store = result.load()
    run = MethodRun(
        method="S3PG",
        store=store,
        transform_s=result.timings["transform_s"],
        load_s=result.timings["load_s"],
        combined_s=result.timings["transform_s"] + result.timings["load_s"],
    )
    return run, result


def run_rdf2pg(bundle: DatasetBundle) -> tuple[MethodRun, Rdf2pgResult]:
    """Run the rdf2pg baseline."""
    result = Rdf2pgTransformer(bundle.shapes).transform(bundle.graph)
    run = MethodRun(
        method="rdf2pg",
        store=result.store,
        transform_s=result.transform_seconds,
        load_s=result.load_seconds,
        combined_s=result.transform_seconds + result.load_seconds,
        extra={"stats": result.stats},
    )
    return run, result


def run_neosemantics(bundle: DatasetBundle) -> tuple[MethodRun, NeoSemanticsResult]:
    """Run the NeoSemantics baseline (single combined phase)."""
    result = NeoSemanticsTransformer().transform(bundle.graph)
    run = MethodRun(
        method="NeoSem",
        store=result.store,
        transform_s=None,
        load_s=None,
        combined_s=result.combined_seconds,
        extra={"stats": result.stats},
    )
    return run, result


@dataclass
class AllRuns:
    """All three transformations of one dataset."""

    s3pg_run: MethodRun
    s3pg_result: TransformResult
    rdf2pg_run: MethodRun
    rdf2pg_result: Rdf2pgResult
    neosem_run: MethodRun
    neosem_result: NeoSemanticsResult

    def runs(self) -> dict[str, MethodRun]:
        """Method name -> run, in the paper's order."""
        return {
            "S3PG": self.s3pg_run,
            "rdf2pg": self.rdf2pg_run,
            "NeoSem": self.neosem_run,
        }


def run_all_transformations(bundle: DatasetBundle) -> AllRuns:
    """Run all three methods on one dataset (Table 4 / Table 5 driver)."""
    s3pg_run, s3pg_result = run_s3pg(bundle)
    rdf2pg_run, rdf2pg_result = run_rdf2pg(bundle)
    neosem_run, neosem_result = run_neosemantics(bundle)
    return AllRuns(
        s3pg_run=s3pg_run,
        s3pg_result=s3pg_result,
        rdf2pg_run=rdf2pg_run,
        rdf2pg_result=rdf2pg_result,
        neosem_run=neosem_run,
        neosem_result=neosem_result,
    )


# --------------------------------------------------------------------- #
# Per-method Cypher generation for the workload queries
# --------------------------------------------------------------------- #

def s3pg_cypher(query: WorkloadQuery, result: TransformResult) -> str:
    """The S3PG Cypher for a workload query, via the automated translator."""
    return SparqlToCypherTranslator(result.mapping).translate_text(query.sparql)


def neosem_cypher(query: WorkloadQuery, result: NeoSemanticsResult) -> str:
    """The NeoSemantics Cypher (UNION ALL of edge and property forms)."""
    return neosem_cypher_for(result.resolver, query.class_iri, query.predicate)


def rdf2pg_cypher(query: WorkloadQuery, result: Rdf2pgResult) -> str:
    """The rdf2pg Cypher (single realization-dependent access path)."""
    return rdf2pg_cypher_for(result, query.class_iri, query.predicate)


# --------------------------------------------------------------------- #
# Accuracy (Tables 6 & 7)
# --------------------------------------------------------------------- #

@dataclass
class AccuracyRow:
    """One row of the accuracy tables."""

    qid: str
    category: str
    ground_truth: int
    per_method: dict[str, AccuracyResult]

    def as_row(self) -> dict[str, object]:
        """Render as a printable table row."""
        row: dict[str, object] = {
            "Q": self.qid,
            "Category": self.category,
            "# of GT": self.ground_truth,
        }
        for method in METHODS:
            result = self.per_method.get(method)
            row[method] = f"{result.accuracy_percent:.2f}%" if result else "x"
        return row


def accuracy_experiment(
    bundle: DatasetBundle,
    workload: list[WorkloadQuery],
    all_runs: AllRuns | None = None,
) -> list[AccuracyRow]:
    """Run the completeness comparison for every workload query."""
    runs = all_runs or run_all_transformations(bundle)
    sparql_engine = SparqlEngine(bundle.graph)
    engines = {
        "S3PG": CypherEngine(runs.s3pg_run.store),
        "rdf2pg": CypherEngine(runs.rdf2pg_run.store),
        "NeoSem": CypherEngine(runs.neosem_run.store),
    }
    rows: list[AccuracyRow] = []
    for query in workload:
        gt_rows = sparql_engine.query(query.sparql)
        per_method: dict[str, AccuracyResult] = {}
        cypher_texts = {
            "S3PG": s3pg_cypher(query, runs.s3pg_result),
            "rdf2pg": rdf2pg_cypher(query, runs.rdf2pg_result),
            "NeoSem": neosem_cypher(query, runs.neosem_result),
        }
        for method, text in cypher_texts.items():
            method_rows = engines[method].query(text)
            per_method[method] = accuracy(gt_rows, method_rows)
        rows.append(
            AccuracyRow(
                qid=query.qid,
                category=query.category,
                ground_truth=len(gt_rows),
                per_method=per_method,
            )
        )
    return rows


# --------------------------------------------------------------------- #
# Query runtime (Figure 6)
# --------------------------------------------------------------------- #

@dataclass
class RuntimeRow:
    """Mean runtimes (milliseconds) of one query on every engine."""

    qid: str
    category: str
    runtimes_ms: dict[str, float]


def runtime_experiment(
    bundle: DatasetBundle,
    workload: list[WorkloadQuery],
    all_runs: AllRuns | None = None,
    repeat: int = 5,
    warmup: int = 1,
) -> list[RuntimeRow]:
    """Measure mean query runtimes on the RDF engine and the three PGs.

    Mirrors the paper's protocol: warm-up executions first, then the mean
    of ``repeat`` timed runs per query and engine.
    """
    runs = all_runs or run_all_transformations(bundle)
    sparql_engine = SparqlEngine(bundle.graph)
    for store in (runs.s3pg_run.store, runs.rdf2pg_run.store, runs.neosem_run.store):
        store.warm_up()

    def timed_runs(fn) -> float:
        for _ in range(warmup):
            fn()
        start = time.perf_counter()
        for _ in range(repeat):
            fn()
        return (time.perf_counter() - start) / repeat * 1000.0

    engines = {
        "S3PG": CypherEngine(runs.s3pg_run.store),
        "rdf2pg": CypherEngine(runs.rdf2pg_run.store),
        "NeoSem": CypherEngine(runs.neosem_run.store),
    }
    rows: list[RuntimeRow] = []
    for query in workload:
        cypher_texts = {
            "S3PG": s3pg_cypher(query, runs.s3pg_result),
            "rdf2pg": rdf2pg_cypher(query, runs.rdf2pg_result),
            "NeoSem": neosem_cypher(query, runs.neosem_result),
        }
        runtimes = {
            "SPARQL(RDF)": timed_runs(lambda: sparql_engine.query(query.sparql)),
        }
        for method, text in cypher_texts.items():
            engine = engines[method]
            runtimes[method] = timed_runs(lambda t=text, e=engine: e.query(t))
        rows.append(
            RuntimeRow(qid=query.qid, category=query.category, runtimes_ms=runtimes)
        )
    return rows


# --------------------------------------------------------------------- #
# Monotonicity (Section 5.4)
# --------------------------------------------------------------------- #

@dataclass
class MonotonicityReport:
    """Timings of the Section 5.4 experiment."""

    parsimonious_old_s: float
    non_parsimonious_old_s: float
    parsimonious_new_s: float
    non_parsimonious_new_s: float
    delta_only_s: float
    delta_matches_full: bool
    n_old_triples: int
    n_new_triples: int
    n_added: int
    n_removed: int

    @property
    def savings_percent(self) -> float:
        """Time saved by delta-only conversion vs full re-conversion."""
        if self.parsimonious_new_s == 0:
            return 0.0
        return 100.0 * (1.0 - self.delta_only_s / self.parsimonious_new_s)

    def as_rows(self) -> list[dict[str, object]]:
        """Printable summary rows."""
        return [
            {"run": "parsimonious full (old snapshot)",
             "seconds": self.parsimonious_old_s},
            {"run": "non-parsimonious full (old snapshot)",
             "seconds": self.non_parsimonious_old_s},
            {"run": "parsimonious full (new snapshot)",
             "seconds": self.parsimonious_new_s},
            {"run": "non-parsimonious full (new snapshot)",
             "seconds": self.non_parsimonious_new_s},
            {"run": "non-parsimonious delta only",
             "seconds": self.delta_only_s},
        ]


def monotonicity_experiment(
    bundle: DatasetBundle,
    add_fraction: float = 0.052,
    delete_fraction: float = 0.018,
    seed: int = 99,
) -> MonotonicityReport:
    """Run the Section 5.4 comparison on a dataset bundle.

    The delta-applied graph is additionally checked for structural
    equality against a from-scratch conversion of the new snapshot
    (Definition 3.4's ``F(S2) ≅ F(S1) ∪ F(SΔ)``).
    """
    pair = make_evolution_pair(
        bundle.graph, add_fraction=add_fraction,
        delete_fraction=delete_fraction, seed=seed,
    )
    shapes = extract_shapes(pair.new | pair.old)

    def timed_transform(graph: Graph, options: TransformOptions):
        start = time.perf_counter()
        result = S3PG(options).transform(graph, shapes)
        return time.perf_counter() - start, result

    pars_old_s, _ = timed_transform(pair.old, DEFAULT_OPTIONS)
    nonpars_old_s, nonpars_old = timed_transform(pair.old, MONOTONE_OPTIONS)
    pars_new_s, _ = timed_transform(pair.new, DEFAULT_OPTIONS)
    nonpars_new_s, nonpars_new = timed_transform(pair.new, MONOTONE_OPTIONS)

    start = time.perf_counter()
    apply_delta(nonpars_old.transformed, added=pair.added, removed=pair.removed)
    delta_only_s = time.perf_counter() - start

    matches = nonpars_old.graph.structurally_equal(nonpars_new.graph)

    return MonotonicityReport(
        parsimonious_old_s=pars_old_s,
        non_parsimonious_old_s=nonpars_old_s,
        parsimonious_new_s=pars_new_s,
        non_parsimonious_new_s=nonpars_new_s,
        delta_only_s=delta_only_s,
        delta_matches_full=matches,
        n_old_triples=len(pair.old),
        n_new_triples=len(pair.new),
        n_added=len(pair.added),
        n_removed=len(pair.removed),
    )
