"""Phase timing and memory measurement helpers for the experiments."""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PhaseTimings:
    """Named phase durations (seconds), in insertion order."""

    phases: dict[str, float] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        """Store (accumulating re-entries of the same phase)."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def total(self) -> float:
        """Sum of all phases."""
        return sum(self.phases.values())

    def as_row(self) -> dict[str, float]:
        """The timings plus a ``total`` column."""
        row = dict(self.phases)
        row["total"] = self.total()
        return row


@contextmanager
def timed(timings: PhaseTimings, name: str):
    """Context manager recording the elapsed wall time of a phase."""
    start = time.perf_counter()
    try:
        yield
    finally:
        timings.record(name, time.perf_counter() - start)


@dataclass(frozen=True)
class MemoryUsage:
    """Peak Python allocation during a measured block (bytes)."""

    peak_bytes: int

    @property
    def peak_mb(self) -> float:
        """Peak in mebibytes."""
        return self.peak_bytes / (1024 * 1024)


@contextmanager
def traced_memory():
    """Measure peak allocations of a block with :mod:`tracemalloc`.

    Yields a one-element list that holds a :class:`MemoryUsage` after the
    block exits.  (Tracing adds overhead; use only when the experiment
    reports memory, as Table 4's memory-limit discussion does.)
    """
    holder: list[MemoryUsage] = []
    tracemalloc.start()
    try:
        yield holder
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        holder.append(MemoryUsage(peak_bytes=peak))


def time_callable(fn, *args, repeat: int = 1, **kwargs) -> tuple[float, object]:
    """Run ``fn`` ``repeat`` times; return (mean seconds, last result)."""
    result = None
    start = time.perf_counter()
    for _ in range(repeat):
        result = fn(*args, **kwargs)
    elapsed = (time.perf_counter() - start) / repeat
    return elapsed, result
