"""Phase timing and memory measurement helpers for the experiments.

Phase timing is a thin wrapper over the :mod:`repro.obs` span clock:
:func:`timed` opens an (always-measuring) obs span, so benchmark phase
rows and runtime traces report from one clock — and a benchmark run
under ``--trace`` shows its phases in the exported trace for free.
:class:`PhaseTimings` is only the report container the experiment
tables render from.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field

from .. import obs


@dataclass
class PhaseTimings:
    """Named phase durations (seconds), in insertion order."""

    phases: dict[str, float] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        """Store (accumulating re-entries of the same phase)."""
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def total(self) -> float:
        """Sum of all phases."""
        return sum(self.phases.values())

    def as_row(self) -> dict[str, float]:
        """The timings plus a ``total`` column."""
        row = dict(self.phases)
        row["total"] = self.total()
        return row


@contextmanager
def timed(timings: PhaseTimings, name: str):
    """Context manager recording the elapsed wall time of a phase.

    The measurement is an obs span (recorded in the trace when a tracer
    is configured, unrecorded but still timed otherwise).
    """
    with obs.timed_span(f"eval.{name}") as span:
        try:
            yield
        finally:
            if span.end_ns is None:
                span.end_ns = time.perf_counter_ns()
            timings.record(name, span.duration_s)


@dataclass(frozen=True)
class MemoryUsage:
    """Peak Python allocation during a measured block (bytes)."""

    peak_bytes: int

    @property
    def peak_mb(self) -> float:
        """Peak in mebibytes."""
        return self.peak_bytes / (1024 * 1024)


@contextmanager
def traced_memory():
    """Measure peak allocations of a block with :mod:`tracemalloc`.

    Yields a one-element list that holds a :class:`MemoryUsage` after the
    block exits.  (Tracing adds overhead; use only when the experiment
    reports memory, as Table 4's memory-limit discussion does.)
    """
    holder: list[MemoryUsage] = []
    tracemalloc.start()
    try:
        yield holder
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        holder.append(MemoryUsage(peak_bytes=peak))


def time_callable(fn, *args, repeat: int = 1, **kwargs) -> tuple[float, object]:
    """Run ``fn`` ``repeat`` times; return (mean seconds, last result)."""
    result = None
    start = time.perf_counter()
    for _ in range(repeat):
        result = fn(*args, **kwargs)
    elapsed = (time.perf_counter() - start) / repeat
    return elapsed, result
