"""ASCII rendering of the paper's tables from experiment rows."""

from __future__ import annotations

from collections.abc import Iterable, Mapping


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    rows: Iterable[Mapping[str, object]],
    title: str | None = None,
    columns: list[str] | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    Args:
        rows: mapping rows; all keys of the first row are used as columns
            unless ``columns`` is given.
        title: optional heading printed above the table.
        columns: explicit column order.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_format_value(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(separator)
    for row in body:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def render_series(
    title: str,
    series: Mapping[str, Mapping[str, float]],
    unit: str = "",
) -> str:
    """Render named series (e.g. per-query runtimes per engine) as a table.

    Args:
        title: heading.
        series: mapping series-name -> {x-label -> value}.
        unit: optional unit appended to the title.
    """
    x_labels: list[str] = []
    for values in series.values():
        for x in values:
            if x not in x_labels:
                x_labels.append(x)
    rows = []
    for name, values in series.items():
        row: dict[str, object] = {"series": name}
        for x in x_labels:
            row[x] = values.get(x, "")
        rows.append(row)
    heading = f"{title} ({unit})" if unit else title
    return render_table(rows, title=heading, columns=["series", *x_labels])
