"""S3PG: Transforming RDF Graphs to Property Graphs using Standardized Schemas.

A from-scratch reproduction of the SIGMOD paper by Rabbani, Lissandrini,
Bonifati, and Hose.  The package implements the full stack the paper
builds on:

* :mod:`repro.rdf` — RDF terms, indexed triple store, N-Triples/Turtle;
* :mod:`repro.shacl` — SHACL shape model, parser, validator;
* :mod:`repro.shapes` — QSE-style shape extraction from data;
* :mod:`repro.pg` — property graphs, indexed store, CSV/YARS-PG I/O;
* :mod:`repro.pgschema` — PG-Schema types, PG-Keys, conformance, DDL;
* :mod:`repro.core` — the S3PG transformation itself (schema + data,
  parsimonious & non-parsimonious, inverses, incremental updates);
* :mod:`repro.baselines` — NeoSemantics and rdf2pg reimplementations;
* :mod:`repro.query` — SPARQL & Cypher engines and the query translator;
* :mod:`repro.datasets` — synthetic DBpedia/Bio2RDF-like KGs, workloads;
* :mod:`repro.eval` — the experiment harness behind ``benchmarks/``.

Quickstart::

    from repro import transform
    from repro.datasets import university_graph, university_shapes

    result = transform(university_graph(), university_shapes())
    print(result.graph)            # the property graph
    print(result.pg_schema)        # the PG-Schema
"""

from .core.config import DEFAULT_OPTIONS, MONOTONE_OPTIONS, TransformOptions
from .core.pipeline import S3PG, TransformResult, transform, transform_file_parallel

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_OPTIONS",
    "MONOTONE_OPTIONS",
    "S3PG",
    "TransformOptions",
    "TransformResult",
    "transform",
    "transform_file_parallel",
    "__version__",
]
