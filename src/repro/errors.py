"""Exception hierarchy for the S3PG reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-hierarchies mirror the
package layout: parsing, validation, schema handling, transformation, and
querying each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParseError(ReproError):
    """A serialized document (N-Triples, Turtle, DDL, query text) is invalid.

    Attributes:
        line: 1-based line number of the offending input, when known.
        column: 1-based column number, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class TermError(ReproError):
    """An RDF term (IRI, literal, blank node) is malformed."""


class GraphError(ReproError):
    """An operation on an RDF graph or property graph is invalid."""


class ShapeError(ReproError):
    """A SHACL shape definition is malformed or inconsistent."""


class SchemaError(ReproError):
    """A PG-Schema definition is malformed or inconsistent."""


class ValidationError(ReproError):
    """Raised when strict validation is requested and the data does not conform."""


class TransformError(ReproError):
    """The RDF-to-PG transformation cannot proceed.

    Typically raised when instance data refers to types not covered by the
    shape schema and the transformation runs in strict mode.
    """


class ChangefeedError(ReproError):
    """A CDC changefeed source or checkpoint is malformed or inconsistent."""


class SnapshotError(ReproError):
    """A binary graph snapshot is corrupt, truncated, or unsupported.

    Raised eagerly on load — a bad file produces this error, never a
    silently wrong graph.
    """


class EngineError(ReproError):
    """The parallel execution engine cannot complete a sharded run.

    Raised when shard outcomes cannot be reconciled into one property
    graph (e.g. two workers minted conflicting fallback names); callers
    normally degrade to the serial transformation on this error.
    """


class QueryError(ReproError):
    """A query is syntactically or semantically invalid for the engine."""


class TranslationError(ReproError):
    """A SPARQL query cannot be translated to Cypher for the given mapping."""
