"""Serialize a :class:`ShapeSchema` back to SHACL (RDF graph / Turtle).

The emitted graph uses exactly the constructs the parser understands, so
``parse_shacl(serialize_shacl(schema))`` reproduces the schema — this
round-trip is the computable mapping ``N`` restricted to SHACL documents
and is exercised by the property-based tests.
"""

from __future__ import annotations

from ..namespaces import RDF_TYPE, SH
from ..rdf.graph import Graph
from ..rdf.terms import IRI, BlankNode, Literal, Triple
from ..rdf.turtle import serialize_turtle
from ..namespaces import XSD
from .model import (
    UNBOUNDED,
    ClassType,
    LiteralType,
    NodeShape,
    NodeShapeRef,
    PropertyShape,
    ShapeSchema,
    ValueType,
)

_TYPE = IRI(RDF_TYPE)
_SH_NODE_SHAPE = IRI(SH.NodeShape)
_SH_TARGET_CLASS = IRI(SH.targetClass)
_SH_NODE = IRI(SH.node)
_SH_PROPERTY = IRI(SH.property)
_SH_PATH = IRI(SH.path)
_SH_DATATYPE = IRI(SH.datatype)
_SH_CLASS = IRI(SH["class"])
_SH_NODE_KIND = IRI(SH.nodeKind)
_SH_MIN_COUNT = IRI(SH.minCount)
_SH_MAX_COUNT = IRI(SH.maxCount)
_SH_OR = IRI(SH["or"])
_SH_LITERAL = IRI(SH.Literal)
_SH_IRI_KIND = IRI(SH.IRI)
_RDF_FIRST = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#first")
_RDF_REST = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#rest")
_RDF_NIL = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#nil")


class _BNodeFactory:
    def __init__(self) -> None:
        self._counter = 0

    def __call__(self) -> BlankNode:
        self._counter += 1
        return BlankNode(f"sh{self._counter}")


def shacl_to_graph(schema: ShapeSchema) -> Graph:
    """Encode the shape schema as an RDF graph of SHACL declarations."""
    graph = Graph()
    fresh = _BNodeFactory()
    for shape in schema:
        _emit_node_shape(graph, shape, fresh)
    return graph


def serialize_shacl(schema: ShapeSchema) -> str:
    """Render the shape schema as a Turtle document."""
    return serialize_turtle(shacl_to_graph(schema))


def _emit_node_shape(graph: Graph, shape: NodeShape, fresh: _BNodeFactory) -> None:
    subject = IRI(shape.name)
    graph.add(Triple(subject, _TYPE, _SH_NODE_SHAPE))
    if shape.target_class is not None:
        graph.add(Triple(subject, _SH_TARGET_CLASS, IRI(shape.target_class)))
    for parent in shape.extends:
        graph.add(Triple(subject, _SH_NODE, IRI(parent)))
    for phi in shape.property_shapes:
        prop_node = fresh()
        graph.add(Triple(subject, _SH_PROPERTY, prop_node))
        _emit_property_shape(graph, prop_node, phi, fresh)


def _emit_property_shape(
    graph: Graph, node: BlankNode, phi: PropertyShape, fresh: _BNodeFactory
) -> None:
    graph.add(Triple(node, _SH_PATH, IRI(phi.path)))
    if phi.min_count > 0:
        graph.add(Triple(node, _SH_MIN_COUNT, Literal(str(phi.min_count), XSD.integer)))
    if phi.max_count != UNBOUNDED:
        graph.add(
            Triple(node, _SH_MAX_COUNT, Literal(str(int(phi.max_count)), XSD.integer))
        )
    if len(phi.value_types) == 1:
        _emit_value_type(graph, node, phi.value_types[0])
        return
    # sh:or over an RDF collection of alternative blank nodes.
    alt_nodes: list[BlankNode] = []
    for vt in phi.value_types:
        alt = fresh()
        _emit_value_type(graph, alt, vt)
        alt_nodes.append(alt)
    head = fresh()
    graph.add(Triple(node, _SH_OR, head))
    current = head
    for index, alt in enumerate(alt_nodes):
        graph.add(Triple(current, _RDF_FIRST, alt))
        if index + 1 < len(alt_nodes):
            nxt = fresh()
            graph.add(Triple(current, _RDF_REST, nxt))
            current = nxt
        else:
            graph.add(Triple(current, _RDF_REST, _RDF_NIL))


def _emit_value_type(graph: Graph, node: BlankNode, vt: ValueType) -> None:
    if isinstance(vt, LiteralType):
        graph.add(Triple(node, _SH_NODE_KIND, _SH_LITERAL))
        graph.add(Triple(node, _SH_DATATYPE, IRI(vt.datatype)))
    elif isinstance(vt, ClassType):
        graph.add(Triple(node, _SH_NODE_KIND, _SH_IRI_KIND))
        graph.add(Triple(node, _SH_CLASS, IRI(vt.cls)))
    elif isinstance(vt, NodeShapeRef):
        graph.add(Triple(node, _SH_NODE_KIND, _SH_IRI_KIND))
        graph.add(Triple(node, _SH_NODE, IRI(vt.shape)))
    else:  # pragma: no cover - exhaustive over the ValueType union
        raise TypeError(f"unknown value type {vt!r}")
