"""SHACL shape schema model (Definition 2.2).

A :class:`ShapeSchema` ``S_G`` is a set of node shapes ``<s, tau_s, Phi_s>``:
``s`` is the shape name, ``tau_s`` the target class (or a parent node shape
for inheritance), and ``Phi_s`` a set of property shapes
``phi = <tau_p, T_p, C_p>`` where ``tau_p`` is the target property, ``T_p``
the value-type constraint set (literal datatypes, class constraints, or node
shape references), and ``C_p = (min, max)`` the cardinality constraints.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..errors import ShapeError
from ..namespaces import XSD

#: Max-cardinality value meaning "unbounded" (the paper's ``∞`` / ``*``).
UNBOUNDED = math.inf


@dataclass(frozen=True)
class LiteralType:
    """A literal value-type constraint: values must be literals of ``datatype``.

    Corresponds to ``sh:nodeKind sh:Literal ; sh:datatype <datatype>``.
    """

    datatype: str

    def is_literal(self) -> bool:
        """Always True for literal types (taxonomy dispatch helper)."""
        return True

    def __str__(self) -> str:
        return f"Literal<{self.datatype}>"


@dataclass(frozen=True)
class ClassType:
    """A class value-type constraint: values must be IRIs typed with ``cls``.

    Corresponds to ``sh:nodeKind sh:IRI ; sh:class <cls>``.
    """

    cls: str

    def is_literal(self) -> bool:
        """Always False for class types (taxonomy dispatch helper)."""
        return False

    def __str__(self) -> str:
        return f"Class<{self.cls}>"


@dataclass(frozen=True)
class NodeShapeRef:
    """A node-type value constraint: values must conform to another shape.

    Corresponds to ``sh:node <shape>`` used inside a property shape.
    """

    shape: str

    def is_literal(self) -> bool:
        """Always False: shape references target IRI/blank nodes."""
        return False

    def __str__(self) -> str:
        return f"Shape<{self.shape}>"


#: A single value-type alternative within ``T_p``.
ValueType = LiteralType | ClassType | NodeShapeRef


class PropertyShapeKind:
    """The Figure 3 taxonomy of property-shape node kinds."""

    SINGLE_LITERAL = "single-type-literal"
    SINGLE_NON_LITERAL = "single-type-non-literal"
    MULTI_HOMO_LITERAL = "multi-type-homogeneous-literal"
    MULTI_HOMO_NON_LITERAL = "multi-type-homogeneous-non-literal"
    MULTI_HETERO = "multi-type-heterogeneous"

    ALL = (
        SINGLE_LITERAL,
        SINGLE_NON_LITERAL,
        MULTI_HOMO_LITERAL,
        MULTI_HOMO_NON_LITERAL,
        MULTI_HETERO,
    )


@dataclass(frozen=True)
class PropertyShape:
    """A property shape ``phi = <tau_p, T_p, C_p>`` (Definition 2.2).

    Args:
        path: the target property IRI ``tau_p`` (``sh:path``).
        value_types: the alternatives in ``T_p``; more than one element
            models an ``sh:or`` of node-kind alternatives.
        min_count: ``C_p`` lower bound (``sh:minCount``, default 0).
        max_count: ``C_p`` upper bound (``sh:maxCount``); ``UNBOUNDED``
            when absent.
    """

    path: str
    value_types: tuple[ValueType, ...]
    min_count: int = 0
    max_count: float = UNBOUNDED

    def __post_init__(self) -> None:
        if not self.value_types:
            raise ShapeError(f"property shape for {self.path} has no value types")
        if self.min_count < 0:
            raise ShapeError(f"negative minCount on {self.path}")
        if self.max_count != UNBOUNDED and self.max_count < self.min_count:
            raise ShapeError(
                f"maxCount {self.max_count} < minCount {self.min_count} on {self.path}"
            )

    # -- taxonomy ------------------------------------------------------- #

    def kind(self) -> str:
        """Classify this shape into the Figure 3 taxonomy."""
        literals = [v for v in self.value_types if v.is_literal()]
        non_literals = [v for v in self.value_types if not v.is_literal()]
        if literals and non_literals:
            return PropertyShapeKind.MULTI_HETERO
        if len(self.value_types) == 1:
            return (
                PropertyShapeKind.SINGLE_LITERAL
                if literals
                else PropertyShapeKind.SINGLE_NON_LITERAL
            )
        return (
            PropertyShapeKind.MULTI_HOMO_LITERAL
            if literals
            else PropertyShapeKind.MULTI_HOMO_NON_LITERAL
        )

    def is_single_type(self) -> bool:
        """True when ``T_p`` has exactly one alternative."""
        return len(self.value_types) == 1

    def sole_literal_type(self) -> LiteralType | None:
        """The single literal datatype, when this is a single-literal shape."""
        if self.is_single_type() and isinstance(self.value_types[0], LiteralType):
            return self.value_types[0]
        return None

    def literal_types(self) -> tuple[LiteralType, ...]:
        """All literal alternatives in ``T_p``."""
        return tuple(v for v in self.value_types if isinstance(v, LiteralType))

    def non_literal_types(self) -> tuple[ValueType, ...]:
        """All class/shape alternatives in ``T_p``."""
        return tuple(v for v in self.value_types if not v.is_literal())

    def cardinality(self) -> tuple[int, float]:
        """The pair ``C_p = (min, max)``."""
        return (self.min_count, self.max_count)

    def is_mandatory(self) -> bool:
        """True when ``min >= 1``."""
        return self.min_count >= 1

    def is_functional(self) -> bool:
        """True when ``max <= 1`` (at most one value)."""
        return self.max_count != UNBOUNDED and self.max_count <= 1


@dataclass
class NodeShape:
    """A node shape ``<s, tau_s, Phi_s>`` (Definition 2.2).

    Args:
        name: the shape IRI ``s``.
        target_class: ``tau_s`` when it denotes a class (``sh:targetClass``).
        extends: parent node shapes referenced through ``sh:node``
            (inheritance: this shape also enforces the parents' constraints).
        property_shapes: the set ``Phi_s``.
    """

    name: str
    target_class: str | None = None
    extends: tuple[str, ...] = ()
    property_shapes: list[PropertyShape] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.target_class is None and not self.extends:
            raise ShapeError(f"node shape {self.name} has neither target class nor parent")

    def property_shape_for(self, path: str) -> PropertyShape | None:
        """The *locally declared* property shape for ``path``, if any."""
        for phi in self.property_shapes:
            if phi.path == path:
                return phi
        return None

    def __repr__(self) -> str:
        return (
            f"NodeShape({self.name!r}, target={self.target_class!r}, "
            f"extends={list(self.extends)}, |Phi|={len(self.property_shapes)})"
        )


class ShapeSchema:
    """The shape schema ``S_G``: a named collection of node shapes.

    Provides the inheritance-aware views the transformation and the
    validator need: effective property shapes (local plus inherited) and
    the shape targeting a given class.
    """

    def __init__(self, shapes: Iterable[NodeShape] = ()):
        self._shapes: dict[str, NodeShape] = {}
        for shape in shapes:
            self.add(shape)

    def add(self, shape: NodeShape) -> None:
        """Insert or replace a node shape (keyed by its name)."""
        self._shapes[shape.name] = shape

    def __len__(self) -> int:
        return len(self._shapes)

    def __iter__(self) -> Iterator[NodeShape]:
        return iter(self._shapes.values())

    def __contains__(self, name: str) -> bool:
        return name in self._shapes

    def get(self, name: str) -> NodeShape | None:
        """The shape named ``name``, or None."""
        return self._shapes.get(name)

    def __getitem__(self, name: str) -> NodeShape:
        try:
            return self._shapes[name]
        except KeyError:
            raise ShapeError(f"unknown node shape {name!r}") from None

    def names(self) -> list[str]:
        """All shape names, in insertion order."""
        return list(self._shapes)

    def shape_for_class(self, cls: str) -> NodeShape | None:
        """The node shape whose ``sh:targetClass`` is ``cls``, if any."""
        for shape in self._shapes.values():
            if shape.target_class == cls:
                return shape
        return None

    def target_classes(self) -> dict[str, str]:
        """Mapping class IRI -> shape name for all targeted classes."""
        return {
            s.target_class: s.name
            for s in self._shapes.values()
            if s.target_class is not None
        }

    def ancestors(self, name: str) -> list[str]:
        """Parent shapes of ``name`` in depth-first order (transitively).

        Raises:
            ShapeError: on an inheritance cycle or a missing parent.
        """
        result: list[str] = []
        seen: set[str] = {name}
        stack = list(self[name].extends)
        while stack:
            parent = stack.pop(0)
            if parent in seen:
                raise ShapeError(f"inheritance cycle involving {parent!r}")
            if parent not in self._shapes:
                raise ShapeError(f"shape {name!r} extends unknown shape {parent!r}")
            seen.add(parent)
            result.append(parent)
            stack.extend(self[parent].extends)
        return result

    def effective_property_shapes(self, name: str) -> list[PropertyShape]:
        """Local property shapes plus all inherited ones.

        A locally declared shape for a path overrides an inherited shape
        for the same path (standard refinement semantics).
        """
        shape = self[name]
        result: list[PropertyShape] = list(shape.property_shapes)
        covered = {phi.path for phi in result}
        for parent in self.ancestors(name):
            for phi in self[parent].property_shapes:
                if phi.path not in covered:
                    result.append(phi)
                    covered.add(phi.path)
        return result

    def all_property_shapes(self) -> list[tuple[NodeShape, PropertyShape]]:
        """Every locally declared (node shape, property shape) pair."""
        return [
            (shape, phi)
            for shape in self._shapes.values()
            for phi in shape.property_shapes
        ]

    def validate_references(self) -> None:
        """Check that every NodeShapeRef / extends points to a known shape.

        Raises:
            ShapeError: listing the first dangling reference found.
        """
        for shape in self._shapes.values():
            for parent in shape.extends:
                if parent not in self._shapes:
                    raise ShapeError(
                        f"shape {shape.name!r} extends unknown shape {parent!r}"
                    )
            for phi in shape.property_shapes:
                for vt in phi.value_types:
                    if isinstance(vt, NodeShapeRef) and vt.shape not in self._shapes:
                        raise ShapeError(
                            f"property {phi.path!r} of {shape.name!r} references "
                            f"unknown shape {vt.shape!r}"
                        )

    def __repr__(self) -> str:
        return f"<ShapeSchema with {len(self._shapes)} node shapes>"


def string_shape(path: str, min_count: int = 1, max_count: float = 1) -> PropertyShape:
    """Convenience: a single-type ``xsd:string`` property shape."""
    return PropertyShape(
        path=path,
        value_types=(LiteralType(XSD.string),),
        min_count=min_count,
        max_count=max_count,
    )
