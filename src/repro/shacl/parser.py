"""Parse SHACL documents (RDF graphs) into the :class:`ShapeSchema` model.

Handles the SHACL core constructs of the paper's Figure 4: ``sh:NodeShape``
declarations with ``sh:targetClass``, shape inheritance via a top-level
``sh:node``, and property shapes with ``sh:path``, ``sh:nodeKind``,
``sh:datatype``, ``sh:class``, nested ``sh:node`` references,
``sh:minCount`` / ``sh:maxCount``, and ``sh:or`` lists of node-kind
alternatives.
"""

from __future__ import annotations

from ..errors import ShapeError
from ..namespaces import RDF_TYPE, SH, XSD
from ..rdf.graph import Graph
from ..rdf.terms import IRI, BlankNode, Literal, Object, Subject
from ..rdf.turtle import parse_turtle, rdf_list_items
from .model import (
    UNBOUNDED,
    ClassType,
    LiteralType,
    NodeShape,
    NodeShapeRef,
    PropertyShape,
    ShapeSchema,
    ValueType,
)

_SH_NODE_SHAPE = IRI(SH.NodeShape)
_SH_TARGET_CLASS = IRI(SH.targetClass)
_SH_NODE = IRI(SH.node)
_SH_PROPERTY = IRI(SH.property)
_SH_PATH = IRI(SH.path)
_SH_DATATYPE = IRI(SH.datatype)
_SH_CLASS = IRI(SH["class"])
_SH_NODE_KIND_LOWER = IRI(SH.nodeKind)
_SH_NODE_KIND_UPPER = IRI(SH.NodeKind)
_SH_MIN_COUNT = IRI(SH.minCount)
_SH_MAX_COUNT = IRI(SH.maxCount)
_SH_OR = IRI(SH["or"])
_SH_LITERAL = IRI(SH.Literal)
_SH_IRI_KIND = IRI(SH.IRI)
_TYPE = IRI(RDF_TYPE)


def parse_shacl_graph(graph: Graph) -> ShapeSchema:
    """Extract the shape schema from an RDF graph of SHACL declarations.

    Raises:
        ShapeError: when a shape is structurally invalid (e.g. a property
            shape without ``sh:path``).
    """
    schema = ShapeSchema()
    shape_subjects = sorted(
        (s for s in graph.subjects(_TYPE, _SH_NODE_SHAPE) if isinstance(s, IRI)),
        key=lambda s: s.value,
    )
    for subject in shape_subjects:
        schema.add(_parse_node_shape(graph, subject, set(shape_subjects)))
    return schema


def parse_shacl(text: str) -> ShapeSchema:
    """Parse a Turtle SHACL document into a :class:`ShapeSchema`."""
    from .. import obs

    with obs.span("shacl.parse") as span:
        schema = parse_shacl_graph(parse_turtle(text))
        span.set("shapes", len(schema))
    obs.get_metrics().counter(
        "repro_parse_shapes_total", help="SHACL node shapes parsed"
    ).inc(len(schema))
    return schema


def _parse_node_shape(graph: Graph, subject: IRI, shape_iris: set[IRI]) -> NodeShape:
    target_class: str | None = None
    tc = graph.value(subject, _SH_TARGET_CLASS)
    if isinstance(tc, IRI):
        target_class = tc.value

    extends: list[str] = []
    for parent in sorted(graph.objects(subject, _SH_NODE), key=lambda o: o.n3()):
        if isinstance(parent, IRI):
            extends.append(parent.value)

    property_shapes: list[PropertyShape] = []
    prop_nodes = sorted(
        graph.objects(subject, _SH_PROPERTY),
        key=lambda o: _property_sort_key(graph, o),
    )
    for prop_node in prop_nodes:
        if not isinstance(prop_node, (IRI, BlankNode)):
            raise ShapeError(f"sh:property of {subject.value} must be a node")
        property_shapes.append(_parse_property_shape(graph, prop_node, subject))

    try:
        return NodeShape(
            name=subject.value,
            target_class=target_class,
            extends=tuple(extends),
            property_shapes=property_shapes,
        )
    except ShapeError as exc:
        raise ShapeError(f"invalid node shape {subject.value}: {exc}") from exc


def _property_sort_key(graph: Graph, node: Object) -> str:
    if isinstance(node, (IRI, BlankNode)):
        path = graph.value(node, _SH_PATH)
        if path is not None:
            return path.n3()
    return node.n3()


def _parse_property_shape(graph: Graph, node: Subject, owner: IRI) -> PropertyShape:
    path = graph.value(node, _SH_PATH)
    if not isinstance(path, IRI):
        raise ShapeError(f"property shape in {owner.value} is missing sh:path")

    min_count = _int_value(graph, node, _SH_MIN_COUNT, default=0)
    max_raw = _int_value(graph, node, _SH_MAX_COUNT, default=None)
    max_count: float = UNBOUNDED if max_raw is None else float(max_raw)

    value_types: list[ValueType] = []
    or_head = graph.value(node, _SH_OR)
    if or_head is not None:
        for alt in rdf_list_items(graph, or_head):
            if not isinstance(alt, (IRI, BlankNode)):
                raise ShapeError(f"sh:or alternative in {owner.value} must be a node")
            value_types.append(_parse_value_type(graph, alt, owner, path))
    else:
        value_types.append(_parse_value_type(graph, node, owner, path))

    try:
        return PropertyShape(
            path=path.value,
            value_types=tuple(value_types),
            min_count=min_count,
            max_count=max_count,
        )
    except ShapeError as exc:
        raise ShapeError(
            f"invalid property shape {path.value} in {owner.value}: {exc}"
        ) from exc


def _parse_value_type(graph: Graph, node: Subject, owner: IRI, path: IRI) -> ValueType:
    datatype = graph.value(node, _SH_DATATYPE)
    cls = graph.value(node, _SH_CLASS)
    shape_ref = graph.value(node, _SH_NODE)
    node_kind = graph.value(node, _SH_NODE_KIND_LOWER) or graph.value(
        node, _SH_NODE_KIND_UPPER
    )

    if isinstance(datatype, IRI):
        return LiteralType(datatype.value)
    if isinstance(cls, IRI):
        return ClassType(cls.value)
    if isinstance(shape_ref, IRI):
        return NodeShapeRef(shape_ref.value)
    if node_kind == _SH_LITERAL:
        # A literal constraint without explicit datatype: default to string.
        return LiteralType(XSD.string)
    if node_kind == _SH_IRI_KIND:
        raise ShapeError(
            f"property shape {path.value} in {owner.value} has sh:nodeKind sh:IRI "
            "but neither sh:class nor sh:node"
        )
    raise ShapeError(
        f"property shape {path.value} in {owner.value} has no recognizable "
        "value-type constraint (sh:datatype / sh:class / sh:node)"
    )


def _int_value(graph: Graph, node: Subject, predicate: IRI, default: int | None) -> int | None:
    value = graph.value(node, predicate)
    if value is None:
        return default
    if isinstance(value, Literal):
        converted = value.to_python()
        if isinstance(converted, int):
            return converted
    raise ShapeError(f"{predicate.value} must be an integer literal, got {value!r}")
