"""SHACL validation reports as RDF (``sh:ValidationReport``).

The W3C SHACL specification defines a results vocabulary so that
validation outcomes are themselves RDF.  This module renders our
:class:`~repro.shacl.validator.ValidationReport` in that vocabulary —
useful for interoperability with standard SHACL tooling — and can read
such a graph back into a report.
"""

from __future__ import annotations

from ..namespaces import RDF_TYPE, SH, XSD
from ..rdf.graph import Graph
from ..rdf.terms import IRI, BlankNode, Literal, Triple
from .validator import ValidationReport, Violation

_TYPE = IRI(RDF_TYPE)
_REPORT = IRI(SH.ValidationReport)
_RESULT_CLASS = IRI(SH.ValidationResult)
_CONFORMS = IRI(SH.conforms)
_RESULT = IRI(SH.result)
_FOCUS = IRI(SH.focusNode)
_PATH = IRI(SH.resultPath)
_MESSAGE = IRI(SH.resultMessage)
_SOURCE_SHAPE = IRI(SH.sourceShape)
_SEVERITY = IRI(SH.resultSeverity)
_VIOLATION = IRI(SH.Violation)


def report_to_graph(report: ValidationReport) -> Graph:
    """Encode a validation report in the SHACL results vocabulary."""
    graph = Graph()
    report_node = BlankNode("report")
    graph.add(Triple(report_node, _TYPE, _REPORT))
    graph.add(Triple(
        report_node, _CONFORMS,
        Literal("true" if report.conforms else "false", XSD.boolean),
    ))
    for index, violation in enumerate(report.violations):
        result_node = BlankNode(f"result{index}")
        graph.add(Triple(report_node, _RESULT, result_node))
        graph.add(Triple(result_node, _TYPE, _RESULT_CLASS))
        graph.add(Triple(result_node, _SEVERITY, _VIOLATION))
        focus = (
            IRI(violation.focus)
            if not violation.focus.startswith("_:")
            else BlankNode(violation.focus[2:])
        )
        graph.add(Triple(result_node, _FOCUS, focus))
        graph.add(Triple(result_node, _SOURCE_SHAPE, IRI(violation.shape)))
        if violation.path is not None:
            graph.add(Triple(result_node, _PATH, IRI(violation.path)))
        graph.add(Triple(result_node, _MESSAGE, Literal(violation.message)))
    return graph


def graph_to_report(graph: Graph) -> ValidationReport:
    """Read a SHACL results graph back into a :class:`ValidationReport`.

    Raises:
        ValueError: when the graph contains no ``sh:ValidationReport``.
    """
    report_node = None
    for subject in graph.subjects(_TYPE, _REPORT):
        report_node = subject
        break
    if report_node is None:
        raise ValueError("graph contains no sh:ValidationReport")
    conforms_term = graph.value(report_node, _CONFORMS)
    conforms = isinstance(conforms_term, Literal) and conforms_term.to_python() is True
    violations: list[Violation] = []
    for result_node in graph.objects(report_node, _RESULT):
        focus = graph.value(result_node, _FOCUS)
        shape = graph.value(result_node, _SOURCE_SHAPE)
        path = graph.value(result_node, _PATH)
        message = graph.value(result_node, _MESSAGE)
        violations.append(Violation(
            focus=str(focus) if focus is not None else "",
            shape=shape.value if isinstance(shape, IRI) else "",
            path=path.value if isinstance(path, IRI) else None,
            message=message.lexical if isinstance(message, Literal) else "",
        ))
    return ValidationReport(
        conforms=conforms,
        violations=violations,
        checked_entities=0,
    )
