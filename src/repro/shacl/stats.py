"""SHACL shape statistics in the layout of Table 3.

For each dataset the paper reports: number of node shapes (NS), number of
property shapes (PS), how many PS are single- vs multi-type, and the
breakdown of PS into the five taxonomy categories — with the multi-type
heterogeneous column combining literals & non-literals.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import PropertyShapeKind, ShapeSchema
from .taxonomy import kind_histogram


@dataclass(frozen=True)
class ShapeStats:
    """One row of Table 3."""

    n_node_shapes: int
    n_property_shapes: int
    n_single_type: int
    n_multi_type: int
    single_literals: int
    single_non_literals: int
    multi_homo_literals: int
    multi_homo_non_literals: int
    multi_hetero: int

    def as_row(self) -> dict[str, int]:
        """The statistics as an ordered dict matching the Table 3 columns."""
        return {
            "# of NS": self.n_node_shapes,
            "# of PS": self.n_property_shapes,
            "# of Single Type PS": self.n_single_type,
            "# of Multi Type PS": self.n_multi_type,
            "Single Type PS (Literals)": self.single_literals,
            "Single Type PS (Non-Literals)": self.single_non_literals,
            "Multi Type Homo PS (Literals)": self.multi_homo_literals,
            "Multi Type Homo PS (Non-Literals)": self.multi_homo_non_literals,
            "Multi Type Hetero PS (L & NL)": self.multi_hetero,
        }


def shape_stats(schema: ShapeSchema) -> ShapeStats:
    """Compute the Table 3 statistics for ``schema``."""
    histogram = kind_histogram(schema)
    single_literals = histogram.get(PropertyShapeKind.SINGLE_LITERAL, 0)
    single_non_literals = histogram.get(PropertyShapeKind.SINGLE_NON_LITERAL, 0)
    multi_homo_literals = histogram.get(PropertyShapeKind.MULTI_HOMO_LITERAL, 0)
    multi_homo_non_literals = histogram.get(PropertyShapeKind.MULTI_HOMO_NON_LITERAL, 0)
    multi_hetero = histogram.get(PropertyShapeKind.MULTI_HETERO, 0)
    n_single = single_literals + single_non_literals
    n_multi = multi_homo_literals + multi_homo_non_literals + multi_hetero
    return ShapeStats(
        n_node_shapes=len(schema),
        n_property_shapes=n_single + n_multi,
        n_single_type=n_single,
        n_multi_type=n_multi,
        single_literals=single_literals,
        single_non_literals=single_non_literals,
        multi_homo_literals=multi_homo_literals,
        multi_homo_non_literals=multi_homo_non_literals,
        multi_hetero=multi_hetero,
    )
