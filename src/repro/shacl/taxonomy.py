"""The Figure 3 taxonomy of node-shape constraints.

Classifies property shapes into the five leaf categories that drive both
the schema transformation rules (Section 4.1) and the query workload
categories of the evaluation (Tables 6 and 7):

* single-type literal
* single-type non-literal
* multi-type homogeneous literal
* multi-type homogeneous non-literal
* multi-type heterogeneous (literal & non-literal)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .model import NodeShape, PropertyShape, PropertyShapeKind, ShapeSchema


@dataclass(frozen=True)
class TaxonomyEntry:
    """One classified property shape."""

    shape_name: str
    path: str
    kind: str
    n_value_types: int
    min_count: int
    max_count: float


def classify_property_shape(phi: PropertyShape) -> str:
    """The Figure 3 category of ``phi`` (see :class:`PropertyShapeKind`)."""
    return phi.kind()


def classify_schema(schema: ShapeSchema) -> list[TaxonomyEntry]:
    """Classify every locally declared property shape in the schema."""
    return [
        TaxonomyEntry(
            shape_name=shape.name,
            path=phi.path,
            kind=phi.kind(),
            n_value_types=len(phi.value_types),
            min_count=phi.min_count,
            max_count=phi.max_count,
        )
        for shape, phi in schema.all_property_shapes()
    ]


def kind_histogram(schema: ShapeSchema) -> Counter[str]:
    """Count property shapes per taxonomy category."""
    return Counter(entry.kind for entry in classify_schema(schema))


def is_single_type(kind: str) -> bool:
    """True for the two single-type leaves of the taxonomy."""
    return kind in (
        PropertyShapeKind.SINGLE_LITERAL,
        PropertyShapeKind.SINGLE_NON_LITERAL,
    )


def is_multi_type(kind: str) -> bool:
    """True for the three multi-type leaves of the taxonomy."""
    return not is_single_type(kind)
