"""SHACL substrate: shape model, parser, serializer, validator, statistics."""

from .model import (
    UNBOUNDED,
    ClassType,
    LiteralType,
    NodeShape,
    NodeShapeRef,
    PropertyShape,
    PropertyShapeKind,
    ShapeSchema,
    ValueType,
    string_shape,
)
from .parser import parse_shacl, parse_shacl_graph
from .report import graph_to_report, report_to_graph
from .serializer import serialize_shacl, shacl_to_graph
from .stats import ShapeStats, shape_stats
from .taxonomy import (
    TaxonomyEntry,
    classify_property_shape,
    classify_schema,
    is_multi_type,
    is_single_type,
    kind_histogram,
)
from .validator import (
    DeltaValidator,
    ShaclValidator,
    ValidationReport,
    Violation,
    validate,
)

__all__ = [
    "UNBOUNDED",
    "ClassType",
    "DeltaValidator",
    "LiteralType",
    "NodeShape",
    "NodeShapeRef",
    "PropertyShape",
    "PropertyShapeKind",
    "ShapeSchema",
    "ShapeStats",
    "ShaclValidator",
    "TaxonomyEntry",
    "ValidationReport",
    "ValueType",
    "Violation",
    "classify_property_shape",
    "graph_to_report",
    "classify_schema",
    "is_multi_type",
    "is_single_type",
    "kind_histogram",
    "parse_shacl",
    "parse_shacl_graph",
    "report_to_graph",
    "serialize_shacl",
    "shacl_to_graph",
    "shape_stats",
    "string_shape",
    "validate",
]
