"""SHACL validation implementing the shape semantics of Definition 2.3.

Given a graph ``G`` and shape schema ``S_G``, every entity ``e`` with
``<e, a, tau_s> ∈ G`` for a node shape ``<s, tau_s, Phi_s>`` is checked
against all property shapes in ``Phi_s`` (including inherited ones):

* literal value-type constraints: every object of ``tau_p`` must be a
  literal of the specified datatype;
* class value-type constraints: every object must be an instance of one of
  the allowed classes (or a subclass), and conform to that class's shape
  when one exists;
* node value-type constraints: every object must conform to the referenced
  shape;
* cardinality: the number of ``<e, tau_p, ·>`` triples must lie in
  ``[min, max]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from collections.abc import Iterable

from .. import obs
from ..namespaces import RDF_TYPE, RDFS
from ..rdf.graph import Graph
from ..rdf.terms import IRI, BlankNode, Literal, Object, Subject, Triple
from .model import (
    ClassType,
    LiteralType,
    NodeShape,
    NodeShapeRef,
    PropertyShape,
    ShapeSchema,
)

_TYPE = IRI(RDF_TYPE)
_SUBCLASS_OF = IRI(RDFS.subClassOf)


@dataclass(frozen=True)
class Violation:
    """A single conformance failure.

    Attributes:
        focus: the entity that fails.
        shape: the node shape being checked.
        path: the property involved, or None for shape-level problems.
        message: human-readable description.
    """

    focus: str
    shape: str
    path: str | None
    message: str

    def __str__(self) -> str:
        where = f" on {self.path}" if self.path else ""
        return f"[{self.shape}] {self.focus}{where}: {self.message}"


@dataclass
class ValidationReport:
    """The outcome of validating a graph against a shape schema."""

    conforms: bool
    violations: list[Violation] = field(default_factory=list)
    checked_entities: int = 0

    def __bool__(self) -> bool:
        return self.conforms


class ShaclValidator:
    """Validates RDF graphs against a :class:`ShapeSchema` (Definition 2.3).

    Args:
        schema: the shape schema ``S_G``.
        max_violations: stop collecting after this many failures
            (validation outcome is still exact; only the report is bounded).
    """

    def __init__(self, schema: ShapeSchema, max_violations: int = 10_000):
        self.schema = schema
        self.max_violations = max_violations
        # Per-validate() observability tallies (cheap plain-int/dict
        # accumulation on the hot path; flushed to obs once per run).
        self._memo_hits = 0
        self._memo_misses = 0
        self._shape_checks: dict[str, int] = {}

    def validate(self, graph: Graph) -> ValidationReport:
        """Validate every targeted entity in ``graph``."""
        self._memo_hits = 0
        self._memo_misses = 0
        self._shape_checks = {}
        with obs.span("shacl.validate", shapes=len(self.schema)) as span:
            report = self._validate(graph)
            span.set("entities", report.checked_entities)
            span.set("violations", len(report.violations))
            span.set("conforms", report.conforms)
            span.set("memo_hits", self._memo_hits)
            span.set("memo_misses", self._memo_misses)
        self._publish_metrics(report)
        return report

    def _validate(self, graph: Graph) -> ValidationReport:
        report = ValidationReport(conforms=True)
        class_to_shape = self.schema.target_classes()
        # Memo of (entity, shape-name) conformance to keep recursive
        # shape-reference checks linear.
        memo: dict[tuple[Subject, str], bool] = {}
        for cls_iri, shape_name in class_to_shape.items():
            for entity in graph.instances_of(IRI(cls_iri)):
                report.checked_entities += 1
                self._check_entity(graph, entity, shape_name, report, memo)
                if len(report.violations) >= self.max_violations:
                    report.conforms = False
                    return report
        return report

    def _publish_metrics(self, report: ValidationReport) -> None:
        metrics = obs.get_metrics()
        metrics.counter(
            "repro_validator_entities_total", help="entities checked"
        ).inc(report.checked_entities)
        metrics.counter(
            "repro_validator_violations_total", help="violations reported"
        ).inc(len(report.violations))
        metrics.counter(
            "repro_validator_memo_hits_total",
            help="memoized (entity, shape) verdict reuses",
        ).inc(self._memo_hits)
        metrics.counter(
            "repro_validator_memo_misses_total",
            help="fresh (entity, shape) checks",
        ).inc(self._memo_misses)
        checks = metrics.counter(
            "repro_validator_checks_total", help="per-shape entity checks"
        )
        for shape_name, count in self._shape_checks.items():
            checks.inc(count, shape=shape_name)

    def conforms(self, graph: Graph) -> bool:
        """Shortcut: True when ``graph ⊨ S_G``."""
        return self.validate(graph).conforms

    def entity_conforms(self, graph: Graph, entity: Subject, shape_name: str) -> bool:
        """Check a single entity against a single shape (``e ⊨_G s``)."""
        report = ValidationReport(conforms=True)
        self._check_entity(graph, entity, shape_name, report, {})
        return report.conforms

    # ------------------------------------------------------------------ #

    def _check_entity(
        self,
        graph: Graph,
        entity: Subject,
        shape_name: str,
        report: ValidationReport,
        memo: dict[tuple[Subject, str], bool],
    ) -> bool:
        key = (entity, shape_name)
        cached = memo.get(key)
        if cached is not None:
            self._memo_hits += 1
            if not cached:
                # The failure was discovered while this entity was checked
                # as a nested shape-ref target, so its violations went to
                # that caller's (discarded) sub-report; the verdict must
                # still reach this report.
                self._record(
                    report,
                    entity,
                    shape_name,
                    None,
                    "entity does not conform (checked as a referenced value)",
                )
            return cached
        self._memo_misses += 1
        self._shape_checks[shape_name] = self._shape_checks.get(shape_name, 0) + 1
        # Optimistically assume conformance to break reference cycles.
        memo[key] = True
        ok = True
        for phi in self.schema.effective_property_shapes(shape_name):
            if not self._check_property(graph, entity, shape_name, phi, report, memo):
                ok = False
        memo[key] = ok
        if not ok:
            report.conforms = False
        return ok

    def _check_property(
        self,
        graph: Graph,
        entity: Subject,
        shape_name: str,
        phi: PropertyShape,
        report: ValidationReport,
        memo: dict[tuple[Subject, str], bool],
    ) -> bool:
        path = IRI(phi.path)
        values = list(graph.objects(entity, path))
        ok = True

        count = len(values)
        if count < phi.min_count or count > phi.max_count:
            ok = False
            self._record(
                report,
                entity,
                shape_name,
                phi.path,
                f"cardinality {count} outside [{phi.min_count}, "
                f"{'*' if phi.max_count == float('inf') else int(phi.max_count)}]",
            )

        for value in values:
            if not self._value_matches_any(graph, value, phi, memo, report):
                ok = False
                self._record(
                    report,
                    entity,
                    shape_name,
                    phi.path,
                    f"value {value.n3()} matches none of "
                    f"{[str(v) for v in phi.value_types]}",
                )
        return ok

    def _value_matches_any(
        self,
        graph: Graph,
        value: Object,
        phi: PropertyShape,
        memo: dict[tuple[Subject, str], bool],
        report: ValidationReport,
    ) -> bool:
        for vt in phi.value_types:
            if isinstance(vt, LiteralType):
                if isinstance(value, Literal) and value.datatype == vt.datatype:
                    return True
            elif isinstance(vt, ClassType):
                if isinstance(value, IRI) and graph.is_instance_of(value, IRI(vt.cls)):
                    nested = self.schema.shape_for_class(vt.cls)
                    if nested is None:
                        return True
                    sub_report = ValidationReport(conforms=True)
                    if self._check_entity(graph, value, nested.name, sub_report, memo):
                        return True
            elif isinstance(vt, NodeShapeRef):
                if isinstance(value, IRI) and vt.shape in self.schema:
                    sub_report = ValidationReport(conforms=True)
                    if self._check_entity(graph, value, vt.shape, sub_report, memo):
                        return True
        return False

    def _record(
        self,
        report: ValidationReport,
        entity: Subject,
        shape_name: str,
        path: str | None,
        message: str,
    ) -> None:
        if len(report.violations) < self.max_violations:
            report.violations.append(
                Violation(
                    focus=str(entity),
                    shape=shape_name,
                    path=path,
                    message=message,
                )
            )
        report.conforms = False


def validate(graph: Graph, schema: ShapeSchema) -> ValidationReport:
    """Validate ``graph`` against ``schema`` (module-level convenience)."""
    return ShaclValidator(schema).validate(graph)


class DeltaValidator:
    """Delta-scoped SHACL revalidation with a standing conformance report.

    Instead of re-running whole-graph validation after every change, the
    validator maintains a per-focus-node verdict table and, given the
    (added, removed) triples of a delta, recomputes only the focus nodes
    the delta can affect:

    * the **subjects** of every delta triple (their own property values
      or type targeting changed), and
    * transitively, every entity that **references** an affected node
      through a property whose shape carries a class or node-shape
      constraint (its conformance inspects the referenced node's types
      or nested conformance).

    The reachability uses only the shape registry's *reference paths*
    (property shapes whose value types carry ``sh:class`` or ``sh:node``
    constraints): those checks validate the referenced node's nested
    conformance, so any change to it — types or literal properties —
    can flip the referrer's verdict.  Deltas on nodes no reference path
    points at never fan out.  A delta that rewrites the
    ``rdfs:subClassOf`` taxonomy invalidates class membership globally
    and falls back to a full rebuild.

    Every focus node is checked with a fresh memo, which makes its
    violation list independent of the order entities are (re)checked —
    the standing report after any delta sequence is therefore *equal* to
    the report a freshly built :class:`DeltaValidator` produces on the
    final graph, and its ``conforms`` flag matches
    :meth:`ShaclValidator.validate`.

    Args:
        schema: the shape schema ``S_G``.
        graph: the RDF graph to track; deltas must already be applied to
            it before :meth:`apply_delta` is called.
        max_violations: per-entity violation cap (see ShaclValidator).
    """

    def __init__(
        self,
        schema: ShapeSchema,
        graph: Graph,
        max_violations: int = 10_000,
    ):
        self.schema = schema
        self.graph = graph
        self._validator = ShaclValidator(schema, max_violations)
        self._targets = schema.target_classes()
        self._reference_paths = self._compute_reference_paths()
        #: Focus entity -> violations of all shapes targeting its types.
        self._entries: dict[Subject, tuple[Violation, ...]] = {}
        #: Focus nodes rechecked by the last apply_delta (or rebuild).
        self.last_rechecked = 0
        #: Cumulative focus-node checks over the validator's lifetime.
        self.total_rechecked = 0
        self.rebuild()

    def _compute_reference_paths(self) -> frozenset[str]:
        paths: set[str] = set()
        for shape in self.schema:
            for phi in self.schema.effective_property_shapes(shape.name):
                if any(not vt.is_literal() for vt in phi.value_types):
                    paths.add(phi.path)
        return frozenset(paths)

    # ------------------------------------------------------------------ #

    def rebuild(self) -> None:
        """Recompute the standing report from scratch (full validation)."""
        self._entries = {}
        checked = 0
        for entity in self._targeted_entities():
            self._entries[entity] = self._check(entity)
            checked += 1
        self.last_rechecked = checked
        self.total_rechecked += checked

    def _targeted_entities(self) -> Iterable[Subject]:
        seen: set[Subject] = set()
        for cls_iri in self._targets:
            for entity in self.graph.instances_of(IRI(cls_iri)):
                if entity not in seen:
                    seen.add(entity)
                    yield entity

    def _shapes_for(self, entity: Subject) -> list[str]:
        shapes = {
            self._targets[t.value]
            for t in self.graph.types_of(entity)
            if isinstance(t, IRI) and t.value in self._targets
        }
        return sorted(shapes)

    def _check(self, entity: Subject) -> tuple[Violation, ...]:
        violations: list[Violation] = []
        for shape_name in self._shapes_for(entity):
            report = ValidationReport(conforms=True)
            self._validator._check_entity(self.graph, entity, shape_name, report, {})
            violations.extend(report.violations)
        return tuple(violations)

    # ------------------------------------------------------------------ #

    def apply_delta(
        self,
        added: Iterable[Triple] = (),
        removed: Iterable[Triple] = (),
    ) -> int:
        """Recheck the focus nodes affected by an already-applied delta.

        Returns the number of focus nodes rechecked.
        """
        added = tuple(added)
        removed = tuple(removed)
        if any(t.p == _SUBCLASS_OF for t in (*added, *removed)):
            # Subclass-axiom changes shift class membership for every
            # ``sh:class`` check; delta scoping is unsound here.
            self.rebuild()
            return self.last_rechecked
        affected = self._affected_entities(added, removed)
        checked = 0
        for entity in affected:
            shapes = self._shapes_for(entity)
            if not shapes:
                self._entries.pop(entity, None)
                continue
            self._entries[entity] = self._check(entity)
            checked += 1
        self.last_rechecked = checked
        self.total_rechecked += checked
        return checked

    def _affected_entities(
        self,
        added: tuple[Triple, ...],
        removed: tuple[Triple, ...],
    ) -> set[Subject]:
        seeds: set[Subject] = {t.s for t in (*added, *removed)}
        affected = set(seeds)
        frontier = list(seeds)
        while frontier:
            node = frontier.pop()
            if not isinstance(node, (IRI, BlankNode)):
                continue
            for path in self._reference_paths:
                for referrer in self.graph.subjects(IRI(path), node):
                    if referrer not in affected:
                        affected.add(referrer)
                        frontier.append(referrer)
        return affected

    # ------------------------------------------------------------------ #

    @property
    def focus_count(self) -> int:
        """Focus nodes currently tracked (= a full validation's targets)."""
        return len(self._entries)

    def report(self) -> ValidationReport:
        """The standing conformance report."""
        violations = [
            violation
            for entity in sorted(self._entries, key=str)
            for violation in self._entries[entity]
        ]
        return ValidationReport(
            conforms=not violations,
            violations=violations,
            checked_entities=len(self._entries),
        )

    @property
    def conforms(self) -> bool:
        """True when every tracked focus node conforms."""
        return all(not v for v in self._entries.values())

    def snapshot(self) -> dict[str, list[str]]:
        """Focus node -> sorted violation strings (comparison/persistence)."""
        return {
            str(entity): sorted(str(v) for v in violations)
            for entity, violations in self._entries.items()
        }
