"""Greedy delta-debugging shrinker for failing fuzz cases.

Given a list of items (triples, PG elements, or text lines) and a
predicate that re-runs the failing oracle, :func:`shrink_items` removes
ever-smaller chunks while the failure persists, converging on a local
minimum — in practice a handful of items.  The predicate budget bounds
the work on pathological cases.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from ..pg.model import PropertyGraph
from .generators import FuzzCase

T = TypeVar("T")


def shrink_items(
    items: Sequence[T],
    fails: Callable[[list[T]], bool],
    budget: int = 400,
) -> list[T]:
    """A minimal sublist of ``items`` on which ``fails`` still holds.

    Args:
        items: the elements of the failing case, in order.
        fails: re-runs the oracle; True means "still failing".
        budget: maximum number of predicate invocations.

    The input is assumed failing; if the predicate is flaky and the full
    list no longer fails, it is returned unchanged.
    """
    current = list(items)
    calls = 0

    def check(candidate: list[T]) -> bool:
        nonlocal calls
        if calls >= budget:
            return False
        calls += 1
        return fails(candidate)

    if not check(current):
        return current
    chunk = max(1, len(current) // 2)
    while True:
        removed_any = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if check(candidate):
                current = candidate
                removed_any = True
                # Re-test the same offset: the next chunk slid into it.
            else:
                start += chunk
        if chunk == 1:
            if not removed_any:
                break
        else:
            chunk = max(1, chunk // 2)
        if calls >= budget:
            break
    return current


# --------------------------------------------------------------------- #
# Case-level shrinking: decompose -> shrink -> rebuild
# --------------------------------------------------------------------- #

def case_items(case: FuzzCase) -> list:
    """The shrinkable elements of a case, by kind."""
    if case.kind == "text":
        return (case.text or "").splitlines()
    if case.kind == "pg":
        pg = case.pg
        items: list = [
            ("node", node.id, sorted(node.labels), dict(node.properties))
            for node in pg.nodes.values()
        ]
        items.extend(
            ("edge", edge.src, edge.dst, sorted(edge.labels),
             dict(edge.properties))
            for edge in pg.edges.values()
        )
        return items
    return list(case.triples)


def rebuild_case(case: FuzzCase, items: list) -> FuzzCase:
    """A copy of ``case`` containing only ``items``."""
    if case.kind == "text":
        return FuzzCase(
            kind=case.kind, seed=case.seed,
            text="\n".join(items) + ("\n" if items else ""), note=case.note,
        )
    if case.kind == "pg":
        pg = PropertyGraph()
        for item in items:
            if item[0] == "node":
                _, node_id, labels, properties = item
                pg.add_node(node_id, labels=labels, properties=properties)
        for item in items:
            if item[0] == "edge":
                _, src, dst, labels, properties = item
                if src in pg.nodes and dst in pg.nodes:
                    pg.add_edge(src, dst, labels=labels, properties=properties)
        return FuzzCase(kind=case.kind, seed=case.seed, pg=pg, note=case.note)
    return case.with_triples(items)


def shrink_case(
    case: FuzzCase,
    fails: Callable[[FuzzCase], bool],
    budget: int = 400,
) -> FuzzCase:
    """Shrink a failing case to a (locally) minimal failing case."""
    items = case_items(case)
    minimal = shrink_items(
        items, lambda subset: fails(rebuild_case(case, subset)), budget
    )
    return rebuild_case(case, minimal)
