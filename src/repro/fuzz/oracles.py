"""Executable statements of the paper's universally-quantified claims.

Each oracle takes a generated :class:`~repro.fuzz.generators.FuzzCase`
and returns ``None`` when the property holds or a human-readable failure
message when it does not.  Oracles never raise on a *property* failure;
an exception escaping an oracle is itself treated as a failure by the
runner (a crash is the strongest kind of counterexample).

The registry :data:`ORACLES` maps oracle names to :class:`Oracle`
entries; each entry declares which case kinds it consumes, so the runner
routes cases without the oracles having to re-check applicability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.config import DEFAULT_OPTIONS, MONOTONE_OPTIONS, TransformOptions
from ..core.inverse import pg_to_rdf, pgschema_to_shacl, scalar_to_lexical, \
    shape_schemas_equivalent
from ..core.pipeline import transform
from ..errors import ParseError, TranslationError
from ..namespaces import RDF_TYPE, local_name
from ..pg.csv_io import export_csv, import_csv
from ..pg.model import PropertyGraph
from ..pg.store import PropertyGraphStore
from ..pg.yarspg import export_yarspg, import_yarspg
from ..pgschema.conformance import check_conformance
from ..query.cypher.evaluator import CypherEngine
from ..query.sparql.evaluator import SparqlEngine
from ..query.translate import translate_sparql_to_cypher
from ..rdf.graph import Graph, graphs_equal_modulo_bnodes
from ..rdf.terms import BlankNode, IRI
from ..rdf.ntriples import parse_ntriples, serialize_ntriples
from ..rdf.turtle import parse_turtle, serialize_turtle
from ..shacl.validator import validate as shacl_validate
from .generators import EX, FuzzCase

_BOTH_MODES: tuple[TransformOptions, ...] = (DEFAULT_OPTIONS, MONOTONE_OPTIONS)


def _mode(options: TransformOptions) -> str:
    return "parsimonious" if options.parsimonious else "monotone"


@dataclass(frozen=True)
class OracleContext:
    """Per-case knobs the runner hands to oracles.

    Attributes:
        heavy: run the expensive variants (multi-process workers) for
            this case; the runner sets it on a sampled subset of cases.
    """

    heavy: bool = False


@dataclass(frozen=True)
class Oracle:
    """A named property checker over a subset of case kinds."""

    name: str
    kinds: tuple[str, ...]
    fn: Callable[[FuzzCase, OracleContext], str | None]
    description: str = ""


# --------------------------------------------------------------------- #
# Round-trip identity (Prop. 4.1): M(F_dt(G)) ≅ G and N(S_PG) ≅ S_G
# --------------------------------------------------------------------- #

def roundtrip_rdf(case: FuzzCase, ctx: OracleContext) -> str | None:
    graph = Graph(case.triples)
    for options in _BOTH_MODES:
        result = transform(graph, case.schema, options)
        back = pg_to_rdf(result.graph, result.mapping)
        if not graphs_equal_modulo_bnodes(graph, back):
            return (
                f"M(F_dt(G)) != G in {_mode(options)} mode "
                f"({len(graph)} in, {len(back)} back)"
            )
    return None


def roundtrip_schema(case: FuzzCase, ctx: OracleContext) -> str | None:
    for options in _BOTH_MODES:
        result = transform(Graph(), case.schema, options)
        recovered = pgschema_to_shacl(result.mapping)
        if not shape_schemas_equivalent(recovered, case.schema):
            return f"N(F_st(S)) != S in {_mode(options)} mode"
    return None


# --------------------------------------------------------------------- #
# Validation equivalence (Prop. 4.2): G ⊨ S_G ⇔ F_dt(G) ⊨ S_PG
# --------------------------------------------------------------------- #

def _in_equivalence_fragment(case: FuzzCase) -> bool:
    """Is the case inside the fragment where validation equivalence holds?

    The theorem relates an *open-world* SHACL check (only typed, targeted
    entities are inspected; extra properties are unconstrained) to a
    *closed-world* STRICT conformance check (every node and edge must
    match a type).  The two agree only on graphs that (a) type every
    entity — subjects and entity objects — and (b) use on each entity
    only predicates governed by its types' effective property shapes.
    The generator maintains both invariants; this guard keeps the
    shrinker from escaping them mid-reduction and landing on a
    by-design divergence.
    """
    typed: dict[object, list[str]] = {}
    for t in case.triples:
        if t.p.value == RDF_TYPE and isinstance(t.o, IRI):
            typed.setdefault(t.s, []).append(t.o.value)
    allowed: dict[object, set[str]] = {}
    for entity, classes in typed.items():
        paths: set[str] = set()
        for cls in classes:
            shape = case.schema.shape_for_class(cls)
            if shape is None:
                return False
            paths.update(
                ps.path
                for ps in case.schema.effective_property_shapes(shape.name)
            )
        allowed[entity] = paths
    for t in case.triples:
        if t.s not in typed:
            return False
        if t.p.value == RDF_TYPE:
            continue
        if t.p.value not in allowed[t.s]:
            return False
        if isinstance(t.o, (IRI, BlankNode)) and t.o not in typed:
            return False
    return True


def validation_equivalence(case: FuzzCase, ctx: OracleContext) -> str | None:
    graph = Graph(case.triples)
    if not _in_equivalence_fragment(case):
        return None
    rdf_report = shacl_validate(graph, case.schema)
    if case.kind == "valid" and not rdf_report.conforms:
        return (
            "generator produced a non-conforming 'valid' instance: "
            f"{rdf_report.violations[:2]}"
        )
    for options in _BOTH_MODES:
        result = transform(graph, case.schema, options)
        pg_report = check_conformance(result.graph, result.pg_schema)
        if rdf_report.conforms != pg_report.conforms:
            detail = (
                rdf_report.violations[:2]
                if not rdf_report.conforms
                else pg_report.violations[:2]
            )
            return (
                f"G |= S_G is {rdf_report.conforms} but F_dt(G) |= S_PG is "
                f"{pg_report.conforms} in {_mode(options)} mode "
                f"({case.note or 'no mutation'}; {detail})"
            )
    return None


# --------------------------------------------------------------------- #
# Query preservation (Def. 3.2): SPARQL vs translated Cypher
# --------------------------------------------------------------------- #

_PROLOG = f"PREFIX : <{EX}> "
_MAX_QUERIES = 8


def _workload(case: FuzzCase) -> list[str]:
    queries: list[str] = []
    schema = case.schema
    for shape in schema:
        cls = local_name(shape.target_class)
        queries.append(_PROLOG + f"SELECT ?e WHERE {{ ?e a :{cls} . }}")
        for phi in schema.effective_property_shapes(shape.name)[:2]:
            prop = local_name(phi.path)
            queries.append(
                _PROLOG
                + f"SELECT ?e ?v WHERE {{ ?e a :{cls} ; :{prop} ?v . }}"
            )
            queries.append(
                _PROLOG
                + f"SELECT (COUNT(*) AS ?n) WHERE {{ ?e a :{cls} ; "
                f":{prop} ?v . }}"
            )
    return queries[:_MAX_QUERIES]


def sparql_cypher_differential(case: FuzzCase, ctx: OracleContext) -> str | None:
    graph = Graph(case.triples)
    result = transform(graph, case.schema)
    sparql_engine = SparqlEngine(graph)
    cypher_engine = CypherEngine(PropertyGraphStore(result.graph))
    for sparql in _workload(case):
        try:
            cypher = translate_sparql_to_cypher(sparql, result.mapping)
        except TranslationError:
            continue
        gt = sorted(
            tuple(str(row[key]) for key in sorted(row))
            for row in sparql_engine.query(sparql)
        )
        pg = sorted(
            tuple(scalar_to_lexical(row[key]) for key in sorted(row))
            for row in cypher_engine.query(cypher)
        )
        if gt != pg:
            return (
                f"differential mismatch for {sparql!r}: SPARQL {len(gt)} "
                f"row(s) vs Cypher {len(pg)} row(s); first diff "
                f"{next((a for a in gt if a not in pg), None)!r} vs "
                f"{next((b for b in pg if b not in gt), None)!r}"
            )
    return None


# --------------------------------------------------------------------- #
# Serializer round-trips
# --------------------------------------------------------------------- #

def ntriples_roundtrip(case: FuzzCase, ctx: OracleContext) -> str | None:
    original = set(case.triples)
    text = serialize_ntriples(case.triples, sort=True)
    if set(parse_ntriples(text)) != original:
        return "N-Triples round-trip lost or altered triples"
    # The spec makes the whitespace before the terminator optional; a
    # "tight" document must parse to the same graph.
    tight = "\n".join(
        line[:-2] + "." if line.endswith(" .") else line
        for line in text.splitlines()
    )
    try:
        reparsed = set(parse_ntriples(tight))
    except ParseError as exc:
        return f"tight N-Triples document rejected: {exc}"
    if reparsed != original:
        return "tight N-Triples round-trip lost or altered triples"
    return None


def snapshot_roundtrip(case: FuzzCase, ctx: OracleContext) -> str | None:
    """save → load preserves the graph and its counters, byte-stably."""
    import os
    import tempfile

    from ..storage import load_snapshot, save_snapshot

    graph = Graph(case.triples)
    fd, path = tempfile.mkstemp(suffix=".snap")
    os.close(fd)
    try:
        save_snapshot(graph, path)
        loaded = load_snapshot(path)
        if set(loaded) != set(graph):
            return "snapshot round-trip lost or altered triples"
        for p in graph.predicate_set():
            if loaded.predicate_count(p) != graph.predicate_count(p):
                return f"snapshot changed predicate_count({p})"
            if loaded.predicate_distinct_subjects(p) != (
                graph.predicate_distinct_subjects(p)
            ):
                return f"snapshot changed predicate_distinct_subjects({p})"
        with open(path, "rb") as f:
            first = f.read()
        save_snapshot(loaded, path)
        with open(path, "rb") as f:
            second = f.read()
        if first != second:
            return "snapshot save → load → save is not byte-stable"
    finally:
        os.unlink(path)
    return None


def turtle_roundtrip(case: FuzzCase, ctx: OracleContext) -> str | None:
    original = set(case.triples)
    text = serialize_turtle(Graph(case.triples))
    try:
        reparsed = set(parse_turtle(text))
    except ParseError as exc:
        return f"serialized Turtle does not re-parse: {exc}"
    if reparsed != original:
        return "Turtle round-trip lost or altered triples"
    return None


def _case_graphs(case: FuzzCase) -> list[tuple[str, PropertyGraph]]:
    """The property graphs a serializer oracle checks for this case."""
    if case.pg is not None:
        return [("direct", case.pg)]
    graph = Graph(case.triples)
    return [
        (_mode(options), transform(graph, case.schema, options).graph)
        for options in _BOTH_MODES
    ]


def csv_roundtrip(case: FuzzCase, ctx: OracleContext) -> str | None:
    for tag, pg in _case_graphs(case):
        nodes_csv, edges_csv = export_csv(pg)
        back = import_csv(nodes_csv, edges_csv)
        if not pg.structurally_equal(back):
            return f"CSV round-trip changed the graph ({tag})"
    return None


def _yarspg_serializable(pg: PropertyGraph) -> bool:
    """The YARS-PG subset is line-oriented with raw double-quoted ids."""
    return all(
        '"' not in node.id and "\n" not in node.id
        for node in pg.nodes.values()
    )


def yarspg_roundtrip(case: FuzzCase, ctx: OracleContext) -> str | None:
    for tag, pg in _case_graphs(case):
        if not _yarspg_serializable(pg):
            continue
        back = import_yarspg(export_yarspg(pg))
        if not pg.structurally_equal(back):
            return f"YARS-PG round-trip changed the graph ({tag})"
    return None


# --------------------------------------------------------------------- #
# Parser robustness: malformed input must fail with ParseError only
# --------------------------------------------------------------------- #

def parser_robustness(case: FuzzCase, ctx: OracleContext) -> str | None:
    try:
        parse_ntriples(case.text)
    except ParseError as exc:
        if case.note.startswith("tight"):
            return f"valid tight-terminator document rejected: {exc}"
        return None
    except Exception as exc:  # noqa: BLE001 — the property under test
        return (
            f"parser crashed with {type(exc).__name__}: {exc} "
            f"({case.note})"
        )
    return None


# --------------------------------------------------------------------- #
# Engine equivalence: parallel == serial for workers in {1, 2, 4}
# --------------------------------------------------------------------- #

def parallel_vs_serial(case: FuzzCase, ctx: OracleContext) -> str | None:
    graph = Graph(case.triples)
    workers = (1, 2, 4) if ctx.heavy else (1,)
    for options in _BOTH_MODES:
        serial = transform(graph, case.schema, options).graph.canonical_form()
        for n in workers:
            par = transform(
                graph, case.schema, options, parallel=n
            ).graph.canonical_form()
            if par != serial:
                return (
                    f"parallel engine (workers={n}) diverges from the "
                    f"serial transformation in {_mode(options)} mode"
                )
    return None


# --------------------------------------------------------------------- #
# openCypher undirected-match semantics (query-preservation support)
# --------------------------------------------------------------------- #

def cypher_undirected(case: FuzzCase, ctx: OracleContext) -> str | None:
    result = transform(Graph(case.triples), case.schema)
    pg = result.graph
    engine = CypherEngine(PropertyGraphStore(pg))
    edge_labels = sorted({lab for e in pg.edges.values() for lab in e.labels})
    node_labels = sorted({lab for n in pg.nodes.values() for lab in n.labels})
    for rel_type in edge_labels[:3]:
        for label in node_labels[:3]:
            expected = 0
            for edge in pg.edges.values():
                if rel_type not in edge.labels:
                    continue
                if edge.src == edge.dst:
                    # openCypher yields a self-loop once per undirected
                    # match, not once per traversal direction.
                    expected += int(label in pg.nodes[edge.src].labels)
                else:
                    expected += int(label in pg.nodes[edge.src].labels)
                    expected += int(label in pg.nodes[edge.dst].labels)
            rows = engine.query(
                f"MATCH (a:{label})-[r:{rel_type}]-(b) RETURN count(*) AS n"
            )
            actual = rows[0]["n"] if rows else 0
            if actual != expected:
                return (
                    f"undirected MATCH (a:{label})-[:{rel_type}]-(b) "
                    f"returned {actual} row(s), expected {expected}"
                )
    return None


# --------------------------------------------------------------------- #
# Planner differential: all execution strategies == naive evaluation
# --------------------------------------------------------------------- #

#: The 5-way strategy matrix: planner off, the planner's iterator mode,
#: vectorized batched mode, adaptive (batched + mid-query re-planning),
#: and hash joins forced.  Shared by both engines.
_PLANNER_STRATEGIES: tuple[tuple[str, dict], ...] = (
    ("planner-off", {"planner": False}),
    ("iterator", {}),
    ("batched", {"exec_mode": "batched"}),
    ("adaptive", {"exec_mode": "adaptive"}),
    ("hash-forced", {"force_join": "hash"}),
)

#: Campaign-wide tally of skew seeds whose adaptive run provably
#: re-planned mid-query (``planner.last_replans`` non-empty).  The
#: differential test asserts this is non-zero after a campaign, proving
#: the adaptive arm was exercised through an actual re-plan, not just
#: the no-trigger fast path.
REPLAN_TRIGGERS = 0


def _bag(rows: list[dict], to_text: Callable[[object], str]) -> list[tuple]:
    return sorted(
        tuple(
            (key, None if row[key] is None else to_text(row[key]))
            for key in sorted(row)
        )
        for row in rows
    )


def _skewed_rdf(seed: int):
    """A hub-skewed graph + join query that defeats the static estimates.

    The ``links`` predicate averages ~1.5 objects per subject, but the
    subjects tagged ``"hot"`` are hubs with ``fan`` links each — the
    per-binding fanout estimate of the second join stage is low by more
    than the re-plan threshold, so adaptive execution re-plans
    mid-query.  Deterministic in ``seed``.
    """
    import random

    from ..rdf.graph import Triple
    from ..rdf.terms import Literal

    rng = random.Random(seed ^ 0xADA9)
    hubs = rng.randint(6, 12)
    fan = rng.randint(25, 50)
    cold = rng.randint(300, 500)
    tag, links, name = IRI(EX + "tag"), IRI(EX + "links"), IRI(EX + "name")
    triples = []
    for i in range(hubs):
        s = IRI(EX + f"hub/{i}")
        triples.append(Triple(s, tag, Literal("hot")))
        for j in range(fan):
            triples.append(Triple(s, links, IRI(EX + f"obj/{j}")))
    for i in range(cold):
        triples.append(
            Triple(IRI(EX + f"cold/{i}"), links, IRI(EX + f"obj/{i % 20}"))
        )
    for j in range(fan):
        triples.append(Triple(IRI(EX + f"obj/{j}"), name, Literal(f"n{j}")))
    query = (
        f'SELECT ?s ?o ?n WHERE {{ ?s <{EX}tag> "hot" . '
        f"?s <{EX}links> ?o . ?o <{EX}name> ?n . }}"
    )
    return Graph(triples), query


def _skewed_pg(seed: int):
    """A hub-skewed property graph + multi-path MATCH (see _skewed_rdf)."""
    import random

    rng = random.Random(seed ^ 0xADAB)
    starts = rng.randint(4, 8)
    fan = rng.randint(40, 80)
    mids = rng.randint(100, 200)
    cold = rng.randint(300, 600)
    pg = PropertyGraph()
    for i in range(starts):
        pg.add_node(f"s{i}", {"Start"}, {"k": i})
    for i in range(mids):
        pg.add_node(f"m{i}", {"Mid"}, {"k": i})
    for i in range(40):
        pg.add_node(f"t{i}", {"Tail"}, {"k": i})
    for i in range(starts):
        for j in range(fan):
            pg.add_edge(f"s{i}", f"m{(i * 37 + j) % mids}", {"HOT"})
    for i in range(cold):
        pg.add_node(f"c{i}", {"Cold"}, {})
        pg.add_edge(f"c{i}", f"m{i % mids}", {"HOT"})
    for i in range(mids):
        pg.add_edge(f"m{i}", f"t{i % 40}", {"LINK"})
    query = (
        "MATCH (a:Start)-[:HOT]->(b), (b)-[:LINK]->(c:Tail) "
        "RETURN a.k, b.k, c.k"
    )
    return pg, query


def _skew_differential(case: FuzzCase) -> str | None:
    """Adaptive re-planning stays bag-equal on deliberately skewed data."""
    global REPLAN_TRIGGERS
    graph, sparql = _skewed_rdf(case.seed)
    reference = _bag(SparqlEngine(graph).query(sparql), str)
    for tag, kwargs in (("batched", {"exec_mode": "batched"}),
                        ("adaptive", {"exec_mode": "adaptive"})):
        engine = SparqlEngine(graph, **kwargs)
        rows = _bag(engine.query(sparql), str)
        if rows != reference:
            return (
                f"SPARQL {tag} diverges on the skewed catalog for seed "
                f"{case.seed}: {len(rows)} vs {len(reference)} row(s)"
            )
        if tag == "adaptive" and engine.planner.last_replans:
            REPLAN_TRIGGERS += 1
    pg, cypher = _skewed_pg(case.seed)
    store = PropertyGraphStore(pg)
    reference = _bag(CypherEngine(store).query(cypher), scalar_to_lexical)
    for tag, kwargs in (("batched", {"exec_mode": "batched"}),
                        ("adaptive", {"exec_mode": "adaptive"})):
        engine = CypherEngine(store, **kwargs)
        rows = _bag(engine.query(cypher), scalar_to_lexical)
        if rows != reference:
            return (
                f"Cypher {tag} diverges on the skewed catalog for seed "
                f"{case.seed}: {len(rows)} vs {len(reference)} row(s)"
            )
        if tag == "adaptive" and engine.planner.last_replans:
            REPLAN_TRIGGERS += 1
    return None


def planner_differential(case: FuzzCase, ctx: OracleContext) -> str | None:
    """Every execution strategy is result-identical to naive evaluation.

    Runs the case's query workload through both engines under the
    5-way strategy matrix — planner off, iterator, batched, adaptive,
    hash joins forced — and requires bag-equal results.  The workload
    is LIMIT-free by construction: LIMIT without ORDER BY may truncate
    any subset of the answers, so differing-but-correct plans could
    legitimately disagree.  A deterministic hub-skewed sibling dataset
    derived from the case seed additionally forces the adaptive mode
    through actual mid-query re-plans (tallied in REPLAN_TRIGGERS).
    """
    graph = Graph(case.triples)
    workload = _workload(case)
    sparql_engines = [
        (tag, SparqlEngine(graph, **kwargs))
        for tag, kwargs in _PLANNER_STRATEGIES
    ]
    for sparql in workload:
        baseline: tuple[str, list[tuple]] | None = None
        for tag, engine in sparql_engines:
            rows = _bag(engine.query(sparql), str)
            if baseline is None:
                baseline = (tag, rows)
            elif rows != baseline[1]:
                return (
                    f"SPARQL {tag} diverges from {baseline[0]} for "
                    f"{sparql!r}: {len(rows)} vs {len(baseline[1])} row(s)"
                )
    for options in _BOTH_MODES:
        result = transform(graph, case.schema, options)
        store = PropertyGraphStore(result.graph)
        cypher_engines = [
            (tag, CypherEngine(store, **kwargs))
            for tag, kwargs in _PLANNER_STRATEGIES
        ]
        for sparql in workload:
            try:
                cypher = translate_sparql_to_cypher(sparql, result.mapping)
            except TranslationError:
                continue
            baseline = None
            for tag, engine in cypher_engines:
                rows = _bag(engine.query(cypher), scalar_to_lexical)
                if baseline is None:
                    baseline = (tag, rows)
                elif rows != baseline[1]:
                    return (
                        f"Cypher {tag} diverges from {baseline[0]} in "
                        f"{_mode(options)} mode for {cypher!r}: "
                        f"{len(rows)} vs {len(baseline[1])} row(s)"
                    )
    return _skew_differential(case)


# --------------------------------------------------------------------- #
# CDC pipeline equivalence (Prop. 4.3 lifted to the service layer)
# --------------------------------------------------------------------- #

def _cdc_history(case: FuzzCase) -> tuple[list, list, set]:
    """A random delta history derived from the case.

    Returns ``(base_triples, deltas, final_triples)``: the stream starts
    from a transform of ``base_triples`` and must land on the transform
    of ``final_triples``.  The history deliberately includes re-adds of
    removed triples, duplicate adds, and removes of absent triples — the
    pipeline has to reduce every delta to its effective part.
    """
    import random

    from ..cdc import Delta

    pool = list(dict.fromkeys(case.triples))
    rng = random.Random(case.seed ^ 0x5CDC)
    rng.shuffle(pool)
    base = pool[: len(pool) // 2]
    pending = pool[len(pool) // 2:]
    current = set(base)
    removed_pool: list = []
    deltas: list = []
    for seq in range(1, rng.randint(4, 9)):
        added: list = []
        removed: list = []
        for _ in range(rng.randint(1, 4)):
            roll = rng.random()
            if roll < 0.45 and pending:
                added.append(pending.pop())
            elif roll < 0.60 and removed_pool:
                added.append(removed_pool.pop(rng.randrange(len(removed_pool))))
            elif roll < 0.85 and current:
                victim = rng.choice(sorted(current, key=str))
                if victim not in added:
                    removed.append(victim)
            elif roll < 0.95 and current:
                # Duplicate add of a triple that is already present.
                duplicate = rng.choice(sorted(current, key=str))
                if duplicate not in removed:
                    added.append(duplicate)
            elif removed_pool:
                # Remove of a triple that is already absent.
                absent = rng.choice(removed_pool)
                if absent not in added:
                    removed.append(absent)
        for t in removed:
            if t in current:
                current.discard(t)
                removed_pool.append(t)
        for t in added:
            current.add(t)
        if added or removed:
            deltas.append(
                Delta(seq=seq, added=tuple(added), removed=tuple(removed))
            )
    return base, deltas, current


def cdc_equivalence(case: FuzzCase, ctx: OracleContext) -> str | None:
    """Streaming a delta history through the CDC pipeline is equivalent
    to transforming the final graph from scratch, with the store
    catalogs and the standing SHACL report maintained exactly."""
    from ..cdc import CDCConfig, CDCPipeline, replay_deltas
    from ..shacl.validator import DeltaValidator

    base, deltas, final = _cdc_history(case)
    if not deltas:
        return None
    for options in _BOTH_MODES:
        graph = Graph(base)
        result = transform(graph, case.schema, options)
        store = PropertyGraphStore(result.graph)
        version_before = store.version
        validator = (
            DeltaValidator(case.schema, graph)
            if options is DEFAULT_OPTIONS
            else None
        )
        pipeline = CDCPipeline(
            result.transformed,
            graph,
            store=store,
            validator=validator,
            config=CDCConfig(max_linger_s=0.0),
        )
        stats = replay_deltas(pipeline, deltas)
        if set(graph) != final:
            return (
                f"tracked source graph diverged from the delta history in "
                f"{_mode(options)} mode"
            )
        scratch = transform(Graph(final), case.schema, options).graph
        if not store.graph.structurally_equal(scratch):
            return (
                f"pipelined PG != from-scratch F_dt(final) in "
                f"{_mode(options)} mode after {len(deltas)} delta(s) "
                f"({store.graph.node_count()} vs {scratch.node_count()} "
                f"nodes, {store.graph.edge_count()} vs "
                f"{scratch.edge_count()} edges)"
            )
        discrepancies = store.catalog_discrepancies()
        if discrepancies:
            return (
                f"store catalogs stale after streaming in {_mode(options)} "
                f"mode: {'; '.join(discrepancies)}"
            )
        if (stats.triples_added or stats.triples_removed) and (
            store.version == version_before
        ):
            return (
                f"store version did not advance over {stats.triples_added}"
                f"+{stats.triples_removed} effective triple(s) in "
                f"{_mode(options)} mode"
            )
        if validator is not None:
            fresh = DeltaValidator(case.schema, graph)
            if validator.snapshot() != fresh.snapshot():
                return (
                    "standing DeltaValidator report diverges from a full "
                    f"revalidation after {len(deltas)} delta(s)"
                )
            full = shacl_validate(graph, case.schema)
            if validator.conforms != full.conforms:
                return (
                    f"standing conforms={validator.conforms} but full "
                    f"revalidation says {full.conforms}"
                )
    return None


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

_RDF_KINDS = ("valid", "mutated", "noise")

ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        Oracle(
            "roundtrip_rdf", _RDF_KINDS, roundtrip_rdf,
            "M(F_dt(G)) ≅ G in both modes (information preservation)",
        ),
        Oracle(
            "roundtrip_schema", ("valid",), roundtrip_schema,
            "N(F_st(S)) ≅ S in both modes",
        ),
        Oracle(
            "validation_equivalence", ("valid", "mutated"),
            validation_equivalence,
            "G ⊨ S_G ⇔ F_dt(G) ⊨ S_PG (semantics preservation)",
        ),
        # Query preservation (Def. 3.2) presupposes G ⊨ S_G: on violating
        # instances the translated access paths legitimately miss data
        # (e.g. a retyped value lives on the fallback edge, not the key),
        # so the differential runs on conforming cases only.
        Oracle(
            "sparql_cypher_differential", ("valid",),
            sparql_cypher_differential,
            "translated Cypher returns the SPARQL answers (query preservation)",
        ),
        # Like the SPARQL/Cypher differential, the planner differential
        # runs on conforming instances: the queries themselves only need
        # translatability, but keeping the kinds aligned makes the two
        # oracles directly comparable per case.
        Oracle(
            "planner_differential", ("valid", "noise"),
            planner_differential,
            "every execution strategy returns the naive evaluators' "
            "answers (both engines, 5-way exec-mode/join matrix, "
            "incl. skew-forced adaptive re-plans)",
        ),
        Oracle(
            "ntriples_roundtrip", _RDF_KINDS, ntriples_roundtrip,
            "parse(serialize(G)) = G for N-Triples, incl. tight terminators",
        ),
        Oracle(
            "turtle_roundtrip", _RDF_KINDS, turtle_roundtrip,
            "parse(serialize(G)) = G for Turtle",
        ),
        Oracle(
            "snapshot_roundtrip", _RDF_KINDS, snapshot_roundtrip,
            "load(save(G)) = G with exact counters, byte-stable resave",
        ),
        Oracle(
            "csv_roundtrip", ("valid", "noise", "pg"), csv_roundtrip,
            "import_csv(export_csv(PG)) structurally equals PG",
        ),
        Oracle(
            "yarspg_roundtrip", ("valid", "noise", "pg"), yarspg_roundtrip,
            "import_yarspg(export_yarspg(PG)) structurally equals PG",
        ),
        Oracle(
            "parser_robustness", ("text",), parser_robustness,
            "malformed N-Triples fail with ParseError, never crash",
        ),
        Oracle(
            "parallel_vs_serial", ("valid", "noise"), parallel_vs_serial,
            "sharded engine output is isomorphic to the serial output",
        ),
        Oracle(
            "cypher_undirected", ("valid", "noise"), cypher_undirected,
            "undirected MATCH row counts follow openCypher semantics",
        ),
        Oracle(
            "cdc_equivalence", _RDF_KINDS, cdc_equivalence,
            "streamed deltas land on the from-scratch transform, with "
            "store catalogs and the standing SHACL report exact",
        ),
    )
}
