"""The fuzzing loop: generate -> check -> shrink -> persist.

:func:`run_fuzz` drives a deterministic seeded campaign over all (or a
subset of) oracles, shrinks every failure with the delta-debugging
shrinker, and writes a JSON reproducer per failure into the corpus
directory.  :func:`replay_corpus` re-runs every stored reproducer —
the regression gate that keeps previously-found bugs fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..pg.model import PropertyGraph
from ..rdf.ntriples import parse_ntriples, serialize_ntriples
from ..shacl.parser import parse_shacl
from ..shacl.serializer import serialize_shacl
from .generators import FuzzCase, generate_case
from .oracles import ORACLES, Oracle, OracleContext
from .shrinker import shrink_case

#: How often (in cases) the expensive multi-process engine check runs.
DEFAULT_PARALLEL_EVERY = 50


@dataclass
class OracleFailure:
    """One property violation found during a campaign."""

    oracle: str
    case_index: int
    seed: int
    kind: str
    message: str
    shrunk_size: int | None = None
    reproducer: str | None = None

    def __str__(self) -> str:
        where = f" -> {self.reproducer}" if self.reproducer else ""
        size = (
            f" (shrunk to {self.shrunk_size} element(s))"
            if self.shrunk_size is not None
            else ""
        )
        return (
            f"[{self.oracle}] case {self.case_index} (seed {self.seed}, "
            f"{self.kind}): {self.message}{size}{where}"
        )


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    seed: int
    cases: int
    checks: int = 0
    oracle_runs: dict[str, int] = field(default_factory=dict)
    failures: list[OracleFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _run_oracle(oracle: Oracle, case: FuzzCase, ctx: OracleContext) -> str | None:
    """Run one oracle; any escaping exception is a failure message."""
    try:
        return oracle.fn(case, ctx)
    except Exception as exc:  # noqa: BLE001 — crashes are counterexamples
        return f"oracle raised {type(exc).__name__}: {exc}"


def run_fuzz(
    seed: int = 0,
    cases: int = 100,
    oracle_names: list[str] | None = None,
    corpus_dir: str | Path | None = None,
    parallel_every: int = DEFAULT_PARALLEL_EVERY,
    shrink_budget: int = 300,
    max_failures: int = 10,
) -> FuzzReport:
    """Run a deterministic fuzzing campaign.

    Args:
        seed: base seed; the same (seed, cases) pair replays identically.
        cases: number of generated cases.
        oracle_names: subset of :data:`ORACLES` to run (default: all).
        corpus_dir: where shrunk reproducers are written (skipped when
            None).
        parallel_every: run the multi-worker engine comparison on every
            N-th case (it forks process pools, the only expensive check).
        shrink_budget: oracle re-runs allowed per shrink.
        max_failures: stop the campaign after this many failures.
    """
    selected = _select_oracles(oracle_names)
    report = FuzzReport(seed=seed, cases=cases)
    for index in range(cases):
        case = generate_case(seed, index)
        ctx = OracleContext(heavy=parallel_every > 0 and index % parallel_every == 0)
        for oracle in selected:
            if case.kind not in oracle.kinds:
                continue
            report.checks += 1
            report.oracle_runs[oracle.name] = (
                report.oracle_runs.get(oracle.name, 0) + 1
            )
            message = _run_oracle(oracle, case, ctx)
            if message is None:
                continue
            failure = _handle_failure(
                oracle, case, ctx, index, message, corpus_dir, shrink_budget
            )
            report.failures.append(failure)
            if len(report.failures) >= max_failures:
                return report
    return report


def _select_oracles(oracle_names: list[str] | None) -> list[Oracle]:
    if oracle_names is None:
        return list(ORACLES.values())
    unknown = [name for name in oracle_names if name not in ORACLES]
    if unknown:
        raise ValueError(
            f"unknown oracle(s) {unknown}; available: {sorted(ORACLES)}"
        )
    return [ORACLES[name] for name in oracle_names]


def _handle_failure(
    oracle: Oracle,
    case: FuzzCase,
    ctx: OracleContext,
    index: int,
    message: str,
    corpus_dir: str | Path | None,
    shrink_budget: int,
) -> OracleFailure:
    shrunk = shrink_case(
        case,
        lambda candidate: _run_oracle(oracle, candidate, ctx) is not None,
        budget=shrink_budget,
    )
    final_message = _run_oracle(oracle, shrunk, ctx) or message
    failure = OracleFailure(
        oracle=oracle.name,
        case_index=index,
        seed=case.seed,
        kind=case.kind,
        message=final_message,
        shrunk_size=_case_size(shrunk),
    )
    if corpus_dir is not None:
        failure.reproducer = str(write_reproducer(shrunk, failure, corpus_dir))
    return failure


def _case_size(case: FuzzCase) -> int:
    if case.kind == "text":
        return len((case.text or "").splitlines())
    if case.kind == "pg":
        return case.pg.node_count() + case.pg.edge_count()
    return len(case.triples)


# --------------------------------------------------------------------- #
# Reproducer corpus
# --------------------------------------------------------------------- #

def write_reproducer(
    case: FuzzCase, failure: OracleFailure, corpus_dir: str | Path
) -> Path:
    """Persist a shrunk failing case as a JSON reproducer file."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    payload: dict = {
        "oracle": failure.oracle,
        "kind": case.kind,
        "seed": case.seed,
        "note": case.note,
        "message": failure.message,
    }
    if case.schema is not None:
        payload["shacl"] = serialize_shacl(case.schema)
    if case.kind in ("valid", "mutated", "noise"):
        payload["ntriples"] = serialize_ntriples(case.triples)
    if case.pg is not None:
        payload["pg"] = {
            "nodes": [
                [node.id, sorted(node.labels), node.properties]
                for node in case.pg.nodes.values()
            ],
            "edges": [
                [edge.src, edge.dst, sorted(edge.labels), edge.properties]
                for edge in case.pg.edges.values()
            ],
        }
    if case.text is not None:
        payload["text"] = case.text
    path = corpus_dir / f"{failure.oracle}-{case.kind}-{case.seed}.json"
    path.write_text(
        json.dumps(payload, indent=2, ensure_ascii=False) + "\n",
        encoding="utf-8",
    )
    return path


def load_reproducer(path: str | Path) -> tuple[FuzzCase, str]:
    """Load a reproducer file; returns ``(case, oracle_name)``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    kind = payload["kind"]
    case = FuzzCase(kind=kind, seed=payload.get("seed", 0),
                    note=payload.get("note", ""))
    if "shacl" in payload:
        case.schema = parse_shacl(payload["shacl"])
    if "ntriples" in payload:
        case.triples = list(parse_ntriples(payload["ntriples"]))
    if "pg" in payload:
        pg = PropertyGraph()
        for node_id, labels, properties in payload["pg"]["nodes"]:
            pg.add_node(node_id, labels=labels, properties=properties)
        for src, dst, labels, properties in payload["pg"]["edges"]:
            pg.add_edge(src, dst, labels=labels, properties=properties)
        case.pg = pg
    if "text" in payload:
        case.text = payload["text"]
    return case, payload["oracle"]


def replay_corpus(
    corpus_dir: str | Path, heavy: bool = False
) -> list[OracleFailure]:
    """Re-run every reproducer in ``corpus_dir``; returns the failures."""
    corpus_dir = Path(corpus_dir)
    failures: list[OracleFailure] = []
    ctx = OracleContext(heavy=heavy)
    for index, path in enumerate(sorted(corpus_dir.glob("*.json"))):
        case, oracle_name = load_reproducer(path)
        oracle = ORACLES[oracle_name]
        message = _run_oracle(oracle, case, ctx)
        if message is not None:
            failures.append(
                OracleFailure(
                    oracle=oracle_name,
                    case_index=index,
                    seed=case.seed,
                    kind=case.kind,
                    message=f"{path.name}: {message}",
                    shrunk_size=_case_size(case),
                    reproducer=str(path),
                )
            )
    return failures
