"""Property-based differential and round-trip fuzzing harness.

Deterministic, seed-driven checking of the paper's universally
quantified guarantees: generators (:mod:`repro.fuzz.generators`) produce
random schemas, instance graphs, property graphs, and adversarial
documents; oracles (:mod:`repro.fuzz.oracles`) assert round-trip
identity, validation equivalence, SPARQL-vs-Cypher differential
agreement, serializer round-trips, engine equivalence, and parser
robustness; the runner (:mod:`repro.fuzz.runner`) shrinks failures with
delta debugging (:mod:`repro.fuzz.shrinker`) and persists reproducers to
a corpus replayed by the test suite.
"""

from .generators import CASE_KINDS, FuzzCase, generate_case
from .oracles import ORACLES, Oracle, OracleContext
from .runner import (
    FuzzReport,
    OracleFailure,
    load_reproducer,
    replay_corpus,
    run_fuzz,
    write_reproducer,
)
from .shrinker import shrink_case, shrink_items

__all__ = [
    "CASE_KINDS",
    "FuzzCase",
    "FuzzReport",
    "ORACLES",
    "Oracle",
    "OracleContext",
    "OracleFailure",
    "generate_case",
    "load_reproducer",
    "replay_corpus",
    "run_fuzz",
    "shrink_case",
    "shrink_items",
    "write_reproducer",
]
