"""Seed-driven random generators for the property-based fuzzing harness.

Everything here is a deterministic function of a :class:`random.Random`
instance, so a (seed, case index) pair always reproduces the same case.
Three families of cases are generated:

* **RDF cases** — a random SHACL shape schema covering every Figure 3
  constraint category plus a random instance graph: *valid* (conforms to
  the schema), *mutated* (one controlled violation injected), or *noisy*
  (off-schema predicates, untyped subjects, blank nodes — exercising the
  fallback rules).
* **Property-graph cases** — a random PG with adversarial property
  values (empty arrays, empty strings, number-looking strings, the CSV
  escape characters) for serializer round-trips.
* **Text cases** — a valid N-Triples document with one syntax-level
  mutation (out-of-range escapes, truncation, garbage) for parser
  robustness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..namespaces import RDF_TYPE, XSD
from ..pg.model import PropertyGraph
from ..rdf.ntriples import serialize_ntriples
from ..rdf.terms import IRI, BlankNode, Literal, Object, Subject, Triple
from ..shacl.model import (
    UNBOUNDED,
    ClassType,
    LiteralType,
    NodeShape,
    NodeShapeRef,
    PropertyShape,
    ShapeSchema,
    ValueType,
)

EX = "http://example.org/"
SHAPES_NS = "http://example.org/shapes#"

_TYPE = IRI(RDF_TYPE)

#: Datatypes the schema generator draws from; all are handled natively
#: by the transformation's value encoding.
DATATYPES = (XSD.string, XSD.integer, XSD.boolean, XSD.date, XSD.gYear)

#: Characters mixed into generated string literals — quotes, escapes,
#: CSV separators, non-ASCII, and the full set of ``str.splitlines``
#: boundaries (U+000B U+000C U+001C U+001D U+001E U+0085 U+2028 U+2029)
#: plus other C0 controls, to stress every serializer's escaping.  Lone
#: surrogates are deliberately absent: serializers replace them with
#: U+FFFD (they are unescapable in N-Triples), which breaks round-trip
#: *equality* without being a bug.
_EVIL_CHARS = (
    '";\\\t|,\'{}<>é世\U0001f600'
    "\x00\x07\x0b\x0c\x1b\x1c\x1d\x1e\x7f\x85\u2028\u2029"
)


@dataclass
class FuzzCase:
    """One generated input for the oracles.

    Exactly one of the three payload groups is populated, according to
    ``kind``:

    * ``"valid"`` / ``"mutated"`` / ``"noise"`` — ``schema`` + ``triples``;
    * ``"pg"`` — ``pg``;
    * ``"text"`` — ``text``.
    """

    kind: str
    seed: int
    schema: ShapeSchema | None = None
    triples: list[Triple] = field(default_factory=list)
    pg: PropertyGraph | None = None
    text: str | None = None
    #: Human-readable note on what was mutated (mutated/text kinds).
    note: str = ""

    def with_triples(self, triples: list[Triple]) -> "FuzzCase":
        """A copy of this case over a reduced triple list (shrinking)."""
        return FuzzCase(
            kind=self.kind,
            seed=self.seed,
            schema=self.schema,
            triples=list(triples),
            pg=self.pg,
            text=self.text,
            note=self.note,
        )


#: The case kinds, in rotation order.
CASE_KINDS = ("valid", "mutated", "noise", "pg", "text")


def generate_case(seed: int, index: int) -> FuzzCase:
    """Generate the ``index``-th case of a fuzzing run with base ``seed``."""
    rng = random.Random(f"{seed}:{index}")
    kind = CASE_KINDS[index % len(CASE_KINDS)]
    case_seed = rng.getrandbits(32)
    rng = random.Random(case_seed)
    if kind == "pg":
        return FuzzCase(kind=kind, seed=case_seed, pg=generate_property_graph(rng))
    if kind == "text":
        text, note = generate_evil_ntriples(rng)
        return FuzzCase(kind=kind, seed=case_seed, text=text, note=note)
    schema = generate_schema(rng)
    triples = generate_instance(rng, schema)
    note = ""
    if kind == "mutated":
        triples, note = mutate_instance(rng, schema, triples)
    elif kind == "noise":
        triples = triples + generate_noise(rng, len(triples))
    return FuzzCase(
        kind=kind, seed=case_seed, schema=schema, triples=triples, note=note
    )


# --------------------------------------------------------------------- #
# Schema generation (Figure 3 taxonomy coverage)
# --------------------------------------------------------------------- #

#: The five Figure 3 property-shape categories.
TAXONOMY = (
    "single_literal",
    "single_non_literal",
    "multi_homo_literal",
    "multi_homo_non_literal",
    "multi_hetero",
)


def generate_schema(rng: random.Random) -> ShapeSchema:
    """A random shape schema: 1-4 shapes, 1-4 property shapes each.

    Every Figure 3 category is reachable; with enough property shapes in
    one schema all five appear (the first five property shapes cycle
    through the taxonomy before sampling freely).
    """
    n_shapes = rng.randint(1, 4)
    classes = [f"{EX}C{i}" for i in range(n_shapes)]
    schema = ShapeSchema()
    predicate_counter = 0
    category_cursor = 0
    for i, cls in enumerate(classes):
        extends: tuple[str, ...] = ()
        if i > 0 and rng.random() < 0.2:
            extends = (f"{SHAPES_NS}Shape{rng.randrange(i)}",)
        property_shapes = []
        for _ in range(rng.randint(1, 4)):
            if category_cursor < len(TAXONOMY):
                category = TAXONOMY[category_cursor]
                category_cursor += 1
            else:
                category = rng.choice(TAXONOMY)
            path = f"{EX}p{predicate_counter}"
            predicate_counter += 1
            property_shapes.append(
                _property_shape(rng, path, category, classes, i)
            )
        schema.add(
            NodeShape(
                name=f"{SHAPES_NS}Shape{i}",
                target_class=cls,
                extends=extends,
                property_shapes=tuple(property_shapes),
            )
        )
    return schema


def _property_shape(
    rng: random.Random,
    path: str,
    category: str,
    classes: list[str],
    owner_index: int,
) -> PropertyShape:
    min_count = rng.choice((0, 0, 1))
    # "single"/"multi" follows Figure 3: the number of *type alternatives*
    # in T_p (sh:or), not the cardinality bound, which is orthogonal.
    if category == "single_literal":
        value_types: tuple[ValueType, ...] = (
            LiteralType(rng.choice(DATATYPES)),
        )
        max_count: float = rng.choice((1, 1, UNBOUNDED, 3))
    elif category == "single_non_literal":
        value_types = (_non_literal(rng, classes),)
        max_count = rng.choice((1, 1, UNBOUNDED))
    elif category == "multi_homo_literal":
        first, second = rng.sample(DATATYPES, 2)
        value_types = (LiteralType(first), LiteralType(second))
        max_count = rng.choice((UNBOUNDED, UNBOUNDED, 3))
    elif category == "multi_homo_non_literal":
        a = _non_literal(rng, classes)
        b = _non_literal(rng, classes)
        while b == a:
            b = _non_literal(rng, classes)
        value_types = (a, b)
        max_count = UNBOUNDED
    else:  # multi_hetero
        value_types = (
            LiteralType(rng.choice(DATATYPES)),
            _non_literal(rng, classes),
        )
        max_count = UNBOUNDED
    return PropertyShape(
        path=path,
        value_types=value_types,
        min_count=min_count,
        max_count=max_count,
    )


def _non_literal(rng: random.Random, classes: list[str]) -> ValueType:
    cls = rng.choice(classes)
    if rng.random() < 0.3:
        index = classes.index(cls)
        return NodeShapeRef(f"{SHAPES_NS}Shape{index}")
    return ClassType(cls)


# --------------------------------------------------------------------- #
# Instance generation
# --------------------------------------------------------------------- #

def generate_instance(rng: random.Random, schema: ShapeSchema) -> list[Triple]:
    """A valid instance graph: every generated entity conforms."""
    entities: dict[str, list[IRI]] = {}
    triples: list[Triple] = []
    shapes = list(schema)
    for shape in shapes:
        cls = shape.target_class
        assert cls is not None
        count = rng.randint(1, 3)
        entities[cls] = [
            IRI(f"{EX}e_{_local(cls)}_{i}") for i in range(count)
        ]
        # A subclass instance also carries its ancestors' type triples
        # (a GradStudent *is a* Student): the node needs every inherited
        # label for the intersection node type it must conform to.
        type_classes = [cls] + [
            schema[parent].target_class
            for parent in schema.ancestors(shape.name)
            if schema[parent].target_class is not None
        ]
        for entity in entities[cls]:
            for type_class in type_classes:
                triples.append(Triple(entity, _TYPE, IRI(type_class)))
    for shape in shapes:
        cls = shape.target_class
        assert cls is not None
        for entity in entities[cls]:
            for phi in schema.effective_property_shapes(shape.name):
                limit = 3 if phi.max_count == UNBOUNDED else int(phi.max_count)
                n_values = rng.randint(phi.min_count, min(limit, 3))
                for _ in range(n_values):
                    value = _value_for(rng, phi, entities, entity)
                    triples.append(Triple(entity, IRI(phi.path), value))
    return triples


def _value_for(
    rng: random.Random,
    phi: PropertyShape,
    entities: dict[str, list[IRI]],
    subject: IRI,
) -> Object:
    vt = rng.choice(phi.value_types)
    if isinstance(vt, LiteralType):
        return _literal_for(rng, vt.datatype)
    if isinstance(vt, ClassType):
        cls = vt.cls
    else:  # NodeShapeRef: Shape{i} targets C{i} by construction.
        cls = f"{EX}C{vt.shape.rsplit('Shape', 1)[1]}"
    pool = entities.get(cls, [])
    if not pool:
        return subject
    # Occasionally point at the subject itself when it qualifies,
    # producing the self-loops the undirected-match oracle needs.
    if subject in pool and rng.random() < 0.3:
        return subject
    return rng.choice(pool)


def _literal_for(rng: random.Random, datatype: str) -> Literal:
    if datatype == XSD.integer:
        # Canonical lexicals only: non-canonical forms ("+7", "-0") are
        # deliberately stored string-typed by the value encoder, which
        # the strict conformance checker reports against typed keys —
        # they are exercised through noise cases instead.
        return Literal(str(rng.randint(-99, 999)), datatype)
    if datatype == XSD.boolean:
        return Literal(rng.choice(("true", "false")), datatype)
    if datatype == XSD.date:
        return Literal(
            f"{rng.randint(1900, 2100):04d}-{rng.randint(1, 12):02d}"
            f"-{rng.randint(1, 28):02d}",
            datatype,
        )
    if datatype == XSD.gYear:
        return Literal(str(rng.randint(1000, 2100)), datatype)
    return Literal(random_string(rng), XSD.string)


def random_string(rng: random.Random, max_len: int = 12) -> str:
    """A short string salted with serializer-hostile characters."""
    alphabet = "abcXYZ 019" + _EVIL_CHARS
    return "".join(
        rng.choice(alphabet) for _ in range(rng.randint(0, max_len))
    )


def _local(iri: str) -> str:
    return iri.rsplit("/", 1)[-1].rsplit("#", 1)[-1]


# --------------------------------------------------------------------- #
# Violation injection (mutated cases)
# --------------------------------------------------------------------- #

def mutate_instance(
    rng: random.Random, schema: ShapeSchema, triples: list[Triple]
) -> tuple[list[Triple], str]:
    """Inject one violation whose effect maps cleanly to both sides.

    Three mutation classes are used because each has a provable PG-side
    counterpart: dropping a mandatory value (missing key / minCount),
    duplicating a single-valued literal (array vs scalar / maxCount), and
    retyping a mandatory single literal (missing key + fallback edge /
    datatype).
    """
    mutations = []
    for shape in schema:
        for phi in schema.effective_property_shapes(shape.name):
            single_literal = (
                phi.max_count == 1
                and len(phi.value_types) == 1
                and isinstance(phi.value_types[0], LiteralType)
            )
            if phi.min_count >= 1:
                mutations.append(("drop", shape, phi))
            if single_literal:
                mutations.append(("dup", shape, phi))
                if phi.min_count >= 1:
                    mutations.append(("retype", shape, phi))
    if not mutations:
        return triples, "no mutation applicable"
    op, shape, phi = rng.choice(mutations)
    path = IRI(phi.path)
    cls = IRI(shape.target_class)
    subjects = sorted(
        {t.s for t in triples if t.p == _TYPE and t.o == cls},
        key=str,
    )
    if not subjects:
        return triples, "no mutation applicable"
    victim = rng.choice(subjects)
    if op == "drop":
        mutated = [
            t for t in triples
            if not (t.s == victim and t.p == path)
        ]
        return mutated, f"drop values of {phi.path} on {victim}"
    existing = [
        t for t in triples if t.s == victim and t.p == path
    ]
    datatype = phi.value_types[0].datatype
    if op == "dup":
        extra = _literal_for(rng, datatype)
        if existing and extra == existing[0].o:
            extra = Literal(extra.lexical + "x", datatype)
        mutated = triples + [Triple(victim, path, extra)]
        if not existing:
            mutated.append(Triple(victim, path, _literal_for(rng, datatype)))
        return mutated, f"duplicate single-valued {phi.path} on {victim}"
    # retype: replace the value with one of a different datatype.
    other = rng.choice([d for d in DATATYPES if d != datatype])
    mutated = [
        t for t in triples
        if not (t.s == victim and t.p == path)
    ]
    mutated.append(Triple(victim, path, _literal_for(rng, other)))
    return mutated, f"retype {phi.path} on {victim} to {other}"


# --------------------------------------------------------------------- #
# Noise (fallback-path coverage)
# --------------------------------------------------------------------- #

def generate_noise(rng: random.Random, offset: int) -> list[Triple]:
    """Off-schema triples: unknown predicates, untyped subjects, blank
    nodes, language tags, exotic datatypes — the ``on_unknown="fallback"``
    territory that information preservation still covers."""
    triples: list[Triple] = []
    for i in range(rng.randint(1, 6)):
        subject: Subject = (
            BlankNode(f"n{offset + i}")
            if rng.random() < 0.3
            else IRI(f"{EX}x{offset + i}")
        )
        predicate = IRI(f"{EX}q{rng.randint(0, 3)}")
        roll = rng.random()
        obj: Object
        if roll < 0.25:
            obj = BlankNode(f"m{rng.randint(0, 4)}")
        elif roll < 0.5:
            obj = IRI(f"{EX}y{rng.randint(0, 4)}")
        elif roll < 0.7:
            obj = Literal(random_string(rng), language=rng.choice(("en", "de")))
        elif roll < 0.8:
            obj = Literal(str(rng.randint(0, 9)), f"{EX}customType")
        elif roll < 0.9:
            # Non-canonical numeric lexicals (kept string-typed in the PG).
            obj = Literal(rng.choice(("+7", "007", "-0")), XSD.integer)
        else:
            obj = Literal(random_string(rng))
        triples.append(Triple(subject, predicate, obj))
    return triples


# --------------------------------------------------------------------- #
# Property-graph generation (serializer stress)
# --------------------------------------------------------------------- #

def generate_property_graph(rng: random.Random) -> PropertyGraph:
    """A random PG whose property values stress the CSV/YARS-PG codecs."""
    pg = PropertyGraph()
    n_nodes = rng.randint(1, 6)
    for i in range(n_nodes):
        labels = sorted({rng.choice("ABC") for _ in range(rng.randint(1, 2))})
        properties = {
            f"k{j}": _nasty_value(rng) for j in range(rng.randint(0, 3))
        }
        pg.add_node(f"n{i}", labels=labels, properties=properties)
    for _ in range(rng.randint(0, n_nodes * 2)):
        src = f"n{rng.randrange(n_nodes)}"
        dst = f"n{rng.randrange(n_nodes)}"
        properties = {
            f"w{j}": _nasty_value(rng) for j in range(rng.randint(0, 2))
        }
        pg.add_edge(src, dst, labels=[rng.choice(("R", "S"))],
                    properties=properties)
    return pg


def _nasty_value(rng: random.Random) -> object:
    roll = rng.random()
    if roll < 0.12:
        return []
    if roll < 0.2:
        return [""]
    if roll < 0.3:
        return ""
    if roll < 0.4:
        return rng.choice(("42", "4.5", "true", "false", "\\e", "\\a", "\\s"))
    if roll < 0.5:
        return rng.randint(-99, 99)
    if roll < 0.6:
        return rng.choice((True, False))
    if roll < 0.7:
        return [random_string(rng) for _ in range(rng.randint(1, 3))]
    if roll < 0.8:
        return [rng.randint(0, 9) for _ in range(rng.randint(1, 3))]
    return random_string(rng)


# --------------------------------------------------------------------- #
# Adversarial N-Triples text (parser robustness)
# --------------------------------------------------------------------- #

#: Escape payloads that must be *rejected with ParseError*, never crash.
_EVIL_ESCAPES = (
    "\\U00110000",   # beyond the Unicode range: chr() raises ValueError
    "\\UFFFFFFFF",
    "\\uD800",       # lone surrogate
    "\\uDFFF",
    "\\u12",         # truncated
    "\\U0001F60",
    "\\uZZZZ",       # non-hex
    "\\q",           # unknown escape
)


def generate_evil_ntriples(rng: random.Random) -> tuple[str, str]:
    """A small N-Triples document with one syntax-level mutation."""
    base = [
        Triple(IRI(f"{EX}s{i}"), IRI(f"{EX}p{i % 2}"),
               Literal(random_string(rng)))
        for i in range(rng.randint(1, 4))
    ]
    lines = serialize_ntriples(base).splitlines()
    mode = rng.random()
    if mode < 0.45:
        payload = rng.choice(_EVIL_ESCAPES)
        line = rng.randrange(len(lines))
        if rng.random() < 0.5:
            lines[line] = (
                f'<{EX}s> <{EX}p> "x{payload}y" .'
            )
            note = f"literal escape {payload!r}"
        else:
            lines[line] = (
                f'<{EX}s{payload}> <{EX}p> "x" .'
            )
            note = f"IRI escape {payload!r}"
    elif mode < 0.7:
        # Truncate a random line mid-term.
        line = rng.randrange(len(lines))
        cut = rng.randint(1, max(1, len(lines[line]) - 1))
        lines[line] = lines[line][:cut]
        note = f"truncated line at {cut}"
    elif mode < 0.85:
        # Tight terminator after a blank node object (valid N-Triples).
        lines.append(f"<{EX}s> <{EX}p> _:b.")
        note = "tight terminator after bnode"
    else:
        # Random printable garbage.
        garbage = "".join(
            rng.choice("<>\"\\_:@^. abc") for _ in range(rng.randint(1, 20))
        )
        lines.append(garbage)
        note = f"garbage line {garbage!r}"
    return "\n".join(lines) + "\n", note
