"""Interned-ID columnar storage substrate.

This package is the physical layer under both graph stores:

* :class:`Interner` / :class:`TermInterner` dictionary-encode strings and
  RDF terms into dense integer ids (:mod:`repro.storage.intern`);
* :class:`IntPostings` keeps each index bucket as a sorted ``array('q')``
  of ids with a small unsorted delta buffer, so membership is a bisect
  and bulk builds are appends (:mod:`repro.storage.postings`);
* :mod:`repro.storage.snapshot` serializes a whole
  :class:`~repro.rdf.graph.Graph` — dictionary, all three permutation
  indexes, and statistics counters — into a versioned binary file that
  loads back via ``mmap`` with zero-copy posting views.

:class:`~repro.rdf.graph.Graph` and
:class:`~repro.pg.store.PropertyGraphStore` build their SPO/POS/OSP and
label/rel-type/incidence indexes on these primitives; their public
interfaces are unchanged.
"""

from .intern import Interner, TermInterner
from .postings import IntPostings
from .snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    load_snapshot,
    save_snapshot,
    snapshot_info,
)

__all__ = [
    "Interner",
    "TermInterner",
    "IntPostings",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "load_snapshot",
    "save_snapshot",
    "snapshot_info",
]
