"""Versioned binary graph snapshots, loaded by ``mmap`` instead of a parse.

A snapshot persists a :class:`~repro.rdf.graph.Graph`'s entire physical
state — the term dictionary, all three permutation indexes, and the
incrementally maintained planner counters — as one little-endian binary
file.  Loading maps the file and wraps each posting run in a zero-copy
``memoryview``; terms and strings materialize lazily on first access, so
opening a snapshot does constant work per index *bucket* rather than per
triple or per character.

Layout (all sections 8-byte aligned, all ids ``int64``)::

    header      magic "RPROSNAP", format version, flags, file size,
                n_terms, n_triples, graph version, CRC-32 of the payload
    strings     count, count+1 offsets, UTF-8 blob
    terms       n_terms kind bytes (0=IRI 1=bnode 2=typed 3=lang literal),
                n_terms × (a, b) string indexes (-1 = unused)
    spo/pos/osp three grouped-postings sections: sorted k1 ids + group
                lengths, sorted k2 ids + posting lengths, concatenated
                sorted posting values
    counters    per-predicate triple counts, per-predicate distinct
                subject counts (sorted id/value pairs)

Writes are canonical (every key sequence sorted), so save → load → save
reproduces the identical byte string.  Every load failure raises
:class:`~repro.errors.SnapshotError`; a bad file never yields a graph.
"""

from __future__ import annotations

import mmap
import os
import struct
import sys
import zlib
from array import array
from itertools import islice

from ..errors import SnapshotError
from .intern import Interner, TermInterner
from .postings import IntPostings

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "save_snapshot",
    "load_snapshot",
    "snapshot_info",
]

SNAPSHOT_MAGIC = b"RPROSNAP"
SNAPSHOT_VERSION = 1

#: magic, format version, flags, file size, n_terms, n_triples,
#: graph version, payload crc32, 4 pad bytes — 56 bytes total.
_HEADER = struct.Struct("<8sIIQQQQI4x")
_FLAG_LITTLE_ENDIAN = 1

_KIND_IRI = 0
_KIND_BNODE = 1
_KIND_TYPED_LITERAL = 2
_KIND_LANG_LITERAL = 3

_LITTLE = sys.byteorder == "little"


# ---------------------------------------------------------------------- #
# Save
# ---------------------------------------------------------------------- #


def _pad8(buf: bytearray) -> None:
    buf.extend(b"\x00" * (-len(buf) % 8))


def _put_u64(buf: bytearray, value: int) -> None:
    buf += struct.pack("<Q", value)


def _put_ints(buf: bytearray, values) -> None:
    arr = values if type(values) is array else array("q", values)
    if not _LITTLE:
        arr = array("q", arr)
        arr.byteswap()
    buf += arr.tobytes()


def _encode_terms(terms: list) -> tuple[Interner, bytearray, array, array]:
    """Decompose every term into (kind, string-index a, string-index b)."""
    from ..rdf.terms import IRI, BlankNode, Literal

    strings = Interner()
    sid = strings.intern
    kinds = bytearray(len(terms))
    a = array("q", bytes(8 * len(terms)))
    b = array("q", bytes(8 * len(terms)))
    for i, term in enumerate(terms):
        cls = type(term)
        if cls is IRI:
            kinds[i] = _KIND_IRI
            a[i] = sid(term.value)
            b[i] = -1
        elif cls is BlankNode:
            kinds[i] = _KIND_BNODE
            a[i] = sid(term.label)
            b[i] = -1
        elif cls is Literal:
            a[i] = sid(term.lexical)
            if term.language is not None:
                kinds[i] = _KIND_LANG_LITERAL
                b[i] = sid(term.language)
            else:
                kinds[i] = _KIND_TYPED_LITERAL
                b[i] = sid(term.datatype)
        else:
            raise SnapshotError(f"cannot snapshot term of type {cls.__name__}")
    return strings, kinds, a, b


def _emit_strings(buf: bytearray, strings: Interner) -> None:
    blob = bytearray()
    offsets = array("q", [0])
    for s in strings:
        blob += s.encode("utf-8")
        offsets.append(len(blob))
    _put_u64(buf, len(strings))
    _put_ints(buf, offsets)
    _put_u64(buf, len(blob))
    buf += blob
    _pad8(buf)


def _emit_index(buf: bytearray, index: dict) -> None:
    """Write one permutation index as grouped, sorted posting runs."""
    k1s = sorted(index)
    glens = array("q", (len(index[k1]) for k1 in k1s))
    k2s = array("q")
    plens = array("q")
    vals = array("q")
    for k1 in k1s:
        group = index[k1]
        for k2 in sorted(group):
            run = group[k2].sorted_array()
            k2s.append(k2)
            plens.append(len(run))
            vals.extend(run)
    _put_u64(buf, len(k1s))
    _put_ints(buf, array("q", k1s))
    _put_ints(buf, glens)
    _put_u64(buf, len(k2s))
    _put_ints(buf, k2s)
    _put_ints(buf, plens)
    _put_u64(buf, len(vals))
    _put_ints(buf, vals)


def _emit_counters(buf: bytearray, counters: dict[int, int]) -> None:
    keys = sorted(counters)
    _put_u64(buf, len(keys))
    _put_ints(buf, array("q", keys))
    _put_ints(buf, array("q", (counters[k] for k in keys)))


def save_snapshot(graph, path) -> int:
    """Write ``graph`` to ``path`` as a binary snapshot; return byte size.

    The write is atomic: the snapshot is assembled in a sibling temp file
    and renamed over ``path``.
    """
    storage = graph._storage()
    interner, spo, pos, osp, p_count, p_subjects = storage

    payload = bytearray()
    interner._ensure_ids()
    strings, kinds, a, b = _encode_terms(interner._terms)
    _emit_strings(payload, strings)
    payload += kinds
    _pad8(payload)
    _put_ints(payload, a)
    _put_ints(payload, b)
    for index in (spo, pos, osp):
        _emit_index(payload, index)
    _emit_counters(payload, p_count)
    _emit_counters(payload, p_subjects)

    header = _HEADER.pack(
        SNAPSHOT_MAGIC,
        SNAPSHOT_VERSION,
        _FLAG_LITTLE_ENDIAN,
        _HEADER.size + len(payload),
        len(interner),
        len(graph),
        graph.version,
        zlib.crc32(bytes(payload)),
    )
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as f:
            f.write(header)
            f.write(payload)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return _HEADER.size + len(payload)


# ---------------------------------------------------------------------- #
# Load
# ---------------------------------------------------------------------- #


class _Reader:
    """Bounds-checked cursor over the mapped payload."""

    __slots__ = ("mv", "pos", "end")

    def __init__(self, mv, pos: int, end: int):
        self.mv = mv
        self.pos = pos
        self.end = end

    def _take(self, nbytes: int) -> int:
        start = self.pos
        if start + nbytes > self.end:
            raise SnapshotError("snapshot is truncated: section extends past end of file")
        self.pos = start + nbytes
        return start

    def u64(self) -> int:
        start = self._take(8)
        return struct.unpack_from("<Q", self.mv, start)[0]

    def int_view(self, count: int):
        """A zero-copy ``memoryview('q')`` of ``count`` int64s (array copy
        with byteswap on big-endian hosts)."""
        start = self._take(8 * count)
        view = self.mv[start : start + 8 * count]
        if _LITTLE:
            return view.cast("q")
        arr = array("q", view.tobytes())
        arr.byteswap()
        return arr

    def raw(self, nbytes: int):
        start = self._take(nbytes)
        return self.mv[start : start + nbytes]

    def align8(self) -> None:
        self.pos += -self.pos % 8


class _StringTable:
    """Lazy UTF-8 decode over the mapped string blob."""

    __slots__ = ("offsets", "blob", "cache")

    def __init__(self, offsets, blob):
        self.offsets = offsets
        self.blob = blob
        self.cache: dict[int, str] = {}

    def get(self, i: int) -> str:
        s = self.cache.get(i)
        if s is None:
            offsets = self.offsets
            s = self.cache[i] = bytes(self.blob[offsets[i] : offsets[i + 1]]).decode("utf-8")
        return s

    def __len__(self) -> int:
        return len(self.offsets) - 1


class _SnapshotTermSource:
    """Materializes term ``i`` from the mapped term table on demand.

    Holds the ``mmap`` (and its file handle, via the memoryviews) alive for
    as long as any lazy term or zero-copy posting view is reachable.
    """

    __slots__ = ("mm", "strings", "kinds", "a", "b")

    def __init__(self, mm, strings, kinds, a, b):
        self.mm = mm
        self.strings = strings
        self.kinds = kinds
        self.a = a
        self.b = b

    def materialize(self, i: int):
        # __new__ + object.__setattr__ skips constructor validation: the
        # payload CRC already vouches for the stored terms, and decode is
        # the per-term hot path of lazy loads.
        from ..rdf.terms import IRI, BlankNode, Literal

        kind = self.kinds[i]
        text = self.strings.get(self.a[i])
        set_ = object.__setattr__
        if kind == _KIND_IRI:
            term = IRI.__new__(IRI)
            set_(term, "value", text)
            return term
        if kind == _KIND_BNODE:
            term = BlankNode.__new__(BlankNode)
            set_(term, "label", text)
            return term
        term = Literal.__new__(Literal)
        set_(term, "lexical", text)
        if kind == _KIND_LANG_LITERAL:
            set_(term, "datatype", Literal.LANG_STRING)
            set_(term, "language", self.strings.get(self.b[i]))
        elif kind == _KIND_TYPED_LITERAL:
            set_(term, "datatype", self.strings.get(self.b[i]))
            set_(term, "language", None)
        else:
            raise SnapshotError(f"snapshot term {i} has unknown kind {kind}")
        return term


def _read_index(reader: _Reader) -> dict:
    n_k1 = reader.u64()
    k1 = reader.int_view(n_k1)
    glen = reader.int_view(n_k1)
    n_k2 = reader.u64()
    k2 = reader.int_view(n_k2)
    plen = reader.int_view(n_k2)
    n_vals = reader.u64()
    vals = reader.int_view(n_vals)
    index: dict[int, dict[int, IntPostings]] = {}
    # Hot loop: one IntPostings per (k1, k2) bucket.  Construct via
    # __new__ + direct slot stores — the classmethod/__init__ call pair
    # costs more than everything else in a snapshot load combined.
    new = IntPostings.__new__
    pairs = iter(zip(k2, plen))
    j = 0
    off = 0
    for i in range(n_k1):
        group: dict[int, IntPostings] = {}
        for k2_id, run_len in islice(pairs, glen[i]):
            end = off + run_len
            postings = new(IntPostings)
            postings._data = vals[off:end]
            postings._extra = None
            group[k2_id] = postings
            off = end
            j += 1
        index[k1[i]] = group
    if j != n_k2 or off != n_vals:
        raise SnapshotError("snapshot index section is internally inconsistent")
    return index


def _read_counters(reader: _Reader) -> dict[int, int]:
    n = reader.u64()
    keys = reader.int_view(n)
    vals = reader.int_view(n)
    return dict(zip(keys, vals))


def _open_verified(path):
    """Map ``path`` and verify header + CRC; return (mm, header fields)."""
    path = os.fspath(path)
    try:
        f = open(path, "rb")
    except OSError as exc:
        raise SnapshotError(f"cannot open snapshot {path!r}: {exc}") from exc
    try:
        size = os.fstat(f.fileno()).st_size
        if size < _HEADER.size:
            raise SnapshotError(
                f"snapshot {path!r} is truncated: {size} bytes, header needs {_HEADER.size}"
            )
        mm = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    finally:
        f.close()
    try:
        magic, version, flags, file_size, n_terms, n_triples, graph_version, crc = (
            _HEADER.unpack_from(mm, 0)
        )
        if magic != SNAPSHOT_MAGIC:
            raise SnapshotError(f"{path!r} is not a repro snapshot (bad magic {magic!r})")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"unsupported snapshot format version {version} (this build reads {SNAPSHOT_VERSION})"
            )
        if not flags & _FLAG_LITTLE_ENDIAN:
            raise SnapshotError("snapshot byte order flag is unsupported")
        if file_size != size:
            raise SnapshotError(
                f"snapshot {path!r} is truncated: header declares {file_size} bytes, file has {size}"
            )
        actual_crc = zlib.crc32(memoryview(mm)[_HEADER.size :])
        if actual_crc != crc:
            raise SnapshotError(
                f"snapshot {path!r} is corrupt: payload CRC {actual_crc:#010x} != stored {crc:#010x}"
            )
    except SnapshotError:
        mm.close()
        raise
    except Exception as exc:
        mm.close()
        raise SnapshotError(f"snapshot {path!r} is unreadable: {exc}") from exc
    return mm, (version, file_size, n_terms, n_triples, graph_version, crc)


def load_snapshot(path):
    """Load a :class:`~repro.rdf.graph.Graph` from a snapshot file.

    Postings stay zero-copy views of the mapped file until first mutated;
    terms decode lazily on first access.

    Raises:
        SnapshotError: the file is missing, truncated, corrupt, or of an
            unsupported format version.
    """
    from ..rdf.graph import Graph

    mm, (_, file_size, n_terms, n_triples, graph_version, _) = _open_verified(path)
    try:
        mv = memoryview(mm)
        reader = _Reader(mv, _HEADER.size, file_size)

        n_strings = reader.u64()
        offsets = reader.int_view(n_strings + 1)
        blob_len = reader.u64()
        blob = reader.raw(blob_len)
        reader.align8()
        strings = _StringTable(offsets, blob)

        kinds = reader.raw(n_terms)
        reader.align8()
        a = reader.int_view(n_terms)
        b = reader.int_view(n_terms)
        source = _SnapshotTermSource(mm, strings, kinds, a, b)
        interner = TermInterner.lazy(source, n_terms)

        spo = _read_index(reader)
        pos = _read_index(reader)
        osp = _read_index(reader)
        p_count = _read_counters(reader)
        p_subjects = _read_counters(reader)
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(f"snapshot {os.fspath(path)!r} is corrupt: {exc}") from exc

    return Graph._from_storage(
        interner, spo, pos, osp, n_triples, p_count, p_subjects, graph_version
    )


def snapshot_info(path) -> dict:
    """Header metadata of a snapshot (after full integrity verification).

    Returns a dict with ``format_version``, ``file_size``, ``n_terms``,
    ``n_triples``, and ``graph_version``.
    """
    mm, (version, file_size, n_terms, n_triples, graph_version, crc) = _open_verified(path)
    mm.close()
    return {
        "format_version": version,
        "file_size": file_size,
        "n_terms": n_terms,
        "n_triples": n_triples,
        "graph_version": graph_version,
        "crc32": crc,
    }
