"""Dictionary encoding: strings and RDF terms ⇄ dense integer ids.

Interning pays the hash of a value once, at first sight; every later
index operation is an int comparison.  Ids are dense and allocated in
first-appearance order, so decode is a list index and snapshots can
store the dictionary as a flat table.

:class:`TermInterner` additionally supports *lazy* decoding for
snapshot-backed graphs: terms materialize from the mmapped term table
on first access, and the reverse (term → id) map is only built when a
lookup actually needs it, so loading a snapshot does no per-term work.
"""

from __future__ import annotations

from collections.abc import Iterator

__all__ = ["Interner", "TermInterner"]


class Interner:
    """A bidirectional value ⇄ dense-int-id dictionary."""

    __slots__ = ("_ids", "_values")

    def __init__(self, values=()):
        self._values: list = list(values)
        self._ids: dict = {v: i for i, v in enumerate(self._values)}

    def intern(self, value) -> int:
        """The id for ``value``, allocating the next dense id if new."""
        ids = self._ids
        i = ids.get(value)
        if i is None:
            i = len(self._values)
            ids[value] = i
            self._values.append(value)
        return i

    def lookup(self, value) -> int | None:
        """The id for ``value``, or None when it was never interned."""
        return self._ids.get(value)

    def value(self, i: int):
        """The value with id ``i``."""
        return self._values[i]

    def values(self) -> list:
        """The id-ordered value list (do not mutate)."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator:
        return iter(self._values)

    def __repr__(self) -> str:
        return f"<Interner {len(self._values)} values>"


class TermInterner:
    """An :class:`Interner` for RDF terms with lazy snapshot decoding.

    For ordinary in-memory graphs this is a plain dictionary encoder.
    For graphs loaded from a snapshot, ``_terms`` starts as a list of
    ``None`` placeholders and ``_source`` decodes term ``i`` on demand;
    the reverse map ``_ids`` is built only when the first term → id
    lookup happens (e.g. a bound-pattern query or a mutation).
    """

    __slots__ = ("_terms", "_ids", "_source")

    def __init__(self):
        self._terms: list = []
        self._ids: dict | None = {}
        self._source = None

    @classmethod
    def lazy(cls, source, count: int) -> "TermInterner":
        """An interner of ``count`` terms decoded on demand by ``source``.

        ``source`` must provide ``materialize(i) -> Term``.
        """
        interner = cls()
        interner._terms = [None] * count
        interner._ids = None
        interner._source = source
        return interner

    # ------------------------------------------------------------------ #
    # Decode (id -> term)
    # ------------------------------------------------------------------ #

    def term(self, i: int):
        """The term with id ``i`` (materializing it if snapshot-backed)."""
        t = self._terms[i]
        if t is None:
            t = self._terms[i] = self._source.materialize(i)
        return t

    def _ensure_ids(self) -> dict:
        ids = self._ids
        if ids is None:
            terms = self._terms
            source = self._source
            for i, t in enumerate(terms):
                if t is None:
                    terms[i] = source.materialize(i)
            ids = self._ids = {t: i for i, t in enumerate(terms)}
        return ids

    # ------------------------------------------------------------------ #
    # Encode (term -> id)
    # ------------------------------------------------------------------ #

    def intern(self, term) -> int:
        """The id for ``term``, allocating the next dense id if new."""
        ids = self._ids
        if ids is None:
            ids = self._ensure_ids()
        i = ids.get(term)
        if i is None:
            i = len(self._terms)
            ids[term] = i
            self._terms.append(term)
        return i

    def lookup(self, term) -> int | None:
        """The id for ``term``, or None when it was never interned."""
        ids = self._ids
        if ids is None:
            ids = self._ensure_ids()
        return ids.get(term)

    def __len__(self) -> int:
        return len(self._terms)

    # ------------------------------------------------------------------ #
    # Pickle (materializes lazy terms, drops the mmap-backed source)
    # ------------------------------------------------------------------ #

    def __getstate__(self):
        self._ensure_ids()
        return self._terms

    def __setstate__(self, terms):
        self._terms = terms
        self._ids = {t: i for i, t in enumerate(terms)}
        self._source = None

    def __repr__(self) -> str:
        mode = "lazy" if self._ids is None else "materialized"
        return f"<TermInterner {len(self._terms)} terms ({mode})>"
