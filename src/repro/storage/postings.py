"""Sorted integer postings — the columnar index bucket.

An :class:`IntPostings` holds a *distinct* set of non-negative integer
ids (interned terms, node ids, edge ids) the way a column store keeps an
inverted-index bucket: a sorted ``array('q')`` answering membership by
bisection, plus a small unsorted delta ``set`` absorbing out-of-order
inserts.  The delta is merged back into the array geometrically, so a
bulk build costs O(n log n) total instead of O(n²) memmove, while the
steady state stays an 8-bytes-per-entry machine array instead of a
Python ``set`` of boxed ints (~70 bytes each, pointer-chasing on scan).

Buckets loaded from a snapshot are zero-copy ``memoryview`` slices of
the mmapped file; the first mutation materializes them into a private
``array``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Iterator

__all__ = ["IntPostings"]

#: Delta buffer floor before a merge back into the sorted run.
_MERGE_FLOOR = 64


def _as_array(data) -> array:
    """A private mutable ``array('q')`` copy of ``data`` (no-op for arrays)."""
    if type(data) is array:
        return data
    return array("q", data)


class IntPostings:
    """A sorted, distinct run of int64 ids with a delta insert buffer.

    ``_data`` is the sorted run: an ``array('q')``, or an immutable
    ``memoryview`` with format ``'q'`` when backed by an mmapped
    snapshot.  ``_extra`` is the unsorted delta (``None`` when empty),
    always disjoint from ``_data``.
    """

    __slots__ = ("_data", "_extra")

    def __init__(self, data=None):
        self._data = data if data is not None else array("q")
        self._extra: set[int] | None = None

    @classmethod
    def from_view(cls, view) -> "IntPostings":
        """Wrap a sorted ``memoryview('q')`` without copying (mmap load)."""
        return cls(view)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        extra = self._extra
        return len(self._data) + (len(extra) if extra else 0)

    def __bool__(self) -> bool:
        return bool(self._data) or bool(self._extra)

    def __contains__(self, value: int) -> bool:
        extra = self._extra
        if extra and value in extra:
            return True
        data = self._data
        i = bisect_left(data, value)
        return i < len(data) and data[i] == value

    def __iter__(self) -> Iterator[int]:
        if self._extra:
            self._compact()
        return iter(self._data)

    def sorted_array(self) -> array:
        """The full contents as one sorted ``array('q')`` (compacts first).

        When array-backed this is the internal run itself — do not
        mutate; view-backed postings return a private copy.
        """
        if self._extra:
            self._compact()
        return _as_array(self._data)

    def extend_into(self, out: array) -> int:
        """Append the whole run to ``out`` in sorted order; return its size.

        The batch read API of the vectorized executor: one C-level
        ``array.extend`` per bucket instead of a Python-level iteration
        per id.  Works for both array- and snapshot-``memoryview``-backed
        runs without materializing the view.
        """
        if self._extra:
            self._compact()
        data = self._data
        out.extend(data)
        return len(data)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, value: int) -> bool:
        """Insert ``value``; return True when it was not already present."""
        if value in self:
            return False
        data = self._data
        if type(data) is not array:
            data = self._data = _as_array(data)
        if not data or value > data[-1]:
            # Ascending inserts (the bulk-load common case: interner ids
            # are handed out in insertion order) keep the run sorted.
            data.append(value)
            return True
        extra = self._extra
        if extra is None:
            extra = self._extra = set()
        extra.add(value)
        if len(extra) > max(_MERGE_FLOOR, len(data) >> 3):
            self._compact()
        return True

    def discard(self, value: int) -> bool:
        """Remove ``value``; return True when it was present."""
        extra = self._extra
        if extra and value in extra:
            extra.discard(value)
            return True
        data = self._data
        i = bisect_left(data, value)
        if i >= len(data) or data[i] != value:
            return False
        if type(data) is not array:
            data = self._data = _as_array(data)
        data.pop(i)
        return True

    def _compact(self) -> None:
        extra = self._extra
        data = self._data
        if extra:
            merged = list(data)
            merged.extend(extra)
            merged.sort()
            self._data = array("q", merged)
        else:
            self._data = _as_array(data)
        self._extra = None

    # ------------------------------------------------------------------ #
    # Copy / pickle (materializes mmap-backed views)
    # ------------------------------------------------------------------ #

    def __reduce__(self):
        return (IntPostings, (self.sorted_array(),))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntPostings):
            return NotImplemented
        return list(self) == list(other)

    def __repr__(self) -> str:
        backing = "view" if type(self._data) is not array else "array"
        return f"<IntPostings n={len(self)} backing={backing}>"
