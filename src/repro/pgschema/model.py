"""PG-Schema model (Definition 2.5): node types, edge types, hierarchies.

A PG-Schema ``S_PG = (N_S, E_S, nu_S, eta_S, gamma_S, K_S)``:

* ``N_S`` — node type names, each mapping (via ``nu_S``) to the labels and
  property record the type allows;
* ``E_S`` — edge type names, each mapping (via ``eta_S``) to tuples of
  (source type, edge label/record, target type); we represent the
  alternatives as source/target *sets*, matching the paper's
  ``(:a)-[t]->(:x | :y | :z)`` notation (Figure 5 d/e/f);
* ``gamma_S`` — inheritance between node types (the ``&`` operator);
* ``K_S`` — PG-Keys constraints (see :mod:`repro.pgschema.keys`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..errors import SchemaError
from ..namespaces import XSD

#: PG content types (the data types of node/edge properties).
STRING = "STRING"
INTEGER = "INTEGER"
FLOAT = "FLOAT"
BOOLEAN = "BOOLEAN"
DATE = "DATE"
DATETIME = "DATETIME"
YEAR = "YEAR"
ANY = "ANY"

#: Mapping from XSD datatype IRIs to PG content types (Figure 5 d/f).
XSD_TO_CONTENT_TYPE: dict[str, str] = {
    XSD.string: STRING,
    XSD.normalizedString: STRING,
    XSD.token: STRING,
    XSD.anyURI: STRING,
    XSD.integer: INTEGER,
    XSD.int: INTEGER,
    XSD.long: INTEGER,
    XSD.short: INTEGER,
    XSD.byte: INTEGER,
    XSD.nonNegativeInteger: INTEGER,
    XSD.positiveInteger: INTEGER,
    XSD.decimal: FLOAT,
    XSD.double: FLOAT,
    XSD.float: FLOAT,
    XSD.boolean: BOOLEAN,
    XSD.date: DATE,
    XSD.dateTime: DATETIME,
    XSD.gYear: YEAR,
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString": STRING,
}


def content_type_for_datatype(datatype_iri: str) -> str:
    """The PG content type for an XSD datatype IRI (``ANY`` if unknown)."""
    return XSD_TO_CONTENT_TYPE.get(datatype_iri, ANY)


@dataclass(frozen=True)
class PropertySpec:
    """A typed property in a node/edge record (Table 1 conversions).

    Attributes:
        key: property name.
        content_type: one of the PG content types (``STRING``, ...).
        optional: whether the property may be absent (``OPTIONAL`` prefix).
        array: whether the value is an array (``... ARRAY {m, n}``).
        array_min: minimum array length (only when ``array``).
        array_max: maximum array length; ``None`` means unbounded.
    """

    key: str
    content_type: str = STRING
    optional: bool = False
    array: bool = False
    array_min: int = 0
    array_max: int | None = None

    def render(self) -> str:
        """Render in PG-Schema DDL property syntax (Table 1)."""
        prefix = "OPTIONAL " if self.optional else ""
        if not self.array:
            return f"{prefix}{self.key}: {self.content_type}"
        if self.array_min == 0 and self.array_max is None:
            bounds = "{}"
        elif self.array_max is None:
            bounds = f"{{{self.array_min},*}}"
        else:
            bounds = f"{{{self.array_min},{self.array_max}}}"
        return f"{prefix}{self.key}: {self.content_type} ARRAY {bounds}"


@dataclass
class NodeType:
    """A node type in ``N_S`` with its formal base type.

    Attributes:
        name: the type name (e.g. ``personType``).
        labels: labels a conforming node must carry (usually one).
        properties: allowed/required property record, keyed by name.
        parents: node types this type inherits from (``gamma_S``).
        abstract: abstract types cannot have direct instances.
        annotations: fixed property values (e.g. literal node types carry
            ``iri = "http://...#string"`` per Figure 5d).
        is_literal_type: True for node types that represent literal values
            (created for multi-type properties; they carry a ``value``
            property holding the literal).
    """

    name: str
    labels: set[str] = field(default_factory=set)
    properties: dict[str, PropertySpec] = field(default_factory=dict)
    parents: tuple[str, ...] = ()
    abstract: bool = False
    annotations: dict[str, str] = field(default_factory=dict)
    is_literal_type: bool = False

    def add_property(self, spec: PropertySpec) -> None:
        """Insert/replace a property spec."""
        self.properties[spec.key] = spec

    def __repr__(self) -> str:
        return (
            f"NodeType({self.name!r}, labels={sorted(self.labels)}, "
            f"props={list(self.properties)}, parents={list(self.parents)})"
        )


@dataclass
class EdgeType:
    """An edge type in ``E_S``.

    Attributes:
        name: the type name (e.g. ``worksForType``).
        label: the relationship label conforming edges must carry.
        source_types: names of allowed source node types.
        target_types: names of allowed target node types (alternatives,
            the ``(:a | :b)`` notation of Figure 5).
        properties: allowed edge record (e.g. the ``iri`` annotation).
        annotations: fixed property values (e.g. ``iri = "http://x.y/dob"``).
    """

    name: str
    label: str
    source_types: tuple[str, ...] = ()
    target_types: tuple[str, ...] = ()
    properties: dict[str, PropertySpec] = field(default_factory=dict)
    annotations: dict[str, str] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"EdgeType({self.name!r}, ({'|'.join(self.source_types)})-"
            f"[{self.label}]->({'|'.join(self.target_types)}))"
        )


class PGSchema:
    """The schema ``S_PG``: named node types, edge types, and PG-Keys."""

    def __init__(self) -> None:
        self._node_types: dict[str, NodeType] = {}
        self._edge_types: dict[str, EdgeType] = {}
        from .keys import PGKey  # local import to avoid a cycle

        self.keys: list[PGKey] = []

    # ------------------------------------------------------------------ #

    def add_node_type(self, node_type: NodeType) -> NodeType:
        """Insert or replace a node type."""
        self._node_types[node_type.name] = node_type
        return node_type

    def add_edge_type(self, edge_type: EdgeType) -> EdgeType:
        """Insert or replace an edge type."""
        self._edge_types[edge_type.name] = edge_type
        return edge_type

    def add_key(self, key) -> None:
        """Append a PG-Keys constraint."""
        self.keys.append(key)

    @property
    def node_types(self) -> dict[str, NodeType]:
        """``N_S`` with ``nu_S`` folded in (name -> NodeType)."""
        return self._node_types

    @property
    def edge_types(self) -> dict[str, EdgeType]:
        """``E_S`` with ``eta_S`` folded in (name -> EdgeType)."""
        return self._edge_types

    def node_type(self, name: str) -> NodeType:
        """Look up a node type; raises SchemaError when absent."""
        try:
            return self._node_types[name]
        except KeyError:
            raise SchemaError(f"unknown node type {name!r}") from None

    def edge_type(self, name: str) -> EdgeType:
        """Look up an edge type; raises SchemaError when absent."""
        try:
            return self._edge_types[name]
        except KeyError:
            raise SchemaError(f"unknown edge type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._node_types or name in self._edge_types

    def node_type_for_label(self, label: str) -> NodeType | None:
        """The node type whose label set contains ``label``, if unique."""
        matches = [t for t in self._node_types.values() if label in t.labels]
        return matches[0] if len(matches) == 1 else (matches[0] if matches else None)

    def ancestors(self, name: str) -> list[str]:
        """Transitive parents of a node type (``gamma_S`` closure).

        Raises:
            SchemaError: on a cycle or a dangling parent reference.
        """
        result: list[str] = []
        seen: set[str] = {name}
        stack = list(self.node_type(name).parents)
        while stack:
            parent = stack.pop(0)
            if parent in seen:
                raise SchemaError(f"node type inheritance cycle at {parent!r}")
            if parent not in self._node_types:
                raise SchemaError(f"node type {name!r} inherits unknown {parent!r}")
            seen.add(parent)
            result.append(parent)
            stack.extend(self.node_type(parent).parents)
        return result

    def descendants(self, name: str) -> list[str]:
        """Node types that (transitively) inherit from ``name``."""
        return [
            other
            for other in self._node_types
            if other != name and name in self.ancestors(other)
        ]

    def effective_properties(self, name: str) -> dict[str, PropertySpec]:
        """Local properties plus all inherited ones (local wins)."""
        result = dict(self.node_type(name).properties)
        for parent in self.ancestors(name):
            for key, spec in self.node_type(parent).properties.items():
                result.setdefault(key, spec)
        return result

    def effective_labels(self, name: str) -> set[str]:
        """Labels of the type plus all inherited labels."""
        labels = set(self.node_type(name).labels)
        for parent in self.ancestors(name):
            labels.update(self.node_type(parent).labels)
        return labels

    def edge_types_with_label(self, label: str) -> Iterator[EdgeType]:
        """All edge types carrying relationship label ``label``."""
        return (t for t in self._edge_types.values() if t.label == label)

    def validate_references(self) -> None:
        """Check every parent / endpoint reference resolves.

        Raises:
            SchemaError: on the first dangling reference.
        """
        for node_type in self._node_types.values():
            for parent in node_type.parents:
                if parent not in self._node_types:
                    raise SchemaError(
                        f"node type {node_type.name!r} inherits unknown {parent!r}"
                    )
        for edge_type in self._edge_types.values():
            for endpoint in (*edge_type.source_types, *edge_type.target_types):
                if endpoint not in self._node_types:
                    raise SchemaError(
                        f"edge type {edge_type.name!r} references unknown "
                        f"node type {endpoint!r}"
                    )

    def __repr__(self) -> str:
        return (
            f"<PGSchema node_types={len(self._node_types)} "
            f"edge_types={len(self._edge_types)} keys={len(self.keys)}>"
        )
