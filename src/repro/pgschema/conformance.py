"""PG-Schema conformance and typing (Definition 2.6).

A node conforms to a node type when it carries the type's (effective)
labels and its record satisfies the type's (effective) property specs.  An
edge conforms to an edge type when its label matches and both endpoints
conform to allowed endpoint types.  A property graph conforms to a schema
when every element conforms to at least one type, and every PG-Keys
constraint holds.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .keys import CardinalityKey, PGKey, UniqueKey
from ..pg.model import PGEdge, PGNode, PropertyGraph
from .model import (
    ANY,
    BOOLEAN,
    DATE,
    DATETIME,
    FLOAT,
    INTEGER,
    NodeType,
    PGSchema,
    PropertySpec,
    STRING,
    YEAR,
)


@dataclass(frozen=True)
class ConformanceViolation:
    """A single conformance failure."""

    element_id: str
    kind: str  # "node" | "edge" | "key"
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.element_id}: {self.message}"


@dataclass
class ConformanceReport:
    """Outcome of checking ``PG ⊨ S_PG``."""

    conforms: bool
    violations: list[ConformanceViolation] = field(default_factory=list)
    typing_nodes: dict[str, list[str]] = field(default_factory=dict)
    typing_edges: dict[str, list[str]] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.conforms


def _scalar_matches(value: object, content_type: str) -> bool:
    if content_type == ANY:
        return True
    if content_type == STRING:
        return isinstance(value, str)
    if content_type == INTEGER:
        return isinstance(value, int) and not isinstance(value, bool)
    if content_type == FLOAT:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if content_type == BOOLEAN:
        return isinstance(value, bool)
    if content_type in (DATE, DATETIME):
        return isinstance(value, str)
    if content_type == YEAR:
        return isinstance(value, str) or (
            isinstance(value, int) and not isinstance(value, bool)
        )
    return True


def property_value_matches(value: object, spec: PropertySpec) -> bool:
    """True when ``value`` satisfies ``spec`` (type, array bounds)."""
    if spec.array:
        values = value if isinstance(value, list) else [value]
        if len(values) < spec.array_min:
            return False
        if spec.array_max is not None and len(values) > spec.array_max:
            return False
        return all(_scalar_matches(v, spec.content_type) for v in values)
    if isinstance(value, list):
        return False
    return _scalar_matches(value, spec.content_type)


class ConformanceChecker:
    """Checks property graphs against a :class:`PGSchema` (Definition 2.6).

    Args:
        schema: the PG-Schema ``S_PG``.
        max_violations: bound on the number of collected failures.
    """

    #: Property keys always allowed even when not declared by a type
    #: (S3PG stores the originating IRI on every element).
    IMPLICIT_KEYS = frozenset({"iri"})

    #: The two PG-Schema graph-type options (Section 2.2 of the paper).
    STRICT = "STRICT"
    LOOSE = "LOOSE"

    def __init__(
        self,
        schema: PGSchema,
        max_violations: int = 10_000,
        mode: str = "STRICT",
    ):
        if mode not in (self.STRICT, self.LOOSE):
            raise ValueError("mode must be STRICT or LOOSE")
        self.schema = schema
        self.max_violations = max_violations
        self.mode = mode
        # The type hierarchy is static for the checker's lifetime: cache
        # the descendant sets so edge checks don't walk it per edge.
        self._descendants_cache: dict[str, list[str]] = {}

    def _descendants(self, type_name: str) -> list[str]:
        cached = self._descendants_cache.get(type_name)
        if cached is None:
            cached = self.schema.descendants(type_name)
            self._descendants_cache[type_name] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Element-level conformance
    # ------------------------------------------------------------------ #

    def node_conforms(self, node: PGNode, node_type: NodeType) -> bool:
        """``n ⊨ tau``: labels and record satisfy the (effective) type."""
        required_labels = self.schema.effective_labels(node_type.name)
        if not required_labels <= node.labels:
            return False
        specs = self.schema.effective_properties(node_type.name)
        for key, spec in specs.items():
            value = node.properties.get(key)
            if value is None:
                if not spec.optional:
                    return False
                continue
            if not property_value_matches(value, spec):
                # A literal node's value is stored either natively or as
                # the lexical form (e.g. "958.30"^^xsd:double keeps its
                # trailing zero); the lexical string is always admissible.
                if (
                    node_type.is_literal_type
                    and key == "value"
                    and isinstance(value, str)
                ):
                    continue
                return False
        for key in node.properties:
            if key not in specs and key not in self.IMPLICIT_KEYS:
                # Keys that belong to some edge-type annotation (literal
                # value holders) are allowed on literal node types only.
                if not (node_type.is_literal_type and key == "value"):
                    return False
        return True

    def node_typing(self, node: PGNode) -> list[str]:
        """``T(v)``: all node types the node conforms to."""
        return [
            t.name
            for t in self.schema.node_types.values()
            if not t.abstract and self.node_conforms(node, t)
        ]

    def _conforms_to_or_below(self, node: PGNode, type_name: str) -> bool:
        """``node`` conforms to ``type_name`` or to one of its subtypes
        (type hierarchies make an endpoint declared as Person accept a
        GraduateStudent — standard subtype polymorphism over gamma_S)."""
        if self.node_conforms(node, self.schema.node_type(type_name)):
            return True
        return any(
            self.node_conforms(node, self.schema.node_type(sub))
            for sub in self._descendants(type_name)
        )

    def edge_conforms(self, graph: PropertyGraph, edge: PGEdge, name: str) -> bool:
        """``e ⊨ sigma`` for the edge type called ``name``."""
        edge_type = self.schema.edge_type(name)
        if edge_type.label not in edge.labels:
            return False
        src = graph.nodes.get(edge.src)
        dst = graph.nodes.get(edge.dst)
        if src is None or dst is None:
            return False
        src_ok = not edge_type.source_types or any(
            self._conforms_to_or_below(src, t) for t in edge_type.source_types
        )
        dst_ok = not edge_type.target_types or any(
            self._conforms_to_or_below(dst, t) for t in edge_type.target_types
        )
        return src_ok and dst_ok

    def edge_typing(self, graph: PropertyGraph, edge: PGEdge) -> list[str]:
        """``T(e)``: all edge types the edge conforms to."""
        return [
            name
            for name in self.schema.edge_types
            if self.edge_conforms(graph, edge, name)
        ]

    # ------------------------------------------------------------------ #
    # Graph-level conformance
    # ------------------------------------------------------------------ #

    def check(self, graph: PropertyGraph) -> ConformanceReport:
        """Check ``PG ⊨ S_PG``.

        STRICT mode (the default) requires every element to conform to at
        least one type; LOOSE mode tolerates untyped elements and only
        enforces the PG-Keys constraints, matching the paper's two
        graph-type options.
        """
        report = ConformanceReport(conforms=True)
        strict = self.mode == self.STRICT
        for node in graph.nodes.values():
            typing = self.node_typing(node)
            report.typing_nodes[node.id] = typing
            if strict and not typing:
                self._record(report, node.id, "node", "conforms to no node type")
        for edge in graph.edges.values():
            typing = self.edge_typing(graph, edge)
            report.typing_edges[edge.id] = typing
            if strict and not typing:
                self._record(report, edge.id, "edge", "conforms to no edge type")
        for key in self.schema.keys:
            self._check_key(graph, key, report)
        return report

    def conforms(self, graph: PropertyGraph) -> bool:
        """Shortcut returning only the boolean outcome."""
        return self.check(graph).conforms

    # ------------------------------------------------------------------ #

    def _check_key(self, graph: PropertyGraph, key: PGKey, report: ConformanceReport) -> None:
        if isinstance(key, UniqueKey):
            seen: dict[object, str] = {}
            for node in graph.nodes.values():
                if key.label not in node.labels:
                    continue
                value = node.properties.get(key.property_key)
                if value is None:
                    self._record(
                        report, node.id, "key",
                        f"missing mandatory key property {key.property_key!r}",
                    )
                    continue
                hashable = tuple(value) if isinstance(value, list) else value
                other = seen.get(hashable)
                if other is not None:
                    self._record(
                        report, node.id, "key",
                        f"duplicate {key.property_key}={value!r} (also on {other})",
                    )
                else:
                    seen[hashable] = node.id
            return
        if isinstance(key, CardinalityKey):
            counts: dict[str, int] = defaultdict(int)
            sources = [
                n for n in graph.nodes.values() if key.source_label in n.labels
            ]
            allowed = set(key.target_labels)
            for edge in graph.edges.values():
                if key.edge_label not in edge.labels:
                    continue
                src = graph.nodes.get(edge.src)
                dst = graph.nodes.get(edge.dst)
                if src is None or dst is None or key.source_label not in src.labels:
                    continue
                if allowed and not (allowed & dst.labels):
                    continue
                counts[edge.src] += 1
            for node in sources:
                count = counts.get(node.id, 0)
                if count < key.lower or count > key.upper:
                    upper_text = "*" if key.upper == float("inf") else int(key.upper)
                    self._record(
                        report, node.id, "key",
                        f"{key.edge_label} count {count} outside "
                        f"[{key.lower}, {upper_text}]",
                    )
            return
        raise TypeError(f"unknown PG-Key {key!r}")  # pragma: no cover

    def _record(self, report: ConformanceReport, element_id: str, kind: str, message: str) -> None:
        report.conforms = False
        if len(report.violations) < self.max_violations:
            report.violations.append(
                ConformanceViolation(element_id=element_id, kind=kind, message=message)
            )


def check_conformance(
    graph: PropertyGraph, schema: PGSchema, mode: str = "STRICT"
) -> ConformanceReport:
    """Module-level convenience wrapper around :class:`ConformanceChecker`."""
    return ConformanceChecker(schema, mode=mode).check(graph)
