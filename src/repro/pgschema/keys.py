"""PG-Keys constraint expressions (``K_S`` in Definition 2.5).

The paper uses PG-Keys of the shape::

    FOR (p: Professor) COUNT 1..1 OF u WITHIN (p)-[:worksFor]->(u: Department)

i.e. participation/cardinality constraints over typed patterns: every node
matching the source pattern must have between ``lower`` and ``upper``
distinct results of the ``WITHIN`` query.  We implement this qualifier
(``COUNT n..m OF``) plus uniqueness keys (``EXCLUSIVE MANDATORY SINGLETON``
abbreviated as UNIQUE), which is what the schema transformation emits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Upper bound meaning "unbounded" (rendered as an empty upper bound).
UNBOUNDED = math.inf


@dataclass(frozen=True)
class CardinalityKey:
    """``FOR (x: SourceLabel) COUNT lower..upper OF T WITHIN (x)-[:label]->(T: targets)``.

    Attributes:
        source_label: label of the constrained source nodes.
        edge_label: relationship label of the counted edges.
        lower: minimum number of distinct targets.
        upper: maximum number (``UNBOUNDED`` for no limit).
        target_labels: alternative target labels; empty means any target.
    """

    source_label: str
    edge_label: str
    lower: int
    upper: float
    target_labels: tuple[str, ...] = ()

    def render(self) -> str:
        """Render in the paper's PG-Keys surface syntax."""
        upper_text = "" if self.upper == UNBOUNDED else str(int(self.upper))
        if len(self.target_labels) == 1:
            target = f"(T: {self.target_labels[0]})"
        elif self.target_labels:
            target = "(T: {" + " | ".join(self.target_labels) + "})"
        else:
            target = "(T)"
        source_var = self.source_label[:1].lower() or "x"
        return (
            f"FOR ({source_var}: {self.source_label}) "
            f"COUNT {self.lower}..{upper_text} OF T "
            f"WITHIN ({source_var})-[:{self.edge_label}]->{target}"
        )

    def bounds(self) -> tuple[int, float]:
        """The ``(lower, upper)`` pair."""
        return (self.lower, self.upper)


@dataclass(frozen=True)
class UniqueKey:
    """A uniqueness constraint: ``property`` identifies nodes of ``label``.

    S3PG emits one for the ``iri`` property of every converted node type —
    this is what makes the transformation non-ambiguous and invertible.
    """

    label: str
    property_key: str

    def render(self) -> str:
        """Render in the paper's PG-Keys surface syntax."""
        var = self.label[:1].lower() or "x"
        return (
            f"FOR ({var}: {self.label}) EXCLUSIVE MANDATORY SINGLETON "
            f"{var}.{self.property_key}"
        )


#: Any PG-Keys constraint.
PGKey = CardinalityKey | UniqueKey
