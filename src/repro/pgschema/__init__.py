"""PG-Schema substrate: types, PG-Keys, conformance, and DDL round-trip."""

from .conformance import (
    ConformanceChecker,
    ConformanceReport,
    ConformanceViolation,
    check_conformance,
    property_value_matches,
)
from .ddl import (
    parse_pgschema_ddl,
    render_edge_type,
    render_key,
    render_node_type,
    render_pgschema,
)
from .keys import UNBOUNDED, CardinalityKey, PGKey, UniqueKey
from .model import (
    ANY,
    BOOLEAN,
    DATE,
    DATETIME,
    FLOAT,
    INTEGER,
    STRING,
    XSD_TO_CONTENT_TYPE,
    YEAR,
    EdgeType,
    NodeType,
    PGSchema,
    PropertySpec,
    content_type_for_datatype,
)

__all__ = [
    "ANY",
    "BOOLEAN",
    "CardinalityKey",
    "ConformanceChecker",
    "ConformanceReport",
    "ConformanceViolation",
    "DATE",
    "DATETIME",
    "EdgeType",
    "FLOAT",
    "INTEGER",
    "NodeType",
    "PGKey",
    "PGSchema",
    "PropertySpec",
    "STRING",
    "UNBOUNDED",
    "UniqueKey",
    "XSD_TO_CONTENT_TYPE",
    "YEAR",
    "check_conformance",
    "content_type_for_datatype",
    "parse_pgschema_ddl",
    "property_value_matches",
    "render_edge_type",
    "render_key",
    "render_node_type",
    "render_pgschema",
]
