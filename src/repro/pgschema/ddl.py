"""Textual PG-Schema DDL in the paper's Figure 5 style, with a parser.

The emitter produces one statement per line::

    (personType: Person {name: STRING})
    (studentType: Student {regNo: STRING})
    (studentType: studentType & personType)
    (stringType: STRING LITERAL {value: STRING, iri = "http://...#string"})
    CREATE EDGE TYPE (:professorType)-[worksForType: worksFor {iri = "http://x.y/worksFor"}]->(:departmentType)
    FOR (p: Professor) COUNT 1..1 OF T WITHIN (p)-[:worksFor]->(T: {Department})
    FOR (p: Person) EXCLUSIVE MANDATORY SINGLETON p.iri

Conventions: ``key: TYPE`` declares a typed property spec (Table 1 array
syntax supported); ``key = "literal"`` declares a fixed annotation value;
``&`` in a content statement lists parent types (``gamma_S``);
alternatives in edge targets use ``|``.  :func:`parse_pgschema_ddl`
round-trips everything :func:`render_pgschema` emits.
"""

from __future__ import annotations

import re

from ..errors import ParseError
from .keys import UNBOUNDED, CardinalityKey, UniqueKey
from .model import EdgeType, NodeType, PGSchema, PropertySpec


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #

def _render_record(properties: dict[str, PropertySpec], annotations: dict[str, str]) -> str:
    parts = [spec.render() for spec in properties.values()]
    parts += [f'{key} = "{value}"' for key, value in annotations.items()]
    if not parts:
        return ""
    return " {" + ", ".join(parts) + "}"


def render_node_type(node_type: NodeType) -> list[str]:
    """Render a node type as one content statement plus an optional
    inheritance statement (matching Figure 5b)."""
    labels = " & ".join(sorted(node_type.labels)) if node_type.labels else "ANY"
    flags = ""
    if node_type.is_literal_type:
        flags += " LITERAL"
    if node_type.abstract:
        flags += " ABSTRACT"
    record = _render_record(node_type.properties, node_type.annotations)
    lines = [f"({node_type.name}: {labels}{flags}{record})"]
    if node_type.parents:
        parents = " & ".join((node_type.name, *node_type.parents))
        lines.append(f"({node_type.name}: {parents})")
    return lines


def render_edge_type(edge_type: EdgeType) -> str:
    """Render an edge type in the ASCII-art ``( )-[ ]->( )`` notation."""
    source = " | ".join(f":{t}" for t in edge_type.source_types) or ""
    target = " | ".join(f":{t}" for t in edge_type.target_types) or ""
    record = _render_record(edge_type.properties, edge_type.annotations)
    return (
        f"CREATE EDGE TYPE ({source})-"
        f"[{edge_type.name}: {edge_type.label}{record}]->({target})"
    )


def render_key(key: CardinalityKey | UniqueKey) -> str:
    """Render a PG-Keys constraint."""
    return key.render()


def render_pgschema(schema: PGSchema) -> str:
    """Render a complete schema as DDL text."""
    lines: list[str] = []
    for node_type in schema.node_types.values():
        lines.extend(render_node_type(node_type))
    for edge_type in schema.edge_types.values():
        lines.append(render_edge_type(edge_type))
    for key in schema.keys:
        lines.append(render_key(key))
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# Parsing
# --------------------------------------------------------------------- #

_PROP_RE = re.compile(
    r"^(?P<opt>OPTIONAL\s+)?(?P<key>\w+)\s*:\s*(?P<type>\w+)"
    r"(?:\s+ARRAY\s*\{(?P<amin>\d+)?\s*(?:,\s*(?P<amax>\d+|\*))?\})?$"
)
_ANNOT_RE = re.compile(r'^(?P<key>\w+)\s*=\s*"(?P<value>[^"]*)"$')
_NODE_RE = re.compile(
    r"^\((?P<name>\w+)\s*:\s*(?P<body>[^{)]+?)(?P<flags>(?:\s+(?:LITERAL|ABSTRACT))*)"
    r"\s*(?:\{(?P<record>.*)\})?\s*\)$"
)
_EDGE_RE = re.compile(
    r"^CREATE EDGE TYPE \((?P<src>[^)]*)\)-"
    r"\[(?P<name>\w+)\s*:\s*(?P<label>[\w.:-]+)\s*(?:\{(?P<record>.*)\})?\]->"
    r"\((?P<dst>[^)]*)\)$"
)
_CARD_KEY_RE = re.compile(
    r"^FOR \(\w+\s*:\s*(?P<source>[\w.:-]+)\) COUNT (?P<lower>\d+)\.\.(?P<upper>\d*) OF \w+ "
    r"WITHIN \(\w+\)-\[:(?P<label>[\w.:-]+)\]->\((?:\w+)(?:\s*:\s*(?P<targets>[^)]+))?\)$"
)
_UNIQUE_KEY_RE = re.compile(
    r"^FOR \(\w+\s*:\s*(?P<label>[\w.:-]+)\) EXCLUSIVE MANDATORY SINGLETON \w+\.(?P<key>\w+)$"
)


def _split_record_parts(record: str) -> list[str]:
    """Split a record body at commas not nested in braces or quotes."""
    parts: list[str] = []
    depth = 0
    in_string = False
    current: list[str] = []
    for ch in record:
        if ch == '"':
            in_string = not in_string
        if not in_string:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append("".join(current).strip())
                current = []
                continue
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_record(record: str | None, lineno: int) -> tuple[dict[str, PropertySpec], dict[str, str]]:
    properties: dict[str, PropertySpec] = {}
    annotations: dict[str, str] = {}
    if not record:
        return properties, annotations
    for part in _split_record_parts(record):
        annot = _ANNOT_RE.match(part)
        if annot:
            annotations[annot.group("key")] = annot.group("value")
            continue
        prop = _PROP_RE.match(part)
        if prop:
            array = "ARRAY" in part
            amax_text = prop.group("amax")
            properties[prop.group("key")] = PropertySpec(
                key=prop.group("key"),
                content_type=prop.group("type"),
                optional=bool(prop.group("opt")),
                array=array,
                array_min=int(prop.group("amin") or 0) if array else 0,
                array_max=(
                    None
                    if not array or amax_text in (None, "*")
                    else int(amax_text)
                ),
            )
            continue
        raise ParseError(f"cannot parse record entry {part!r}", line=lineno)
    return properties, annotations


def parse_pgschema_ddl(text: str) -> PGSchema:
    """Parse DDL text produced by :func:`render_pgschema`.

    Raises:
        ParseError: on any unrecognized statement.
    """
    schema = PGSchema()
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip().rstrip(";")
        if not line or line.startswith("#") or line.startswith("//"):
            continue
        edge_match = _EDGE_RE.match(line)
        if edge_match:
            properties, annotations = _parse_record(edge_match.group("record"), lineno)
            sources = tuple(
                part.strip().lstrip(":")
                for part in edge_match.group("src").split("|")
                if part.strip()
            )
            targets = tuple(
                part.strip().lstrip(":")
                for part in edge_match.group("dst").split("|")
                if part.strip()
            )
            schema.add_edge_type(
                EdgeType(
                    name=edge_match.group("name"),
                    label=edge_match.group("label"),
                    source_types=sources,
                    target_types=targets,
                    properties=properties,
                    annotations=annotations,
                )
            )
            continue
        card_match = _CARD_KEY_RE.match(line)
        if card_match:
            targets_text = card_match.group("targets") or ""
            targets_text = targets_text.strip().strip("{}")
            targets = tuple(
                part.strip() for part in targets_text.split("|") if part.strip()
            )
            upper_text = card_match.group("upper")
            schema.add_key(
                CardinalityKey(
                    source_label=card_match.group("source"),
                    edge_label=card_match.group("label"),
                    lower=int(card_match.group("lower")),
                    upper=UNBOUNDED if not upper_text else float(upper_text),
                    target_labels=targets,
                )
            )
            continue
        unique_match = _UNIQUE_KEY_RE.match(line)
        if unique_match:
            schema.add_key(
                UniqueKey(
                    label=unique_match.group("label"),
                    property_key=unique_match.group("key"),
                )
            )
            continue
        node_match = _NODE_RE.match(line)
        if node_match:
            name = node_match.group("name")
            body = node_match.group("body").strip()
            flags = node_match.group("flags") or ""
            parts = [part.strip() for part in body.split("&")]
            if parts and parts[0] == name:
                # Inheritance statement: (x: x & parent1 & parent2)
                existing = schema.node_types.get(name)
                if existing is None:
                    raise ParseError(
                        f"inheritance statement for unknown type {name!r}", line=lineno
                    )
                existing.parents = tuple(parts[1:])
                continue
            properties, annotations = _parse_record(node_match.group("record"), lineno)
            labels = set(parts) if body != "ANY" else set()
            schema.add_node_type(
                NodeType(
                    name=name,
                    labels=labels,
                    properties=properties,
                    annotations=annotations,
                    is_literal_type="LITERAL" in flags,
                    abstract="ABSTRACT" in flags,
                )
            )
            continue
        raise ParseError(f"unrecognized PG-Schema statement: {line!r}", line=lineno)
    return schema
