"""NeoSemantics (n10s) baseline: a faithful reimplementation of its mapping.

NeoSemantics is Neo4j's RDF importer.  Its documented behaviour, which we
reproduce here, differs from S3PG in ways that make the transformation
*lossy* (Section 5.2):

* ``rdf:type`` objects become node labels; every resource node carries a
  ``uri`` property (n10s's key — note: not ``iri``).
* triples with IRI objects become relationships (creating an untyped
  ``Resource`` node for unseen IRIs);
* triples with literal objects become node properties; with
  ``handleMultival=ARRAY`` multiple values accumulate into an array —
  but **datatypes are erased** (``keepCustomDataTypes=false``) and
  **language tags are dropped** (``keepLangTag=false``), so distinct RDF
  literals that collide after erasure (e.g. ``"1999"^^xsd:gYear`` vs
  ``"1999"``) are merged, and the array is value-deduplicated;
* the transformation writes through the database (transactional load), so
  transformation and loading cannot be separated — matching Table 4 where
  NeoSemantics reports a single combined time.

Accuracy consequences measured in the paper (Tables 6-7) follow directly:
100% on single-type and homogeneous non-literal properties, and a small
loss (90-100%) on heterogeneous/multi-type literal properties.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..core.data_transform import encode_literal_value
from ..core.naming import NameResolver
from ..namespaces import RDF_TYPE
from ..pg.model import PGNode, PropertyGraph
from ..pg.store import PropertyGraphStore
from ..rdf.graph import Graph
from ..rdf.terms import IRI, BlankNode, Literal, Subject, Triple

_TYPE = IRI(RDF_TYPE)

#: The record key NeoSemantics uses for the resource IRI.
URI_KEY = "uri"
#: Label assigned to resources with no rdf:type.
RESOURCE_LABEL = "Resource"


@dataclass
class NeoSemanticsStats:
    """Counters for one import run."""

    triples: int = 0
    nodes: int = 0
    relationships: int = 0
    properties_set: int = 0
    values_merged: int = 0  # distinct literals collapsed by type erasure
    commits: int = 0
    wal_bytes: int = 0
    wal_checksum: int = 0


@dataclass
class NeoSemanticsResult:
    """Output of a NeoSemantics-style import."""

    store: PropertyGraphStore
    resolver: NameResolver
    stats: NeoSemanticsStats = field(default_factory=NeoSemanticsStats)
    combined_seconds: float = 0.0

    @property
    def graph(self) -> PropertyGraph:
        """The imported property graph."""
        return self.store.graph


class NeoSemanticsTransformer:
    """Imports RDF triples the way n10s does (see module docstring).

    Args:
        handle_multival: ``"ARRAY"`` (accumulate values) or
            ``"OVERWRITE"`` (keep only the last value seen, n10s default —
            dramatically lossy; the paper's comparison uses ARRAY).
    """

    def __init__(
        self,
        handle_multival: str = "ARRAY",
        commit_size: int = 2_000,
        wal_dir: str | None = None,
    ):
        if handle_multival not in ("ARRAY", "OVERWRITE"):
            raise ValueError("handle_multival must be ARRAY or OVERWRITE")
        self.handle_multival = handle_multival
        self.commit_size = commit_size
        self.wal_dir = wal_dir

    def transform(self, source: Graph | Iterable[Triple]) -> NeoSemanticsResult:
        """Run the import.  Transformation and loading are one pass that
        writes through the (indexed) store, as n10s writes through Neo4j's
        transactional layer: every statement creates serialized change
        records in the transaction state, and every commit flushes them to
        a write-ahead log with an fsync."""
        start = time.perf_counter()
        resolver = NameResolver(use_prefixes=True)
        store = PropertyGraphStore(property_indexes=(URI_KEY,))
        stats = NeoSemanticsStats()
        tx_state: dict[int, str] = {}
        with tempfile.NamedTemporaryFile(
            mode="w", encoding="utf-8", prefix="n10s-wal-",
            suffix=".log", dir=self.wal_dir, delete=True,
        ) as wal:
            for triple in source:
                stats.triples += 1
                self._import_triple(store, resolver, triple, stats)
                # Transaction state: one serialized change record per
                # write command, kept until commit (read-your-own-writes).
                tx_state[len(tx_state)] = json.dumps(
                    {"s": str(triple.s), "p": triple.p.value, "o": str(triple.o)}
                )
                if len(tx_state) >= self.commit_size:
                    self._commit(wal, tx_state, stats)
                    tx_state = {}
            if tx_state:
                self._commit(wal, tx_state, stats)
        elapsed = time.perf_counter() - start
        return NeoSemanticsResult(
            store=store, resolver=resolver, stats=stats, combined_seconds=elapsed
        )

    @staticmethod
    def _commit(wal, tx_state: dict[int, str], stats: NeoSemanticsStats) -> None:
        """A Neo4j-style transaction commit: write the batch's change
        records to the WAL, checksum them, and fsync the log."""
        record = "\n".join(tx_state.values())
        stats.wal_bytes += len(record)
        stats.wal_checksum = zlib.crc32(record.encode("utf-8"), stats.wal_checksum)
        wal.write(record)
        wal.write("\n")
        wal.flush()
        os.fsync(wal.fileno())
        stats.commits += 1

    # ------------------------------------------------------------------ #

    def _node_for(
        self,
        store: PropertyGraphStore,
        subject: Subject,
        stats: NeoSemanticsStats,
    ) -> PGNode:
        node_id = subject.value if isinstance(subject, IRI) else f"_:{subject.label}"
        if store.graph.has_node(node_id):
            return store.graph.get_node(node_id)
        node = store.add_node(
            node_id, labels={RESOURCE_LABEL}, properties={URI_KEY: node_id}
        )
        stats.nodes += 1
        return node

    def _import_triple(
        self,
        store: PropertyGraphStore,
        resolver: NameResolver,
        triple: Triple,
        stats: NeoSemanticsStats,
    ) -> None:
        subject_node = self._node_for(store, triple.s, stats)
        if triple.p == _TYPE and isinstance(triple.o, IRI):
            store.add_label(subject_node.id, resolver.name_for(triple.o.value))
            return
        if isinstance(triple.o, (IRI, BlankNode)):
            target_node = self._node_for(store, triple.o, stats)
            rel_type = resolver.name_for(triple.p.value)
            edge_id = f"{subject_node.id}|{rel_type}|{target_node.id}"
            if edge_id not in store.graph.edges:
                store.add_edge(
                    subject_node.id, target_node.id, labels={rel_type},
                    edge_id=edge_id,
                )
                stats.relationships += 1
            return
        # Literal object: node property with datatype erasure.
        key = resolver.name_for(triple.p.value)
        value = self._erase(triple.o)
        existing = subject_node.properties.get(key)
        if self.handle_multival == "OVERWRITE":
            subject_node.properties[key] = value
            stats.properties_set += 1
            return
        if existing is None:
            subject_node.properties[key] = value
        elif isinstance(existing, list):
            if value in existing:
                stats.values_merged += 1
            else:
                existing.append(value)
        else:
            if existing == value:
                stats.values_merged += 1
            else:
                subject_node.properties[key] = [existing, value]
        stats.properties_set += 1

    @staticmethod
    def _erase(literal: Literal) -> object:
        """n10s value conversion: native types, custom datatypes and
        language tags erased."""
        return encode_literal_value(literal, typed=True)


def neosemantics_transform(
    source: Graph | Iterable[Triple],
    handle_multival: str = "ARRAY",
) -> NeoSemanticsResult:
    """Module-level convenience wrapper."""
    return NeoSemanticsTransformer(handle_multival).transform(source)


# --------------------------------------------------------------------- #
# Query generation (the paper's Q22-style NeoSemantics Cypher variants)
# --------------------------------------------------------------------- #

def cypher_for_class_property(
    resolver: NameResolver, class_iri: str, predicate: str
) -> str:
    """The NeoSemantics Cypher for ``SELECT ?e ?v { ?e a C ; p ?v }``.

    Matches the paper's published NeoSemantics variant of Q22: a UNION ALL
    of the relationship form and the UNWIND-over-property form.
    """
    label = resolver.name_for(class_iri)
    key = resolver.name_for(predicate)
    return (
        f"MATCH (node:{label})-[:{key}]->(tn)\n"
        f"RETURN node.uri AS node_uri, tn.uri AS v\n"
        f"UNION ALL\n"
        f"MATCH (node:{label})\n"
        f"UNWIND node.{key} AS v\n"
        f"RETURN node.uri AS node_uri, v"
    )
