"""Lossy baseline transformers the paper compares S3PG against."""

from .neosemantics import (
    NeoSemanticsResult,
    NeoSemanticsStats,
    NeoSemanticsTransformer,
    neosemantics_transform,
)
from .rdf2pg import (
    ATTRIBUTE,
    EDGE,
    PropertyRealization,
    Rdf2pgResult,
    Rdf2pgStats,
    Rdf2pgTransformer,
    rdf2pg_transform,
)

__all__ = [
    "ATTRIBUTE",
    "EDGE",
    "NeoSemanticsResult",
    "NeoSemanticsStats",
    "NeoSemanticsTransformer",
    "PropertyRealization",
    "Rdf2pgResult",
    "Rdf2pgStats",
    "Rdf2pgTransformer",
    "neosemantics_transform",
    "rdf2pg_transform",
]
