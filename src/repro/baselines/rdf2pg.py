"""rdf2pg baseline: schema-dependent direct database mapping.

Reimplements the *direct database mapping* variant of rdf2pg [Angles,
Thakkar, Tomaszuk; IEEE Access 2020] that the paper compares against.
rdf2pg derives a relational-style typed database schema from the graph's
schema and maps each property to exactly **one** realization:

* properties whose schema mentions any non-literal (object) type become
  **edges only** — literal values of the same property are dropped (the
  dominant loss mode on multi-type heterogeneous properties, down to ~30%
  accuracy in Table 6);
* properties with only literal types become **typed attributes** with a
  single declared datatype (the majority/first datatype in the schema) —
  values of other datatypes and language-tagged values are dropped (the
  loss mode on multi-type homogeneous literal properties, 84-99%);
* blank-node subjects and objects are not representable in the direct
  database mapping and are skipped.

Architecturally faithful pipeline: in-memory transformation producing a
YARS-PG serialization (rdf2pg's native output), then a CSV conversion
(the paper's "enhanced Neo4JWriter") that is bulk-loaded — so the
transformation does more passes and holds more intermediate state than
S3PG, which is why it is slower (Table 4) and heavier on RAM.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..core.data_transform import encode_literal_value
from ..core.naming import NameResolver
from ..namespaces import RDF_TYPE
from ..pg.csv_io import export_csv, import_csv
from ..pg.model import PGNode, PropertyGraph
from ..pg.store import PropertyGraphStore
from ..pg.yarspg import export_yarspg
from ..rdf.graph import Graph
from ..rdf.terms import IRI, BlankNode, Literal, Triple
from ..shacl.model import LiteralType, ShapeSchema

_TYPE = IRI(RDF_TYPE)

#: Attribute realization: property values stored as typed node attributes.
ATTRIBUTE = "attribute"
#: Edge realization: property values stored as relationships.
EDGE = "edge"


@dataclass
class Rdf2pgStats:
    """Counters for one rdf2pg run, including what was dropped."""

    triples: int = 0
    nodes: int = 0
    edges: int = 0
    attributes: int = 0
    dropped_literals: int = 0
    dropped_iris: int = 0
    dropped_bnodes: int = 0
    dropped_lang_tagged: int = 0
    dropped_wrong_datatype: int = 0


@dataclass
class PropertyRealization:
    """The single realization rdf2pg chose for one predicate."""

    predicate: str
    kind: str  # ATTRIBUTE | EDGE
    primary_datatype: str | None = None


@dataclass
class Rdf2pgResult:
    """Output of an rdf2pg run, with intermediate serializations."""

    store: PropertyGraphStore
    resolver: NameResolver
    realizations: dict[str, PropertyRealization]
    stats: Rdf2pgStats = field(default_factory=Rdf2pgStats)
    transform_seconds: float = 0.0
    load_seconds: float = 0.0
    yarspg_size: int = 0

    @property
    def graph(self) -> PropertyGraph:
        """The loaded property graph."""
        return self.store.graph


class Rdf2pgTransformer:
    """The schema-dependent direct database mapping (see module docstring).

    Args:
        shape_schema: the schema rdf2pg derives its typed database schema
            from (the original uses RDFS; feeding it the same SHACL shapes
            the paper extracts keeps the comparison fair).
    """

    def __init__(self, shape_schema: ShapeSchema):
        self.shape_schema = shape_schema
        self._realizations = self._decide_realizations(shape_schema)

    @staticmethod
    def _decide_realizations(schema: ShapeSchema) -> dict[str, PropertyRealization]:
        """One typed realization per predicate, derived from the schema.

        The declared attribute type is the *first* literal type of the
        property's shape — shape extractors (and hand-written schemas)
        list the dominant datatype first.
        """
        first_datatype: dict[str, str] = {}
        has_non_literal: dict[str, bool] = {}
        for _, phi in schema.all_property_shapes():
            for vt in phi.value_types:
                if isinstance(vt, LiteralType):
                    first_datatype.setdefault(phi.path, vt.datatype)
                else:
                    has_non_literal[phi.path] = True
        realizations: dict[str, PropertyRealization] = {}
        for predicate, datatype in first_datatype.items():
            if has_non_literal.get(predicate):
                realizations[predicate] = PropertyRealization(predicate, EDGE)
            else:
                realizations[predicate] = PropertyRealization(
                    predicate, ATTRIBUTE, primary_datatype=datatype
                )
        for predicate in has_non_literal:
            realizations.setdefault(predicate, PropertyRealization(predicate, EDGE))
        return realizations

    def realization_for(self, predicate: str) -> PropertyRealization:
        """The realization for ``predicate`` (defaults to EDGE when the
        schema does not mention it, as unseen predicates link resources)."""
        return self._realizations.get(
            predicate, PropertyRealization(predicate, EDGE)
        )

    # ------------------------------------------------------------------ #

    def transform(self, source: Graph | Iterable[Triple]) -> Rdf2pgResult:
        """Run transformation (to YARS-PG + CSV) and bulk load."""
        start = time.perf_counter()
        resolver = NameResolver(use_prefixes=True)
        pg = PropertyGraph()
        stats = Rdf2pgStats()
        if isinstance(source, Graph):
            triples: Iterable[Triple] = source
        else:
            triples = list(source)
        for triple in triples:
            stats.triples += 1
            self._map_triple(pg, resolver, triple, stats)
        # rdf2pg's native output is a YARS-PG document; the enhanced
        # Neo4JWriter then converts to CSV for efficient bulk loading.
        yarspg_text = export_yarspg(pg)
        nodes_csv, edges_csv = export_csv(pg)
        transform_seconds = time.perf_counter() - start

        start = time.perf_counter()
        loaded = import_csv(nodes_csv, edges_csv)
        store = PropertyGraphStore(property_indexes=("iri",))
        store.bulk_load(loaded)
        load_seconds = time.perf_counter() - start

        return Rdf2pgResult(
            store=store,
            resolver=resolver,
            realizations=dict(self._realizations),
            stats=stats,
            transform_seconds=transform_seconds,
            load_seconds=load_seconds,
            yarspg_size=len(yarspg_text),
        )

    # ------------------------------------------------------------------ #

    def _node_for(self, pg: PropertyGraph, iri: IRI, stats: Rdf2pgStats) -> PGNode:
        node_id = iri.value
        if pg.has_node(node_id):
            return pg.get_node(node_id)
        node = pg.add_node(node_id, labels=set(), properties={"iri": node_id})
        stats.nodes += 1
        return node

    def _map_triple(
        self,
        pg: PropertyGraph,
        resolver: NameResolver,
        triple: Triple,
        stats: Rdf2pgStats,
    ) -> None:
        if isinstance(triple.s, BlankNode) or isinstance(triple.o, BlankNode):
            stats.dropped_bnodes += 1
            return
        subject_node = self._node_for(pg, triple.s, stats)
        if triple.p == _TYPE and isinstance(triple.o, IRI):
            subject_node.labels.add(resolver.name_for(triple.o.value))
            return
        realization = self.realization_for(triple.p.value)
        if realization.kind == EDGE:
            if isinstance(triple.o, Literal):
                # Literal value of an object property: unrepresentable in
                # the direct database mapping -> dropped.
                stats.dropped_literals += 1
                return
            target_node = self._node_for(pg, triple.o, stats)
            rel_type = resolver.name_for(triple.p.value)
            edge_id = f"{subject_node.id}|{rel_type}|{target_node.id}"
            if edge_id not in pg.edges:
                pg.add_edge(
                    subject_node.id, target_node.id, labels={rel_type},
                    edge_id=edge_id,
                )
                stats.edges += 1
            return
        # ATTRIBUTE realization.
        if not isinstance(triple.o, Literal):
            # IRI value of a datatype property: unrepresentable -> dropped.
            stats.dropped_iris += 1
            return
        if triple.o.language is not None:
            stats.dropped_lang_tagged += 1
            return
        if triple.o.datatype != realization.primary_datatype:
            stats.dropped_wrong_datatype += 1
            return
        key = resolver.name_for(triple.p.value)
        subject_node.append_property(
            key, encode_literal_value(triple.o, typed=True)
        )
        stats.attributes += 1


def rdf2pg_transform(
    source: Graph | Iterable[Triple], shape_schema: ShapeSchema
) -> Rdf2pgResult:
    """Module-level convenience wrapper."""
    return Rdf2pgTransformer(shape_schema).transform(source)


# --------------------------------------------------------------------- #
# Query generation
# --------------------------------------------------------------------- #

def cypher_for_class_property(
    result: Rdf2pgResult, class_iri: str, predicate: str
) -> str:
    """The rdf2pg Cypher for ``SELECT ?e ?v { ?e a C ; p ?v }``.

    The realization dictates the single available access path: an edge
    match for object properties, an UNWIND over the typed attribute for
    datatype properties.
    """
    label = result.resolver.name_for(class_iri)
    key = result.resolver.name_for(predicate)
    realization = result.realizations.get(predicate)
    if realization is not None and realization.kind == ATTRIBUTE:
        return (
            f"MATCH (node:{label})\n"
            f"UNWIND node.{key} AS v\n"
            f"RETURN node.iri AS node_iri, v"
        )
    return (
        f"MATCH (node:{label})-[:{key}]->(tn)\n"
        f"RETURN node.iri AS node_iri, tn.iri AS v"
    )
