"""Deterministic union of shard outputs into one transformed graph.

The theoretical license for this module is Proposition 4.3: ``F_dt`` is
monotone, ``F_dt(G ∪ Δ) ≅ F_dt(G) ∪ F_dt(Δ)``, so converting the shards
of a subject partition independently and unioning the results yields the
same property graph as converting the whole input serially.  "Union"
here is reconciliation by deterministic id — entity nodes are keyed on
their IRI, literal nodes on (datatype, language, lexical), edges on
``src|rel|dst`` — performed by :meth:`PropertyGraph.merge_from`.

Beyond the graph union, the merge also reconciles the **schema
extensions** the workers minted while converting off-schema triples
(fallback edge types, literal node types, external classes): each
extension is replayed on the parent's registry in sorted order, and the
replayed name is checked against the worker-minted one.  A mismatch can
only arise from cross-shard naming collisions resolved in different
orders; it raises :class:`EngineError`, which the executor answers by
degrading the whole run to the serial path — correctness over speed.
"""

from __future__ import annotations

from ..core.config import TransformOptions
from ..core.data_transform import DataTransformStats, TransformedGraph
from ..core.schema_transform import SchemaTransformResult
from ..errors import EngineError
from ..pg.model import MergeStats, PropertyGraph

#: Prefix of literal-node identifiers (see ``literal_node_id``).
_LITERAL_PREFIX = "lit:"


def merge_outcomes(
    outcomes: list,
    schema_result: SchemaTransformResult,
    options: TransformOptions,
    strict: bool = False,
) -> tuple[TransformedGraph, MergeStats]:
    """Union shard outcomes into one :class:`TransformedGraph`.

    Args:
        outcomes: the per-shard :class:`~repro.engine.worker.ShardOutcome`
            objects, in any order (they are sorted by shard id first).
        schema_result: the parent's schema transformation result; its
            registry absorbs the workers' extensions.
        options: the transformation options of the run.
        strict: assert the pure-union invariant (engine debug mode) —
            any conflicting shared element raises ``GraphError``.

    Returns:
        The merged transformed graph and the aggregate merge statistics.

    Raises:
        EngineError: when worker-minted names cannot be reconciled.
    """
    replay_extensions(outcomes, schema_result)

    merged = PropertyGraph()
    totals = MergeStats()
    stats = DataTransformStats()
    for outcome in sorted(outcomes, key=lambda o: o.shard_id):
        shard_merge = merged.merge_from(outcome.graph, strict=strict)
        totals.nodes_added += shard_merge.nodes_added
        totals.nodes_merged += shard_merge.nodes_merged
        totals.edges_added += shard_merge.edges_added
        totals.edges_merged += shard_merge.edges_merged
        totals.conflicts += shard_merge.conflicts
        stats.triples_processed += outcome.stats.triples_processed
        stats.key_values += outcome.stats.key_values
        stats.skipped += outcome.stats.skipped

    # Creation counters are recomputed from the union: workers that
    # materialized the same cross-shard entity each counted it once.
    stats.edges = merged.edge_count()
    stats.literal_nodes = sum(
        1 for node_id in merged.nodes if node_id.startswith(_LITERAL_PREFIX)
    )
    stats.entity_nodes = merged.node_count() - stats.literal_nodes

    transformed = TransformedGraph(
        graph=merged,
        schema_result=schema_result,
        options=options,
        stats=stats,
    )
    return transformed, totals


def replay_extensions(outcomes: list, schema_result: SchemaTransformResult) -> int:
    """Apply the workers' registry extensions to the parent registry.

    Replays in sorted input order (deterministic regardless of shard
    timing) and verifies that every worker-minted name matches what the
    parent mints from the same base state.

    Returns:
        The number of extensions applied.

    Raises:
        EngineError: on any name disagreement.
    """
    registry = schema_result.registry
    applied = 0

    for class_iri, label in sorted(
        {pair for o in outcomes for pair in o.new_external_classes}
    ):
        minted = registry.ensure_external_class(class_iri)
        if minted != label:
            raise EngineError(
                f"shard minted label {label!r} for external class "
                f"{class_iri}, but the merged registry mints {minted!r}"
            )
        applied += 1

    for datatype, label in sorted(
        {pair for o in outcomes for pair in o.new_literal_types}
    ):
        minted = registry.ensure_literal_type(datatype).label
        if minted != label:
            raise EngineError(
                f"shard minted label {label!r} for literal type "
                f"{datatype}, but the merged registry mints {minted!r}"
            )
        applied += 1

    for predicate, rel_type in sorted(
        {pair for o in outcomes for pair in o.new_fallbacks}
    ):
        minted = registry.fallback_property(predicate).rel_type
        if minted != rel_type:
            raise EngineError(
                f"shard minted relationship type {rel_type!r} for "
                f"predicate {predicate}, but the merged registry mints "
                f"{minted!r}"
            )
        applied += 1

    return applied
