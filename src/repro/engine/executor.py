"""The parallel transformation engine: partition, execute, merge.

Orchestrates one sharded run of Algorithm 1:

1. **partition** — split the input into subject-hash shards and collect
   the global entity-type map (:mod:`repro.engine.partition`);
2. **schema** — pre-register fallback node types for every ``rdf:type``
   IRI not covered by the shapes, so all workers mint names from one
   registry state;
3. **execute** — run each shard through a :class:`ShardTransformer` in a
   ``ProcessPoolExecutor``; a shard that times out or crashes is retried
   once and then degraded to an in-process serial run, so a sick worker
   can slow the load down but never fail it;
4. **merge** — union the shard property graphs (a pure union by
   monotonicity, asserted in debug mode) and replay the workers' schema
   extensions; an irreconcilable extension degrades the whole run to the
   classic serial transformation.

Worker processes receive the heavyweight shared state (schema result,
entity-type map, in-memory shards) by fork inheritance where the OS
supports it, falling back to a one-time pickle per worker elsewhere.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing
import os
import tempfile
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from ..core.config import DEFAULT_OPTIONS, TransformOptions
from ..core.data_transform import DataTransformer, TransformedGraph
from ..core.schema_transform import SchemaTransformResult
from ..core.streaming import StreamingDataTransformer
from ..errors import EngineError, ReproError, TransformError
from ..rdf.graph import Graph
from ..rdf.terms import Triple
from . import worker as worker_module
from .instrumentation import EngineInstrumentation, ShardRecord
from .merge import merge_outcomes
from .partition import Partition, partition_file, partition_graph
from .worker import (
    ShardOutcome,
    ShardTask,
    init_worker,
    run_shard_inprocess,
    run_shard_task,
)


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of one parallel engine run.

    Attributes:
        max_workers: worker processes (default: ``os.cpu_count()``).
            ``1`` runs the shards sequentially in-process — same
            partition/merge semantics, no pool.
        shards: number of subject-hash shards (default: ``max_workers``).
            More shards than workers smooths load imbalance at the cost
            of more merge work.
        shard_timeout_s: per-shard wall-clock budget; a shard exceeding
            it is retried once, then run serially in the parent.  None
            waits indefinitely.
        debug: assert the pure-union merge invariant (raises
            ``GraphError`` on any cross-shard disagreement).
        start_method: force a multiprocessing start method; None picks
            ``fork`` when available (cheapest state sharing).
    """

    max_workers: int | None = None
    shards: int | None = None
    shard_timeout_s: float | None = None
    debug: bool = False
    start_method: str | None = None

    def effective_workers(self) -> int:
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, workers)


class ParallelEngine:
    """Sharded, process-parallel execution of the S3PG data transformation.

    Args:
        schema_result: output of the (serial) schema transformation; its
            registry absorbs the extensions minted during the run.
        options: transformation options, matching the schema transform.
        config: engine knobs; defaults to one worker per CPU.

    After a run, :attr:`instrumentation` holds the phase timers, shard
    records, and counters of that run.
    """

    def __init__(
        self,
        schema_result: SchemaTransformResult,
        options: TransformOptions = DEFAULT_OPTIONS,
        config: EngineConfig | None = None,
    ):
        self.schema_result = schema_result
        self.options = options
        self.config = config or EngineConfig()
        self.instrumentation = EngineInstrumentation()

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #

    def transform(self, source: Graph | Iterable[Triple]) -> TransformedGraph:
        """Transform an in-memory graph (or triple iterable) in parallel."""
        inst = self._begin()
        with inst.phase("partition"):
            partition = partition_graph(source, self._n_shards())
        return self._execute(partition, inst)

    def transform_file(
        self, path: str | Path, shard_dir: str | Path | None = None
    ) -> TransformedGraph:
        """Transform an N-Triples file in parallel.

        Args:
            path: the input document.
            shard_dir: where the per-shard files are written; a temporary
                directory (removed afterwards) when omitted.
        """
        path = Path(path)
        inst = self._begin()
        tmp: tempfile.TemporaryDirectory | None = None
        if shard_dir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-shards-")
            shard_dir = tmp.name
        try:
            with inst.phase("partition"):
                partition = partition_file(path, self._n_shards(), shard_dir)
            return self._execute(partition, inst, serial_file=path)
        finally:
            if tmp is not None:
                tmp.cleanup()

    # ------------------------------------------------------------------ #
    # Run phases
    # ------------------------------------------------------------------ #

    def _begin(self) -> EngineInstrumentation:
        self.instrumentation = EngineInstrumentation()
        return self.instrumentation

    def _n_shards(self) -> int:
        return max(1, self.config.shards or self.config.effective_workers())

    def _execute(
        self,
        partition: Partition,
        inst: EngineInstrumentation,
        serial_file: Path | None = None,
    ) -> TransformedGraph:
        inst.count("triples", partition.triples_total)
        inst.count("shards", partition.n_shards)

        try:
            with inst.phase("schema"):
                self._preregister_unknown_classes(partition, inst)

            with inst.phase("execute") as execute_span:
                outcomes = self._run_tasks(partition, inst, execute_span)

            try:
                with inst.phase("merge"):
                    transformed, merge_stats = merge_outcomes(
                        outcomes,
                        self.schema_result,
                        self.options,
                        strict=self.config.debug,
                    )
                inst.count("merge_conflicts", merge_stats.conflicts)
                inst.count("nodes_reconciled", merge_stats.nodes_merged)
            except EngineError:
                # Shard outputs could not be reconciled (cross-shard naming
                # collision): correctness over speed — redo serially.
                inst.count("full_serial_fallbacks")
                with inst.phase("serial_fallback"):
                    transformed = self._serial_transform(partition, serial_file)
        finally:
            inst.finish()
        return transformed

    def _preregister_unknown_classes(
        self, partition: Partition, inst: EngineInstrumentation
    ) -> None:
        mapping = self.schema_result.mapping
        unknown = sorted(
            iri for iri in partition.type_iris
            if mapping.label_for_class(iri) is None
        )
        if not unknown:
            return
        if self.options.on_unknown == "error":
            raise TransformError(f"no shape targets class {unknown[0]}")
        if self.options.on_unknown == "skip":
            return
        registry = self.schema_result.registry
        for iri in unknown:
            registry.ensure_external_class(iri)
        inst.count("preregistered_classes", len(unknown))

    def _serial_transform(
        self, partition: Partition, serial_file: Path | None
    ) -> TransformedGraph:
        if serial_file is not None:
            return StreamingDataTransformer(
                self.schema_result, self.options
            ).transform_file(serial_file)
        triples = itertools.chain.from_iterable(partition.shard_triples)
        return DataTransformer(self.schema_result, self.options).transform(triples)

    # ------------------------------------------------------------------ #
    # Task execution
    # ------------------------------------------------------------------ #

    def _run_tasks(
        self,
        partition: Partition,
        inst: EngineInstrumentation,
        execute_span,
    ) -> list[ShardOutcome]:
        workers = min(self.config.effective_workers(), partition.n_shards)
        inst.count("workers", workers)
        shared = {
            "schema_result": self.schema_result,
            "options": self.options,
            "entity_types": partition.entity_types,
            "type_keys": partition.type_keys,
            "shard_triples": partition.shard_triples,
            # Workers parent their shard spans on the execute span, so
            # the re-assembled trace nests per-shard work correctly.
            "trace": inst.execute_context(execute_span),
        }

        use_fork = False
        if workers > 1:
            method = self.config.start_method
            if method is None and "fork" in multiprocessing.get_all_start_methods():
                method = "fork"
            use_fork = method == "fork"
        tasks = self._build_tasks(partition, payload_in_task=not use_fork)

        if workers <= 1:
            return [
                self._finish_shard(
                    run_shard_inprocess(task, shared), inst, retries=0,
                    ran_serial=True,
                )
                for task in tasks
            ]

        outcomes: list[ShardOutcome] = []
        try:
            if use_fork:
                context = multiprocessing.get_context("fork")
                worker_module._SHARED.clear()
                worker_module._SHARED.update(shared)
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                )
            else:
                context = (
                    multiprocessing.get_context(method)
                    if self.config.start_method else None
                )
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=context,
                    initializer=init_worker,
                    initargs=(shared,),
                )
        except (OSError, ValueError):
            # No pool available in this environment (e.g. missing
            # semaphore support): run everything in-process.
            inst.count("pool_unavailable")
            return [
                self._finish_shard(
                    run_shard_inprocess(task, shared), inst, retries=0,
                    ran_serial=True,
                )
                for task in tasks
            ]

        try:
            futures = [executor.submit(run_shard_task, task) for task in tasks]
            for task, future in zip(tasks, futures):
                outcomes.append(
                    self._collect_shard(executor, task, future, shared, inst)
                )
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
            worker_module._SHARED.clear()
        return outcomes

    def _build_tasks(
        self, partition: Partition, payload_in_task: bool
    ) -> list[ShardTask]:
        tasks = []
        for index in range(partition.n_shards):
            if partition.shard_paths is not None:
                tasks.append(
                    ShardTask(index, path=str(partition.shard_paths[index]))
                )
            elif payload_in_task:
                tasks.append(
                    ShardTask(index, triples=tuple(partition.shard_triples[index]))
                )
            else:
                tasks.append(ShardTask(index))
        return tasks

    def _collect_shard(
        self,
        executor: concurrent.futures.ProcessPoolExecutor,
        task: ShardTask,
        future: concurrent.futures.Future,
        shared: dict,
        inst: EngineInstrumentation,
    ) -> ShardOutcome:
        timeout = self.config.shard_timeout_s
        try:
            return self._finish_shard(future.result(timeout=timeout), inst)
        except ReproError:
            # A deterministic transformation error (e.g. on_unknown=
            # "error"): retrying cannot help, surface it to the caller.
            raise
        except concurrent.futures.TimeoutError:
            inst.count("shard_timeouts")
        except Exception:
            inst.count("shard_failures")

        # Retry once through the pool, then degrade to in-process serial.
        try:
            retry_future = executor.submit(run_shard_task, task)
            return self._finish_shard(
                retry_future.result(timeout=timeout), inst, retries=1
            )
        except ReproError:
            raise
        except Exception:
            inst.count("serial_fallbacks")
            return self._finish_shard(
                run_shard_inprocess(task, shared), inst, retries=1,
                ran_serial=True,
            )

    def _finish_shard(
        self,
        outcome: ShardOutcome,
        inst: EngineInstrumentation,
        retries: int = 0,
        ran_serial: bool = False,
    ) -> ShardOutcome:
        inst.record_shard(
            ShardRecord(
                shard_id=outcome.shard_id,
                triples=outcome.stats.triples_processed,
                wall_s=outcome.wall_s,
                cpu_s=outcome.cpu_s,
                retries=retries,
                ran_serial=ran_serial,
            )
        )
        inst.adopt_spans(outcome.spans)
        return outcome
