"""Parallel partitioned transformation engine.

Shards an RDF input by subject hash, transforms the shards in a process
pool, and deterministically unions the per-shard property graphs — an
execution strategy licensed by the monotonicity of ``F_dt``
(Proposition 4.3): the transformation of a union of inputs is the union
of their transformations.

Typical use, via the pipeline::

    from repro import S3PG
    result = S3PG().transform(graph, shapes, parallel=4)

or directly for file-based loads::

    from repro.core import transform_schema
    from repro.engine import EngineConfig, ParallelEngine

    engine = ParallelEngine(transform_schema(shapes),
                            config=EngineConfig(max_workers=8))
    transformed = engine.transform_file("data.nt")
    print(engine.instrumentation.render_text())
"""

from .executor import EngineConfig, ParallelEngine
from .instrumentation import EngineInstrumentation, PhaseRecord, ShardRecord
from .merge import merge_outcomes, replay_extensions
from .partition import Partition, partition_file, partition_graph, shard_of
from .worker import ShardOutcome, ShardTask, ShardTransformer

__all__ = [
    "EngineConfig",
    "EngineInstrumentation",
    "Partition",
    "ParallelEngine",
    "PhaseRecord",
    "ShardOutcome",
    "ShardRecord",
    "ShardTask",
    "ShardTransformer",
    "merge_outcomes",
    "partition_file",
    "partition_graph",
    "replay_extensions",
    "shard_of",
]
