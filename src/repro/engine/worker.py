"""Per-shard execution of Algorithm 1 (the parallel engine's unit of work).

A :class:`ShardTransformer` runs the ordinary two-phase data
transformation over one subject-hash shard, with two deviations that make
the shard outputs unionable:

* phase 2 consults the **global** entity-type map (collected by the
  partitioner), so the edge-vs-literal decision for objects homed in
  other shards matches what a serial run would decide;
* when an edge's target entity is homed in another shard, the worker
  materializes the target node locally — deterministically, from the
  entity's IRI and global types — so every shard output is a valid
  property graph on its own.  Because node ids and labels are pure
  functions of the RDF terms, the home shard produces the *identical*
  node and the merge is a pure union (Proposition 4.3).

Workers run in separate processes.  The heavyweight shared state (schema
result, entity-type map, in-memory shards) travels either by fork
inheritance of the module-level :data:`_SHARED` dict (POSIX, free) or by
a one-time pickle through the pool initializer (spawn platforms); the
per-task payload is only a shard id and an optional file path, so task
pickling stays O(1).
"""

from __future__ import annotations

import pickle
import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from .. import obs
from ..core.config import TransformOptions
from ..core.data_transform import DataTransformer, DataTransformStats, node_id_for
from ..core.schema_transform import SchemaTransformResult
from ..namespaces import RDF_TYPE
from ..pg.model import PropertyGraph
from ..rdf.ntriples import iter_ntriples
from ..rdf.terms import IRI, Subject, Triple

_TYPE = IRI(RDF_TYPE)

#: Process-wide shared context: populated in the parent before forking,
#: or via the pool initializer on spawn platforms.
_SHARED: dict[str, object] = {}


@dataclass(frozen=True)
class ShardTask:
    """One picklable unit of work: which shard, and where its triples live.

    ``path`` is set for file-backed shards; ``triples`` carries the
    payload only on spawn platforms (on fork it stays None and the worker
    reads the shard from the inherited shared context).
    """

    shard_id: int
    path: str | None = None
    triples: tuple[Triple, ...] | None = None


@dataclass
class ShardOutcome:
    """Everything a worker sends back for one shard."""

    shard_id: int
    graph: PropertyGraph
    stats: DataTransformStats
    wall_s: float
    cpu_s: float
    #: Registry extensions minted while converting this shard, as
    #: (input IRI, minted name) pairs — replayed and verified on merge.
    new_fallbacks: tuple[tuple[str, str], ...] = ()
    new_literal_types: tuple[tuple[str, str], ...] = ()
    new_external_classes: tuple[tuple[str, str], ...] = ()
    #: Obs spans recorded while converting this shard (serialized dicts);
    #: adopted into the coordinator's trace, re-parented on the execute
    #: span whose context travelled in the shared state.
    spans: tuple[dict, ...] = ()


class ShardTransformer(DataTransformer):
    """Algorithm 1 over one shard, with globally consistent decisions.

    Args:
        schema_result: the (pre-extended) schema transformation result.
        options: must match the schema transformation's options.
        entity_types: the global entity-type map from the partitioner.
        type_keys: the global sorted-type-key map (memoized resolution).
    """

    def __init__(
        self,
        schema_result: SchemaTransformResult,
        options: TransformOptions,
        entity_types: dict[Subject, list[IRI]],
        type_keys: dict[Subject, tuple[str, ...]],
    ):
        super().__init__(schema_result, options)
        self.entity_types = entity_types
        self.type_keys = type_keys

    def transform_shard(
        self, source: str | Path | Iterable[Triple]
    ) -> tuple[PropertyGraph, DataTransformStats]:
        """Run both phases over one shard (file path or triple sequence)."""
        pg = PropertyGraph()
        stats = DataTransformStats()

        # Phase 1 — create nodes for entities typed in this shard.  The
        # global map is authoritative for the label set; the local
        # collection only covers inputs whose type statements eluded the
        # partitioner's raw-line scan.
        with obs.span("shard.phase1_nodes") as phase1:
            local_types: dict[Subject, list[IRI]] = {}
            for triple in self._iter(source):
                stats.triples_processed += 1
                if triple.p == _TYPE and isinstance(triple.o, IRI):
                    local_types.setdefault(triple.s, []).append(triple.o)
            for entity, types in local_types.items():
                global_types = self.entity_types.get(entity, types)
                self._create_entity_node(pg, entity, list(global_types), stats)
            phase1.set("entities", len(local_types))

        # Phase 2 — property statements, with global entity knowledge.
        with obs.span("shard.phase2_properties") as phase2:
            resolution_cache: dict = {}
            for triple in self._iter(source):
                if triple.p == _TYPE and isinstance(triple.o, IRI):
                    continue
                self._convert_property_triple(
                    pg, triple, self.entity_types, self.type_keys,
                    resolution_cache, stats,
                )
            phase2.set("triples", stats.triples_processed)
        return pg, stats

    def _iter(self, source: str | Path | Iterable[Triple]) -> Iterator[Triple]:
        if isinstance(source, (str, Path)):
            return iter_ntriples(Path(source))
        return iter(source)

    # ------------------------------------------------------------------ #
    # Hooks that differ from the serial transformer
    # ------------------------------------------------------------------ #

    def _entity_target_node(self, pg, obj, entity_types, stats) -> str:
        """Materialize edge targets homed in other shards on demand."""
        node = self._create_entity_node(
            pg, obj, list(self.entity_types[obj]), stats
        )
        return node.id

    def _subject_node(self, pg, subject, stats):
        """Subjects typed in another shard still get their full labels."""
        types = self.entity_types.get(subject)
        if types and not pg.has_node(node_id_for(subject)):
            return self._create_entity_node(pg, subject, list(types), stats)
        return super()._subject_node(pg, subject, stats)


# --------------------------------------------------------------------- #
# Process-pool entry points
# --------------------------------------------------------------------- #

def init_worker(shared: dict) -> None:
    """Pool initializer for spawn platforms: installs the shared context."""
    _SHARED.clear()
    _SHARED.update(shared)


def run_shard_task(task: ShardTask) -> ShardOutcome:
    """Execute one shard inside a worker process."""
    return _execute(task, _SHARED)


def run_shard_inprocess(task: ShardTask, shared: dict) -> ShardOutcome:
    """Serial-fallback execution of one shard in the parent process.

    The schema result is deep-copied (pickle round-trip) first, so the
    in-process run mints registry extensions from exactly the same base
    state as an isolated worker would — keeping its outcome bit-for-bit
    interchangeable with a pooled one.
    """
    shared = dict(shared)
    shared["schema_result"] = pickle.loads(
        pickle.dumps(shared["schema_result"])
    )
    return _execute(task, shared)


def _execute(task: ShardTask, shared: dict) -> ShardOutcome:
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    schema_result: SchemaTransformResult = shared["schema_result"]
    options: TransformOptions = shared["options"]
    mapping = schema_result.mapping

    baseline_fallbacks = set(mapping.fallback)
    baseline_literals = set(mapping.literal_types)
    baseline_classes = set(mapping.classes)

    transformer = ShardTransformer(
        schema_result, options, shared["entity_types"], shared["type_keys"]
    )
    if task.path is not None:
        source: str | Path | Iterable[Triple] = task.path
    elif task.triples is not None:
        source = task.triples
    else:
        source = shared["shard_triples"][task.shard_id]

    # Record this shard's spans in a local tracer, parented on the
    # coordinator's execute span so they re-parent correctly after the
    # round-trip.  The tracer is installed as this process's global one
    # for the duration (restored afterwards — relevant for the
    # in-process serial fallback, which runs in the coordinator).
    context: obs.SpanContext | None = shared.get("trace")
    tracer = obs.Tracer(trace_id=context.trace_id) if context is not None else None
    previous = obs.set_tracer(tracer) if tracer is not None else None
    try:
        if tracer is not None:
            with tracer.span(
                "engine.shard", parent_context=context, cpu=True,
                shard_id=task.shard_id,
            ) as shard_span:
                pg, stats = transformer.transform_shard(source)
                shard_span.set("triples", stats.triples_processed)
        else:
            pg, stats = transformer.transform_shard(source)
    finally:
        if tracer is not None:
            obs.set_tracer(previous)

    return ShardOutcome(
        shard_id=task.shard_id,
        graph=pg,
        stats=stats,
        wall_s=time.perf_counter() - wall0,
        cpu_s=time.process_time() - cpu0,
        new_fallbacks=tuple(sorted(
            (pred, mapping.fallback[pred].rel_type)
            for pred in set(mapping.fallback) - baseline_fallbacks
        )),
        new_literal_types=tuple(sorted(
            (dt, mapping.literal_types[dt].label)
            for dt in set(mapping.literal_types) - baseline_literals
        )),
        new_external_classes=tuple(sorted(
            (iri, mapping.classes[iri].label)
            for iri in set(mapping.classes) - baseline_classes
        )),
        spans=tuple(tracer.serialized()) if tracer is not None else (),
    )
