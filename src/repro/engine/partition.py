"""Subject-hash partitioning of RDF inputs for parallel transformation.

The partitioner exploits the structure of Algorithm 1: both phases group
work by *subject* — phase 1 collects each subject's ``rdf:type``
statements, phase 2 converts each subject's property statements — so
routing every triple to ``shard(hash(subject))`` keeps all per-subject
state (entity typing, key/value record building, array promotion)
strictly shard-local.

Two things deliberately stay global:

* the **entity-type map** ``Psi_ETD`` (subject -> rdf:type objects) is
  collected during the partitioning pass and shared with every shard,
  because phase 2's edge-vs-literal-node decision (Algorithm 1, line 16)
  needs to know whether an *object* — possibly homed in another shard —
  is a typed entity;
* the set of distinct type IRIs, which the engine uses to pre-register
  fallback node types *before* the workers fork, so that all shards mint
  names from the same registry state.

Hashing uses CRC-32 of the deterministic node id, never Python's
randomized ``hash()``, so shard assignment is stable across processes
and runs — a prerequisite for reproducible, resumable parallel loads.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import EngineError
from ..namespaces import RDF_TYPE
from ..rdf.graph import Graph
from ..rdf.ntriples import parse_line
from ..rdf.terms import IRI, Subject, Triple
from ..core.data_transform import node_id_for

_TYPE = IRI(RDF_TYPE)
#: Raw-line marker of a potential ``rdf:type`` statement.
_TYPE_TOKEN = f"<{RDF_TYPE}>"


def shard_of(subject_key: str, n_shards: int) -> int:
    """The shard index for a subject's deterministic node id."""
    return zlib.crc32(subject_key.encode("utf-8")) % n_shards


@dataclass
class Partition:
    """A sharded view of one RDF input plus the global phase-1 state.

    Exactly one of :attr:`shard_triples` (in-memory input) or
    :attr:`shard_paths` (file input) is set.
    """

    n_shards: int
    entity_types: dict[Subject, list[IRI]]
    type_keys: dict[Subject, tuple[str, ...]]
    triples_total: int
    shard_sizes: list[int]
    shard_triples: list[list[Triple]] | None = None
    shard_paths: list[Path] | None = None
    #: All distinct rdf:type object IRIs seen in the input.
    type_iris: set[str] = field(default_factory=set)


def _derive_global_state(
    entity_types: dict[Subject, list[IRI]],
) -> tuple[dict[Subject, tuple[str, ...]], set[str]]:
    type_keys = {
        entity: tuple(sorted(t.value for t in types))
        for entity, types in entity_types.items()
    }
    type_iris = {t.value for types in entity_types.values() for t in types}
    return type_keys, type_iris


def partition_graph(
    source: Graph | Iterable[Triple], n_shards: int
) -> Partition:
    """Split an in-memory graph (or triple iterable) into subject shards.

    One pass over the input routes every triple and simultaneously builds
    the global entity-type map, exactly as phase 1 of Algorithm 1 would.
    """
    if n_shards < 1:
        raise EngineError(f"n_shards must be >= 1, got {n_shards}")
    shards: list[list[Triple]] = [[] for _ in range(n_shards)]
    entity_types: dict[Subject, list[IRI]] = {}
    total = 0
    for triple in source:
        total += 1
        shards[shard_of(node_id_for(triple.s), n_shards)].append(triple)
        if triple.p == _TYPE and isinstance(triple.o, IRI):
            entity_types.setdefault(triple.s, []).append(triple.o)
    sizes = [len(shard) for shard in shards]
    type_keys, type_iris = _derive_global_state(entity_types)
    return Partition(
        n_shards=n_shards,
        entity_types=entity_types,
        type_keys=type_keys,
        triples_total=total,
        shard_sizes=sizes,
        shard_triples=shards,
        type_iris=type_iris,
    )


def partition_file(
    path: str | Path, n_shards: int, shard_dir: str | Path
) -> Partition:
    """Split an N-Triples file into per-shard N-Triples files.

    The input is streamed once with bounded memory (one line at a time
    plus the entity-type map).  Routing works on the raw subject token,
    so most lines are moved without a full parse; only ``rdf:type``
    candidates (needed for the entity-type map) and lines whose subject
    contains escape sequences (needing canonicalization so that every
    spelling of an IRI routes to the same shard) are parsed.

    Blank lines and ``#`` comments are dropped here; malformed triple
    lines are left for the shard workers to report.
    """
    if n_shards < 1:
        raise EngineError(f"n_shards must be >= 1, got {n_shards}")
    path = Path(path)
    shard_dir = Path(shard_dir)
    shard_dir.mkdir(parents=True, exist_ok=True)
    shard_paths = [shard_dir / f"shard-{i:04d}.nt" for i in range(n_shards)]
    entity_types: dict[Subject, list[IRI]] = {}
    sizes = [0] * n_shards
    total = 0
    handles = [p.open("w", encoding="utf-8") for p in shard_paths]
    try:
        with path.open("r", encoding="utf-8") as source:
            for lineno, raw in enumerate(source, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                total += 1
                subject_token = line.split(None, 1)[0]
                if "\\" in line or _TYPE_TOKEN in line:
                    # Slow path: parse to canonicalize the routing key
                    # (escapes can hide any term, including rdf:type)
                    # and/or record the rdf:type statement.
                    triple = parse_line(line, lineno)
                    key = node_id_for(triple.s)
                    if triple.p == _TYPE and isinstance(triple.o, IRI):
                        entity_types.setdefault(triple.s, []).append(triple.o)
                    line = triple.n3()
                elif subject_token.startswith("<"):
                    key = subject_token[1:-1]
                else:
                    key = subject_token
                index = shard_of(key, n_shards)
                handles[index].write(line + "\n")
                sizes[index] += 1
    finally:
        for handle in handles:
            handle.close()
    type_keys, type_iris = _derive_global_state(entity_types)
    return Partition(
        n_shards=n_shards,
        entity_types=entity_types,
        type_keys=type_keys,
        triples_total=total,
        shard_sizes=sizes,
        shard_paths=shard_paths,
        type_iris=type_iris,
    )
