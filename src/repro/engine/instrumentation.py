"""Engine run reporting as a view over the shared observability layer.

Historically this module *collected* per-phase timers and counters
itself; collection now lives in :mod:`repro.obs` — every phase is an
obs span (parented under one ``engine.run`` root span), counters are
per-span counters on that root, and worker-side shard spans are adopted
into the same trace.  :class:`EngineInstrumentation` keeps its original
report surface (``phases`` / ``counters`` / ``shards``, ``as_dict``,
``to_json``, ``render_text``) as a *view* derived from the span tree, so
``benchmarks/bench_parallel_scalability.py`` and the CLI summary line
keep diffing the same JSON shape across PRs.

When a global tracer is configured (``--trace``), the engine's spans
land in it and show up in the exported trace; without one, the view
records into a private tracer so the report always exists.

The shard-skew histogram answers the operational question "did the
subject-hash partitioner balance the load?": with a healthy hash the
max/mean shard ratio stays near 1; a skewed input (one giant subject
neighbourhood) shows up as a long tail bucket.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass

from .. import obs

#: Maximum width of a skew-histogram bar in the text report.
_MAX_BAR = 40


@dataclass
class PhaseRecord:
    """Accumulated wall-clock and process-CPU time of one engine phase."""

    wall_s: float = 0.0
    cpu_s: float = 0.0


@dataclass
class ShardRecord:
    """What one shard cost: its size and where the time went."""

    shard_id: int
    triples: int
    wall_s: float = 0.0
    cpu_s: float = 0.0
    retries: int = 0
    ran_serial: bool = False


class EngineInstrumentation:
    """Counters, timers, and shard-skew statistics for one engine run.

    Args:
        tracer: the tracer to record into; defaults to the configured
            global tracer, falling back to a private in-memory one so
            the report is available even with tracing disabled.
    """

    def __init__(self, tracer: obs.Tracer | None = None) -> None:
        self._tracer = tracer or obs.get_tracer() or obs.Tracer()
        self._root = self._tracer.start_span("engine.run")
        self.shards: list[ShardRecord] = []
        self._finished = False

    # ------------------------------------------------------------------ #
    # Recording (thin wrappers over obs spans)
    # ------------------------------------------------------------------ #

    @contextmanager
    def phase(self, name: str):
        """Time a phase as an obs span; nested/repeated phases accumulate."""
        with self._tracer.span(
            f"engine.{name}", parent=self._root, cpu=True
        ) as span:
            yield span

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a named counter (a per-span counter on the run root)."""
        self._root.incr(name, amount)

    def record_shard(self, record: ShardRecord) -> None:
        """Attach one shard's work record."""
        self.shards.append(record)

    def adopt_spans(self, span_dicts: tuple[dict, ...]) -> None:
        """Attach spans recorded by a worker process to this run's trace."""
        if span_dicts:
            self._tracer.adopt(span_dicts)

    def execute_context(self, span: obs.Span) -> obs.SpanContext:
        """The propagation context workers parent their shard spans on."""
        return obs.SpanContext(trace_id=self._tracer.trace_id, span_id=span.span_id)

    def finish(self) -> None:
        """Close the run root span and publish run totals as metrics."""
        if self._finished:
            return
        self._finished = True
        self._tracer.end_span(self._root)
        metrics = obs.get_metrics()
        for name, value in self.counters.items():
            metrics.counter(
                f"repro_engine_{name}_total",
                help=f"engine run counter {name!r}",
            ).inc(value)
        shard_seconds = metrics.histogram(
            "repro_engine_shard_seconds", help="per-shard wall time"
        )
        for shard in self.shards:
            shard_seconds.observe(shard.wall_s)

    # ------------------------------------------------------------------ #
    # Derived views (the original report surface)
    # ------------------------------------------------------------------ #

    @property
    def phases(self) -> dict[str, PhaseRecord]:
        """Phase name -> accumulated wall/CPU time, from the span tree."""
        records: dict[str, PhaseRecord] = {}
        for span in self._tracer.finished():
            if span.parent_id != self._root.span_id:
                continue
            if not span.name.startswith("engine."):
                continue
            name = span.name[len("engine."):]
            record = records.setdefault(name, PhaseRecord())
            record.wall_s += span.duration_s
            cpu = span.attributes.get("cpu_s")
            if isinstance(cpu, (int, float)):
                record.cpu_s += cpu
        return records

    @property
    def counters(self) -> dict[str, int]:
        """The run root's numeric per-span counters."""
        return {
            name: value
            for name, value in self._root.attributes.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }

    def skew(self) -> dict[str, float]:
        """Shard-size balance: min/mean/max triples and the skew ratio."""
        sizes = [s.triples for s in self.shards]
        if not sizes:
            return {"min": 0, "mean": 0.0, "max": 0, "max_over_mean": 0.0}
        mean = sum(sizes) / len(sizes)
        return {
            "min": min(sizes),
            "mean": round(mean, 1),
            "max": max(sizes),
            "max_over_mean": round(max(sizes) / mean, 3) if mean else 0.0,
        }

    def skew_histogram(self, bins: int = 8) -> list[tuple[str, int]]:
        """Histogram of shard sizes as ``(range-label, shard-count)`` rows."""
        sizes = [s.triples for s in self.shards]
        if not sizes:
            return []
        low, high = min(sizes), max(sizes)
        if low == high:
            return [(f"{low}", len(sizes))]
        bins = max(1, min(bins, len(sizes)))
        width = (high - low) / bins
        counts = [0] * bins
        for size in sizes:
            index = min(int((size - low) / width), bins - 1)
            counts[index] += 1
        return [
            (f"{int(low + i * width)}-{int(low + (i + 1) * width)}", counts[i])
            for i in range(bins)
        ]

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def as_dict(self) -> dict:
        """JSON-ready snapshot of everything recorded."""
        return {
            "phases": {
                name: {"wall_s": round(r.wall_s, 6), "cpu_s": round(r.cpu_s, 6)}
                for name, r in self.phases.items()
            },
            "counters": dict(self.counters),
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "triples": s.triples,
                    "wall_s": round(s.wall_s, 6),
                    "cpu_s": round(s.cpu_s, 6),
                    "retries": s.retries,
                    "ran_serial": s.ran_serial,
                }
                for s in self.shards
            ],
            "skew": self.skew(),
        }

    def to_json(self) -> str:
        """The :meth:`as_dict` snapshot, serialized."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        """A compact human-readable report."""
        lines = ["parallel engine report"]
        for name, record in self.phases.items():
            lines.append(
                f"  phase {name:<12} wall {record.wall_s:8.3f}s  "
                f"cpu {record.cpu_s:8.3f}s"
            )
        counters = self.counters
        for name in sorted(counters):
            lines.append(f"  {name:<20} {counters[name]}")
        if self.shards:
            skew = self.skew()
            lines.append(
                f"  shard sizes          min {skew['min']} / mean {skew['mean']} "
                f"/ max {skew['max']} (max/mean {skew['max_over_mean']})"
            )
            histogram = self.skew_histogram()
            # Bars scale proportionally and cap at _MAX_BAR characters, so
            # a run with hundreds of shards per bucket stays one terminal
            # line per bucket.
            peak = max((count for _, count in histogram), default=0)
            for label, count in histogram:
                if count == 0:
                    bar = ""
                else:
                    bar = "#" * max(1, round(count / peak * _MAX_BAR))
                lines.append(f"    [{label:>15}] {bar} ({count})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<EngineInstrumentation phases={sorted(self.phases)} "
            f"shards={len(self.shards)}>"
        )
