"""Lightweight instrumentation for the parallel transformation engine.

Collects per-phase wall/CPU timers, named counters, and per-shard work
records (triple count, seconds, worker CPU), and renders them both as a
human-readable text report and as machine-readable JSON — the latter is
what ``benchmarks/bench_parallel_scalability.py`` diffs across PRs.

The shard-skew histogram answers the operational question "did the
subject-hash partitioner balance the load?": with a healthy hash the
max/mean shard ratio stays near 1; a skewed input (one giant subject
neighbourhood) shows up as a long tail bucket.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class PhaseRecord:
    """Accumulated wall-clock and process-CPU time of one engine phase."""

    wall_s: float = 0.0
    cpu_s: float = 0.0


@dataclass
class ShardRecord:
    """What one shard cost: its size and where the time went."""

    shard_id: int
    triples: int
    wall_s: float = 0.0
    cpu_s: float = 0.0
    retries: int = 0
    ran_serial: bool = False


class EngineInstrumentation:
    """Counters, timers, and shard-skew statistics for one engine run."""

    def __init__(self) -> None:
        self.phases: dict[str, PhaseRecord] = {}
        self.counters: dict[str, int] = {}
        self.shards: list[ShardRecord] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    @contextmanager
    def phase(self, name: str):
        """Time a phase; nested/repeated phases accumulate."""
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            record = self.phases.setdefault(name, PhaseRecord())
            record.wall_s += time.perf_counter() - wall0
            record.cpu_s += time.process_time() - cpu0

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a named counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def record_shard(self, record: ShardRecord) -> None:
        """Attach one shard's work record."""
        self.shards.append(record)

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #

    def skew(self) -> dict[str, float]:
        """Shard-size balance: min/mean/max triples and the skew ratio."""
        sizes = [s.triples for s in self.shards]
        if not sizes:
            return {"min": 0, "mean": 0.0, "max": 0, "max_over_mean": 0.0}
        mean = sum(sizes) / len(sizes)
        return {
            "min": min(sizes),
            "mean": round(mean, 1),
            "max": max(sizes),
            "max_over_mean": round(max(sizes) / mean, 3) if mean else 0.0,
        }

    def skew_histogram(self, bins: int = 8) -> list[tuple[str, int]]:
        """Histogram of shard sizes as ``(range-label, shard-count)`` rows."""
        sizes = [s.triples for s in self.shards]
        if not sizes:
            return []
        low, high = min(sizes), max(sizes)
        if low == high:
            return [(f"{low}", len(sizes))]
        bins = max(1, min(bins, len(sizes)))
        width = (high - low) / bins
        counts = [0] * bins
        for size in sizes:
            index = min(int((size - low) / width), bins - 1)
            counts[index] += 1
        return [
            (f"{int(low + i * width)}-{int(low + (i + 1) * width)}", counts[i])
            for i in range(bins)
        ]

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def as_dict(self) -> dict:
        """JSON-ready snapshot of everything recorded."""
        return {
            "phases": {
                name: {"wall_s": round(r.wall_s, 6), "cpu_s": round(r.cpu_s, 6)}
                for name, r in self.phases.items()
            },
            "counters": dict(self.counters),
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "triples": s.triples,
                    "wall_s": round(s.wall_s, 6),
                    "cpu_s": round(s.cpu_s, 6),
                    "retries": s.retries,
                    "ran_serial": s.ran_serial,
                }
                for s in self.shards
            ],
            "skew": self.skew(),
        }

    def to_json(self) -> str:
        """The :meth:`as_dict` snapshot, serialized."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        """A compact human-readable report."""
        lines = ["parallel engine report"]
        for name, record in self.phases.items():
            lines.append(
                f"  phase {name:<12} wall {record.wall_s:8.3f}s  "
                f"cpu {record.cpu_s:8.3f}s"
            )
        for name in sorted(self.counters):
            lines.append(f"  {name:<20} {self.counters[name]}")
        if self.shards:
            skew = self.skew()
            lines.append(
                f"  shard sizes          min {skew['min']} / mean {skew['mean']} "
                f"/ max {skew['max']} (max/mean {skew['max_over_mean']})"
            )
            for label, count in self.skew_histogram():
                lines.append(f"    [{label:>15}] {'#' * count} ({count})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<EngineInstrumentation phases={sorted(self.phases)} "
            f"shards={len(self.shards)}>"
        )
