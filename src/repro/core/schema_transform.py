"""Schema transformation ``F_st``: SHACL shapes to PG-Schema (Section 4.1).

Implements the rule catalogue of Figure 5 / Table 1 over the Figure 3
taxonomy:

* node shape with ``sh:targetClass``          -> node type (+ ``iri`` key);
* ``sh:node`` hierarchy                        -> type inheritance (``&``);
* single-type literal property                 -> key/value record property
  (parsimonious mode; cardinality drives OPTIONAL / ARRAY per Table 1);
* single-type non-literal property             -> edge type + PG-Key
  cardinality constraint;
* multi-type homogeneous literal property      -> literal node types per
  datatype + edge type with alternative targets;
* multi-type homogeneous non-literal property  -> edge type with alternative
  node-type targets;
* multi-type heterogeneous property            -> edge type whose targets mix
  class node types and literal node types (Figure 5f).

In non-parsimonious mode *every* property becomes an edge type, which keeps
the transformation monotone under schema evolution (Section 4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransformError
from ..namespaces import local_name
from ..pgschema.keys import CardinalityKey, UniqueKey
from ..pgschema.keys import UNBOUNDED as PG_UNBOUNDED
from ..pgschema.model import (
    ANY,
    EdgeType,
    NodeType,
    PGSchema,
    PropertySpec,
    STRING,
    content_type_for_datatype,
)
from ..rdf.namespace import PrefixMap
from ..rdf.terms import Literal
from ..shacl.model import (
    UNBOUNDED,
    ClassType,
    LiteralType,
    NodeShapeRef,
    PropertyShape,
    ShapeSchema,
)
from .config import DEFAULT_OPTIONS, TransformOptions
from .mapping import (
    ClassMapping,
    DTYPE_KEY,
    IRI_KEY,
    LANG_KEY,
    LiteralTypeInfo,
    MODE_EDGE,
    MODE_KEY_VALUE,
    PropertyMapping,
    RESOURCE_LABEL,
    RESOURCE_TYPE,
    SchemaMapping,
    VALUE_KEY,
)
from .naming import NameResolver, sanitize, type_name_for

_LANG_STRING = Literal.LANG_STRING


@dataclass
class SchemaTransformResult:
    """The pair ``(S_PG, F_st)`` required by Problem 1.

    Also carries the :class:`TypeRegistry` so that the data transformation
    can monotonically extend the schema (fallback types) with naming that
    stays consistent with the schema transformation.
    """

    pg_schema: PGSchema
    mapping: SchemaMapping
    registry: "TypeRegistry" = None  # set by SchemaTransformer.transform


class TypeRegistry:
    """Shared mutable view over (PG-Schema, mapping, names).

    Both the schema transformer and the data transformer extend the schema
    through this registry — the data transformer only when running with
    ``on_unknown="fallback"`` on triples not covered by any shape, which is
    a monotone extension of ``S_PG`` (new types only, Proposition 4.3).
    """

    def __init__(self, pg_schema: PGSchema, mapping: SchemaMapping, resolver: NameResolver):
        self.pg_schema = pg_schema
        self.mapping = mapping
        self.resolver = resolver
        self._ensure_resource_type()

    def _ensure_resource_type(self) -> None:
        if RESOURCE_TYPE not in self.pg_schema.node_types:
            self.pg_schema.add_node_type(
                NodeType(
                    name=RESOURCE_TYPE,
                    labels={RESOURCE_LABEL},
                    properties={IRI_KEY: PropertySpec(IRI_KEY, STRING)},
                )
            )

    def ensure_literal_type(self, datatype: str) -> LiteralTypeInfo:
        """The literal node type for ``datatype``, creating it on demand.

        Figure 5d: ``(gYearType: YEAR {iri: "http://...#gYear"})``.
        """
        info = self.mapping.literal_types.get(datatype)
        if info is not None:
            return info
        content = content_type_for_datatype(datatype)
        local = sanitize(local_name(datatype))
        label = content if content != ANY else local.upper()
        type_name = type_name_for(local)
        if type_name in self.pg_schema.node_types:
            type_name = f"{type_name}_{len(self.mapping.literal_types)}"
        node_type = NodeType(
            name=type_name,
            labels={label},
            properties={
                VALUE_KEY: PropertySpec(VALUE_KEY, content),
                DTYPE_KEY: PropertySpec(DTYPE_KEY, STRING, optional=True),
                LANG_KEY: PropertySpec(LANG_KEY, STRING, optional=True),
            },
            annotations={IRI_KEY: datatype},
            is_literal_type=True,
        )
        self.pg_schema.add_node_type(node_type)
        info = LiteralTypeInfo(
            datatype=datatype, type_name=type_name, label=label, content_type=content
        )
        self.mapping.add_literal_type(info)
        return info

    def ensure_external_class(self, class_iri: str) -> str:
        """A node type for a class that has no shape; returns its label.

        Used when a property shape's ``sh:class`` names a class that is not
        the target of any node shape (allowed by Definition 2.3: the object
        only needs to be an instance of the class).
        """
        existing = self.mapping.label_for_class(class_iri)
        if existing is not None:
            return existing
        label = self.resolver.name_for(class_iri)
        type_name = type_name_for(label)
        if type_name not in self.pg_schema.node_types:
            self.pg_schema.add_node_type(
                NodeType(
                    name=type_name,
                    labels={label},
                    properties={IRI_KEY: PropertySpec(IRI_KEY, STRING)},
                    annotations={IRI_KEY: class_iri},
                )
            )
        self.mapping.add_class(
            ClassMapping(
                class_iri=class_iri,
                shape_name=class_iri,
                node_type_name=type_name,
                label=label,
                from_shape=False,
            )
        )
        return label

    def ensure_edge_type(self, rel_type: str, predicate: str, source_type: str | None,
                         target_types: list[str]) -> EdgeType:
        """Get or monotonically extend the edge type for ``rel_type``."""
        name = type_name_for(rel_type)
        edge_type = self.pg_schema.edge_types.get(name)
        if edge_type is None:
            edge_type = EdgeType(
                name=name,
                label=rel_type,
                source_types=(),
                target_types=(),
                annotations={IRI_KEY: predicate},
            )
            self.pg_schema.add_edge_type(edge_type)
        if source_type is not None and source_type not in edge_type.source_types:
            edge_type.source_types = tuple(
                sorted({*edge_type.source_types, source_type})
            )
        new_targets = set(edge_type.target_types) | set(target_types)
        if new_targets != set(edge_type.target_types):
            edge_type.target_types = tuple(sorted(new_targets))
        return edge_type

    def fallback_property(self, predicate: str) -> PropertyMapping:
        """A generic edge-mode mapping for a predicate no shape covers."""
        existing = self.mapping.fallback.get(predicate)
        if existing is not None:
            return existing
        rel_type = self.resolver.name_for(predicate)
        self.ensure_edge_type(rel_type, predicate, None, [])
        prop = PropertyMapping(
            predicate=predicate,
            mode=MODE_EDGE,
            rel_type=rel_type,
            min_count=0,
            max_count=UNBOUNDED,
        )
        self.mapping.add_fallback(prop)
        return prop


class SchemaTransformer:
    """Transforms a :class:`ShapeSchema` into ``(S_PG, F_st)``.

    Args:
        options: transformation options (parsimonious mode etc.).
        prefixes: prefix table used for deterministic naming.
    """

    def __init__(
        self,
        options: TransformOptions = DEFAULT_OPTIONS,
        prefixes: PrefixMap | None = None,
    ):
        self.options = options
        self.prefixes = prefixes or PrefixMap.with_defaults()

    def transform(self, shape_schema: ShapeSchema) -> SchemaTransformResult:
        """Run ``F_st`` over ``shape_schema``.

        Raises:
            TransformError: when shapes reference unknown shapes.
        """
        shape_schema.validate_references()
        resolver = NameResolver(self.prefixes, use_prefixes=self.options.use_prefixes)
        pg_schema = PGSchema()
        mapping = SchemaMapping(parsimonious=self.options.parsimonious)
        registry = TypeRegistry(pg_schema, mapping, resolver)

        # A predicate's realization must be *globally consistent*: if any
        # shape needs the edge realization for a predicate (multi-type,
        # heterogeneous, or a different datatype elsewhere), every shape
        # uses the edge realization.  Otherwise an entity carrying several
        # types — or a query phrased against a superclass — would resolve
        # the same predicate to different representations.
        self._edge_forced = self._compute_edge_forced(shape_schema)

        # Pass 1: allocate node types and labels for every shape so that
        # forward references (inheritance, shape refs) resolve.
        shape_labels: dict[str, str] = {}
        shape_type_names: dict[str, str] = {}
        for shape in shape_schema:
            anchor = shape.target_class or shape.name
            label = resolver.name_for(anchor)
            shape_labels[shape.name] = label
            shape_type_names[shape.name] = type_name_for(label)

        for shape in shape_schema:
            node_type = NodeType(
                name=shape_type_names[shape.name],
                labels={shape_labels[shape.name]},
                properties={IRI_KEY: PropertySpec(IRI_KEY, STRING)},
                parents=tuple(shape_type_names[p] for p in shape.extends),
                annotations={IRI_KEY: shape.target_class or shape.name},
            )
            pg_schema.add_node_type(node_type)
            pg_schema.add_key(UniqueKey(shape_labels[shape.name], IRI_KEY))

        # Pass 2: property shapes.
        class_mappings: dict[str, ClassMapping] = {}
        for shape in shape_schema:
            label = shape_labels[shape.name]
            type_name = shape_type_names[shape.name]
            node_type = pg_schema.node_type(type_name)
            properties: dict[str, PropertyMapping] = {}
            for phi in shape.property_shapes:
                prop = self._transform_property(
                    phi, shape_schema, shape_labels, label, type_name,
                    node_type, registry, resolver, pg_schema,
                )
                properties[phi.path] = prop
            class_mappings[shape.name] = ClassMapping(
                class_iri=shape.target_class or shape.name,
                shape_name=shape.name,
                node_type_name=type_name,
                label=label,
                parents=shape.extends,
                properties=properties,
                local_predicates=tuple(properties),
            )

        # Fold inherited property mappings into each class mapping so that
        # F_dt can resolve predicates without walking the hierarchy.
        for shape in shape_schema:
            mapping_entry = class_mappings[shape.name]
            for parent in shape_schema.ancestors(shape.name):
                for predicate, prop in class_mappings[parent].properties.items():
                    mapping_entry.properties.setdefault(predicate, prop)
            mapping.add_class(mapping_entry)

        return SchemaTransformResult(
            pg_schema=pg_schema, mapping=mapping, registry=registry
        )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _compute_edge_forced(shape_schema: ShapeSchema) -> set[str]:
        """Predicates that must use the edge realization in every shape."""
        datatype_seen: dict[str, str] = {}
        forced: set[str] = set()
        for _, phi in shape_schema.all_property_shapes():
            sole = phi.sole_literal_type()
            if sole is None or sole.datatype == _LANG_STRING:
                forced.add(phi.path)
                continue
            previous = datatype_seen.setdefault(phi.path, sole.datatype)
            if previous != sole.datatype:
                forced.add(phi.path)
        return forced

    def _transform_property(
        self,
        phi: PropertyShape,
        shape_schema: ShapeSchema,
        shape_labels: dict[str, str],
        label: str,
        type_name: str,
        node_type: NodeType,
        registry: TypeRegistry,
        resolver: NameResolver,
        pg_schema: PGSchema,
    ) -> PropertyMapping:
        sole_literal = phi.sole_literal_type()
        parsimonious_ok = (
            self.options.parsimonious
            and sole_literal is not None
            and sole_literal.datatype != _LANG_STRING
            and phi.path not in self._edge_forced
        )
        if parsimonious_ok:
            return self._as_key_value(phi, sole_literal, node_type, resolver)
        return self._as_edge(
            phi, shape_schema, shape_labels, label, type_name, registry,
            resolver, pg_schema,
        )

    def _as_key_value(
        self,
        phi: PropertyShape,
        literal_type: LiteralType,
        node_type: NodeType,
        resolver: NameResolver,
    ) -> PropertyMapping:
        """Table 1: single-type literal -> record property."""
        pg_key = resolver.name_for(phi.path)
        content = content_type_for_datatype(literal_type.datatype)
        array = phi.max_count == UNBOUNDED or phi.max_count > 1
        spec = PropertySpec(
            key=pg_key,
            content_type=content,
            optional=phi.min_count == 0,
            array=array,
            array_min=phi.min_count if array else 0,
            array_max=(
                None if not array or phi.max_count == UNBOUNDED else int(phi.max_count)
            ),
        )
        node_type.add_property(spec)
        # Record the provenance of the key so that the PG-Schema text alone
        # suffices to reconstruct the SHACL property shape (used by N).
        node_type.annotations[f"{pg_key}__iri"] = phi.path
        node_type.annotations[f"{pg_key}__datatype"] = literal_type.datatype
        return PropertyMapping(
            predicate=phi.path,
            mode=MODE_KEY_VALUE,
            pg_key=pg_key,
            datatype=literal_type.datatype,
            min_count=phi.min_count,
            max_count=phi.max_count,
            array=array,
        )

    def _as_edge(
        self,
        phi: PropertyShape,
        shape_schema: ShapeSchema,
        shape_labels: dict[str, str],
        label: str,
        type_name: str,
        registry: TypeRegistry,
        resolver: NameResolver,
        pg_schema: PGSchema,
    ) -> PropertyMapping:
        """Figure 5 c-f: property -> edge type with alternative targets."""
        rel_type = resolver.name_for(phi.path)
        literal_targets: dict[str, str] = {}
        resource_targets: dict[str, str] = {}
        shape_targets: dict[str, str] = {}
        target_type_names: list[str] = []
        for vt in phi.value_types:
            if isinstance(vt, LiteralType):
                info = registry.ensure_literal_type(vt.datatype)
                literal_targets[vt.datatype] = info.label
                target_type_names.append(info.type_name)
            elif isinstance(vt, ClassType):
                target_shape = shape_schema.shape_for_class(vt.cls)
                if target_shape is not None:
                    target_label = shape_labels[target_shape.name]
                    target_type_names.append(type_name_for(target_label))
                else:
                    target_label = registry.ensure_external_class(vt.cls)
                    target_type_names.append(type_name_for(target_label))
                resource_targets[vt.cls] = target_label
            elif isinstance(vt, NodeShapeRef):
                target_label = shape_labels.get(vt.shape)
                if target_label is None:
                    raise TransformError(
                        f"property {phi.path} references unknown shape {vt.shape}"
                    )
                shape_targets[vt.shape] = target_label
                target_type_names.append(type_name_for(target_label))
            else:  # pragma: no cover - exhaustive
                raise TransformError(f"unknown value type {vt!r}")
        registry.ensure_edge_type(rel_type, phi.path, type_name, target_type_names)
        target_labels = tuple(
            sorted(
                {
                    *literal_targets.values(),
                    *resource_targets.values(),
                    *shape_targets.values(),
                }
            )
        )
        pg_schema.add_key(
            CardinalityKey(
                source_label=label,
                edge_label=rel_type,
                lower=phi.min_count,
                upper=PG_UNBOUNDED if phi.max_count == UNBOUNDED else phi.max_count,
                target_labels=target_labels,
            )
        )
        return PropertyMapping(
            predicate=phi.path,
            mode=MODE_EDGE,
            rel_type=rel_type,
            literal_targets=literal_targets,
            resource_targets=resource_targets,
            shape_targets=shape_targets,
            min_count=phi.min_count,
            max_count=phi.max_count,
        )


def transform_schema(
    shape_schema: ShapeSchema,
    options: TransformOptions = DEFAULT_OPTIONS,
    prefixes: PrefixMap | None = None,
) -> SchemaTransformResult:
    """Module-level convenience wrapper for :class:`SchemaTransformer`."""
    return SchemaTransformer(options, prefixes).transform(shape_schema)
