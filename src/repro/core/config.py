"""Configuration for the S3PG transformation.

The single user-facing switch of the paper is *parsimonious* vs
*non-parsimonious* (Sections 4.1.1 / 4.2.1): parsimonious encodes
single-valued literal properties as key/value attributes inside nodes,
while non-parsimonious models every property as an edge to a value node,
trading output size for full monotonicity under schema evolution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransformOptions:
    """Options controlling both schema and data transformation.

    Attributes:
        parsimonious: use the parsimonious model (default True).  With
            False, the non-parsimonious (fully monotone) model is used.
        use_prefixes: derive PG labels/keys as ``prefix_localName``
            (e.g. ``dbp_address``); with False bare local names are used,
            matching the paper's Figure 2 display convention.
        on_unknown: what to do with triples not covered by the shape
            schema: ``"fallback"`` converts them with a generic
            heterogeneous-property rule (fully information preserving),
            ``"skip"`` drops them (lossy; useful for comparisons),
            ``"error"`` raises :class:`repro.errors.TransformError`.
        typed_literal_values: store integers/booleans as native PG values
            instead of strings when the lexical form is canonical.
    """

    parsimonious: bool = True
    use_prefixes: bool = True
    on_unknown: str = "fallback"
    typed_literal_values: bool = True

    def __post_init__(self) -> None:
        if self.on_unknown not in ("fallback", "skip", "error"):
            raise ValueError(
                f"on_unknown must be fallback/skip/error, got {self.on_unknown!r}"
            )


#: The default (parsimonious) configuration.
DEFAULT_OPTIONS = TransformOptions()

#: The non-parsimonious, fully monotone configuration (Section 4.2.1).
MONOTONE_OPTIONS = TransformOptions(parsimonious=False)
