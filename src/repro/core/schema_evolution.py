"""Monotone schema evolution: applying shape-schema deltas to ``F_st``.

Proposition 4.3 extends monotonicity to the schema: when new node/property
shapes are added, ``F_st(S_G ∪ S_GΔ) = F_st(S_G) ∪ F_st(S_GΔ)`` — the
existing PG-Schema is only *extended*, never recomputed.  This module
implements that delta application, together with the paper's caveat: under
the **parsimonious** model an added shape can change the realization of an
already-converted predicate (e.g. a single-type string property gaining an
integer alternative must become an edge), which breaks schema monotonicity;
the non-parsimonious model never re-realizes anything.

:func:`apply_schema_delta` therefore:

* extends the PG-Schema and mapping with the new shapes' types and keys;
* under the non-parsimonious model, guarantees the result equals a full
  re-transformation of the merged schema (tested);
* under the parsimonious model, *detects* realization conflicts and raises
  :class:`SchemaEvolutionConflict` listing the predicates that would need
  re-conversion — the signal the paper says should push evolving graphs to
  the non-parsimonious model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TransformError
from ..shacl.model import NodeShape, ShapeSchema
from .mapping import MODE_KEY_VALUE
from .schema_transform import SchemaTransformer, SchemaTransformResult


class SchemaEvolutionConflict(TransformError):
    """An added shape changes the realization of already-converted data.

    Attributes:
        predicates: the predicate IRIs whose parsimonious key/value
            realization is no longer valid under the merged schema.
    """

    def __init__(self, predicates: list[str]):
        super().__init__(
            "schema delta changes the realization of already-converted "
            f"predicates (re-conversion or the non-parsimonious model "
            f"required): {', '.join(sorted(predicates))}"
        )
        self.predicates = sorted(predicates)


@dataclass
class SchemaDeltaStats:
    """What one schema-delta application added."""

    node_types_added: int = 0
    edge_types_touched: int = 0
    keys_added: int = 0
    shapes_added: list[str] = field(default_factory=list)


def merge_shape_schemas(base: ShapeSchema, delta: ShapeSchema) -> ShapeSchema:
    """The union ``S_G ∪ S_GΔ`` (delta shapes replace same-named ones)."""
    merged = ShapeSchema(list(base))
    for shape in delta:
        merged.add(shape)
    return merged


def apply_schema_delta(
    result: SchemaTransformResult,
    base_schema: ShapeSchema,
    delta: ShapeSchema,
) -> SchemaDeltaStats:
    """Extend ``result`` (in place) with the transformation of ``delta``.

    Args:
        result: a previous :func:`transform_schema` output to extend.
        base_schema: the shape schema ``result`` was produced from.
        delta: the added node shapes ``S_GΔ``.

    Raises:
        SchemaEvolutionConflict: when the parsimonious model's existing
            key/value realizations become invalid under the merged schema.
        TransformError: when the delta redefines an existing shape
            (monotone evolution only *adds*).
    """
    for shape in delta:
        if shape.name in base_schema:
            raise TransformError(
                f"schema delta redefines existing shape {shape.name!r}; "
                "monotone evolution only adds shapes"
            )

    merged = merge_shape_schemas(base_schema, delta)
    options = _options_for(result)
    transformer = SchemaTransformer(options)

    if options.parsimonious:
        _check_parsimonious_conflicts(result, merged, transformer)

    # Transform the merged schema with a fresh transformer, then graft the
    # *new* elements into the existing result.  Because naming is a
    # deterministic function of IRIs, the fresh result's elements for old
    # shapes coincide with the existing ones; only additions are applied.
    fresh = transformer.transform(merged)
    stats = SchemaDeltaStats()

    for name, node_type in fresh.pg_schema.node_types.items():
        if name not in result.pg_schema.node_types:
            result.pg_schema.add_node_type(node_type)
            stats.node_types_added += 1
    for name, edge_type in fresh.pg_schema.edge_types.items():
        existing = result.pg_schema.edge_types.get(name)
        if existing is None:
            result.pg_schema.add_edge_type(edge_type)
            stats.edge_types_touched += 1
        else:
            merged_sources = tuple(sorted(
                {*existing.source_types, *edge_type.source_types}
            ))
            merged_targets = tuple(sorted(
                {*existing.target_types, *edge_type.target_types}
            ))
            if (merged_sources != existing.source_types
                    or merged_targets != existing.target_types):
                existing.source_types = merged_sources
                existing.target_types = merged_targets
                stats.edge_types_touched += 1
    existing_keys = set(map(repr, result.pg_schema.keys))
    for key in fresh.pg_schema.keys:
        if repr(key) not in existing_keys:
            result.pg_schema.add_key(key)
            stats.keys_added += 1

    for class_iri, class_mapping in fresh.mapping.classes.items():
        if class_iri not in result.mapping.classes:
            result.mapping.add_class(class_mapping)
        else:
            # Existing classes may gain inherited property mappings from
            # new parents (not possible for monotone deltas) — or simply
            # stay as they are.  Refresh effective properties additively.
            existing_mapping = result.mapping.classes[class_iri]
            for predicate, prop in class_mapping.properties.items():
                existing_mapping.properties.setdefault(predicate, prop)
    for datatype, info in fresh.mapping.literal_types.items():
        if datatype not in result.mapping.literal_types:
            result.mapping.add_literal_type(info)

    stats.shapes_added = [shape.name for shape in delta]
    return stats


def _options_for(result: SchemaTransformResult):
    from .config import DEFAULT_OPTIONS, MONOTONE_OPTIONS

    return DEFAULT_OPTIONS if result.mapping.parsimonious else MONOTONE_OPTIONS


def _check_parsimonious_conflicts(
    result: SchemaTransformResult,
    merged: ShapeSchema,
    transformer: SchemaTransformer,
) -> None:
    """Detect predicates whose key/value realization the delta invalidates."""
    edge_forced = transformer._compute_edge_forced(merged)
    conflicts: list[str] = []
    for class_mapping in result.mapping.classes.values():
        for predicate, prop in class_mapping.properties.items():
            if prop.mode == MODE_KEY_VALUE and predicate in edge_forced:
                conflicts.append(predicate)
    if conflicts:
        raise SchemaEvolutionConflict(sorted(set(conflicts)))
