"""Data transformation ``F_dt`` — Algorithm 1 of the paper.

The two-phase streaming algorithm:

* **Phase 1** (entities to PG nodes): scan the triple stream for
  ``rdf:type`` statements, building the entity-type map ``Psi_ETD``; then
  materialize one PG node per entity, with its types as labels and its IRI
  stored as the ``iri`` record key.
* **Phase 2** (properties to key/values and edges): scan the non-type
  triples; objects that are known entities become edges (line 16 ff.);
  single-valued literals of key/value-mapped properties become record
  attributes (lines 21-23, parsimonious mode only); everything else —
  multi-type homogeneous or heterogeneous values — becomes a typed
  *literal node* connected by an edge (lines 25-31).

All generated identifiers are deterministic functions of the input terms
(node id = IRI, literal node id = hash of (datatype, language, lexical),
edge id = ``src|rel|dst``), which is what makes the transformation
monotone: converting a delta produces exactly the sub-graph that a full
re-conversion would add (Definition 3.4).
"""

from __future__ import annotations

import hashlib
import re
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..errors import TransformError
from ..namespaces import RDF_TYPE
from ..pg.model import PGNode, PropertyGraph
from ..pgschema.model import BOOLEAN, FLOAT, INTEGER, content_type_for_datatype
from ..rdf.graph import Graph
from ..rdf.terms import IRI, BlankNode, Literal, Object, Subject, Triple
from .config import DEFAULT_OPTIONS, TransformOptions
from .mapping import (
    DTYPE_KEY,
    IRI_KEY,
    LANG_KEY,
    RESOURCE_LABEL,
    VALUE_KEY,
)
from .schema_transform import SchemaTransformResult

_TYPE = IRI(RDF_TYPE)
_INT_RE = re.compile(r"^[+-]?\d+$")


def node_id_for(term: Subject) -> str:
    """The deterministic PG node id for an entity (IRI or blank node)."""
    if isinstance(term, IRI):
        return term.value
    return f"_:{term.label}"


def literal_node_id(literal: Literal) -> str:
    """The deterministic PG node id for a literal value node.

    Literal nodes are deduplicated per (datatype, language, lexical), so
    re-converting the same triple can never create a second node.  The id
    embeds the three components directly (injective, no hashing cost);
    lexical forms beyond 64 characters fall back to a digest suffix to
    bound id length.
    """
    lexical = literal.lexical
    if len(lexical) > 64:
        digest = hashlib.sha1(lexical.encode("utf-8")).hexdigest()[:16]
        lexical = lexical[:48] + "#" + digest
    return f"lit:{literal.datatype}|{literal.language or ''}|{lexical}"


def edge_id_for(src: str, rel_type: str, dst: str) -> str:
    """The deterministic PG edge id for ``(src)-[rel_type]->(dst)``."""
    return f"{src}|{rel_type}|{dst}"


def encode_literal_value(literal: Literal, typed: bool = True) -> object:
    """The PG property value for a literal.

    Integers/booleans/floats become native values when the lexical form
    round-trips exactly (so the inverse mapping can reconstruct the
    original lexical form); otherwise the raw string is kept.
    """
    if not typed:
        return literal.lexical
    content = content_type_for_datatype(literal.datatype)
    lexical = literal.lexical
    if content == INTEGER and _INT_RE.match(lexical):
        value = int(lexical)
        if str(value) == lexical:
            return value
    elif content == BOOLEAN and lexical in ("true", "false"):
        return lexical == "true"
    elif content == FLOAT:
        try:
            value = float(lexical)
        except ValueError:
            return lexical
        if str(value) == lexical:
            return value
    return lexical


@dataclass
class DataTransformStats:
    """Counters reported by one data-transformation run."""

    triples_processed: int = 0
    entity_nodes: int = 0
    literal_nodes: int = 0
    edges: int = 0
    key_values: int = 0
    skipped: int = 0


@dataclass
class TransformedGraph:
    """The pair ``(PG, F_dt)`` of Problem 2, with run statistics."""

    graph: PropertyGraph
    schema_result: SchemaTransformResult
    options: TransformOptions
    stats: DataTransformStats = field(default_factory=DataTransformStats)

    @property
    def pg_schema(self):
        """The PG-Schema the output conforms to."""
        return self.schema_result.pg_schema

    @property
    def mapping(self):
        """The schema mapping ``F_st``."""
        return self.schema_result.mapping


class DataTransformer:
    """Implements Algorithm 1 over a schema-transformation result.

    Args:
        schema_result: output of :func:`repro.core.schema_transform.transform_schema`.
        options: must agree with the options used for the schema transform
            (in particular the parsimonious flag).
    """

    def __init__(
        self,
        schema_result: SchemaTransformResult,
        options: TransformOptions = DEFAULT_OPTIONS,
    ):
        self.schema_result = schema_result
        self.options = options
        self.mapping = schema_result.mapping
        self.registry = schema_result.registry
        if self.mapping.parsimonious != options.parsimonious:
            raise TransformError(
                "schema was transformed with a different parsimonious setting"
            )

    # ------------------------------------------------------------------ #

    def transform(self, source: Graph | Iterable[Triple]) -> TransformedGraph:
        """Run the two-phase algorithm over ``source``.

        ``source`` may be a :class:`Graph` (iterated twice) or any
        iterable of triples (materialized once, then processed in two
        phases, mirroring the file-based streaming of Algorithm 1).
        """
        if isinstance(source, Graph):
            triples: Iterable[Triple] = source
            second_pass: Iterable[Triple] = source
        else:
            materialized = list(source)
            triples = materialized
            second_pass = materialized

        pg = PropertyGraph()
        stats = DataTransformStats()
        result = TransformedGraph(
            graph=pg, schema_result=self.schema_result,
            options=self.options, stats=stats,
        )

        # Phase 1 - Entities to PG nodes (Algorithm 1, lines 4-14).
        entity_types: dict[Subject, list[IRI]] = {}
        for triple in triples:
            stats.triples_processed += 1
            if triple.p == _TYPE and isinstance(triple.o, IRI):
                entity_types.setdefault(triple.s, []).append(triple.o)
        for entity, types in entity_types.items():
            self._create_entity_node(pg, entity, types, stats)

        # Phase 2 - Properties to key/values and edges (lines 15-31).
        # Resolution of (subject types, predicate) -> property mapping is
        # memoized: real graphs have few distinct type combinations.
        type_keys: dict[Subject, tuple[str, ...]] = {
            entity: tuple(sorted(t.value for t in types))
            for entity, types in entity_types.items()
        }
        resolution_cache: dict[tuple[tuple[str, ...], str], object] = {}
        for triple in second_pass:
            if triple.p == _TYPE and isinstance(triple.o, IRI):
                continue
            self._convert_property_triple(
                pg, triple, entity_types, type_keys, resolution_cache, stats
            )
        return result

    # ------------------------------------------------------------------ #
    # Phase 1 helpers
    # ------------------------------------------------------------------ #

    def _create_entity_node(
        self,
        pg: PropertyGraph,
        entity: Subject,
        types: list[IRI],
        stats: DataTransformStats,
    ) -> PGNode:
        node_id = node_id_for(entity)
        if pg.has_node(node_id):
            node = pg.get_node(node_id)
        else:
            node = pg.add_node(node_id, properties={IRI_KEY: node_id})
            stats.entity_nodes += 1
        for type_iri in sorted(types, key=lambda t: t.value):
            label = self._label_for_type(type_iri)
            if label is not None:
                node.labels.add(label)
        return node

    def _label_for_type(self, type_iri: IRI) -> str | None:
        label = self.mapping.label_for_class(type_iri.value)
        if label is not None:
            return label
        if self.options.on_unknown == "error":
            raise TransformError(f"no shape targets class {type_iri.value}")
        if self.options.on_unknown == "skip":
            return None
        return self.registry.ensure_external_class(type_iri.value)

    # ------------------------------------------------------------------ #
    # Phase 2 helpers
    # ------------------------------------------------------------------ #

    def _convert_property_triple(
        self,
        pg: PropertyGraph,
        triple: Triple,
        entity_types: dict[Subject, list[IRI]],
        type_keys: dict[Subject, tuple[str, ...]],
        resolution_cache: dict,
        stats: DataTransformStats,
    ) -> None:
        subject_node = self._subject_node(pg, triple.s, stats)
        types = type_keys.get(triple.s, ())
        cache_key = (types, triple.p.value)
        if cache_key in resolution_cache:
            prop = resolution_cache[cache_key]
        else:
            prop = self.mapping.property_for(list(types), triple.p.value)
            resolution_cache[cache_key] = prop
        if prop is None:
            if self.options.on_unknown == "error":
                raise TransformError(
                    f"no property shape covers predicate {triple.p.value} "
                    f"for subject types {types}"
                )
            if self.options.on_unknown == "skip":
                stats.skipped += 1
                return
            prop = self.registry.fallback_property(triple.p.value)

        obj = triple.o
        # Line 16: objects that exist as typed entities always become edges.
        if isinstance(obj, (IRI, BlankNode)) and obj in entity_types:
            rel_type = prop.rel_type or self.registry.fallback_property(
                triple.p.value
            ).rel_type
            target_id = self._entity_target_node(pg, obj, entity_types, stats)
            self._add_edge(pg, subject_node.id, rel_type, target_id, stats)
            return
        # Lines 21-23: parsimonious key/value storage for single-valued
        # literal properties.  The literal must carry the datatype the
        # schema mapped the key to (Algorithm 1 checks the data type
        # against E_s(t.p)); off-schema values fall through to the fully
        # preserving literal-node representation below.  A second value
        # for a max-1 key promotes the record entry to an array, which
        # keeps the transformation lossless and makes the cardinality
        # violation visible to PG-Schema conformance checking.
        if (
            prop.is_key_value()
            and isinstance(obj, Literal)
            and obj.datatype == prop.datatype
        ):
            value = encode_literal_value(obj, self.options.typed_literal_values)
            subject_node.append_property(prop.pg_key, value)
            stats.key_values += 1
            return
        # Lines 25-31: multi-type / heterogeneous values become typed
        # literal nodes (or generic resource nodes for untyped IRIs).
        rel_type = prop.rel_type
        if rel_type is None:
            rel_type = self.registry.fallback_property(triple.p.value).rel_type
        if isinstance(obj, Literal):
            target_id = self._literal_node(pg, obj, stats)
        else:
            target_id = self._resource_node(pg, obj, stats)
        self._add_edge(pg, subject_node.id, rel_type, target_id, stats)

    def _entity_target_node(
        self,
        pg: PropertyGraph,
        obj: Subject,
        entity_types: dict[Subject, list[IRI]],
        stats: DataTransformStats,
    ) -> str:
        """The node id an entity-valued object's edge points at.

        Phase 1 has already created nodes for all typed entities, so the
        base implementation only computes the id.  The parallel engine's
        shard transformer overrides this to materialize nodes for
        entities whose ``rdf:type`` statements live in another shard.
        """
        return node_id_for(obj)

    def _subject_node(
        self, pg: PropertyGraph, subject: Subject, stats: DataTransformStats
    ) -> PGNode:
        node_id = node_id_for(subject)
        if pg.has_node(node_id):
            return pg.get_node(node_id)
        # A subject with no rdf:type statement: a generic resource node.
        node = pg.add_node(
            node_id, labels={RESOURCE_LABEL}, properties={IRI_KEY: node_id}
        )
        stats.entity_nodes += 1
        return node

    def _resource_node(
        self, pg: PropertyGraph, obj: Subject, stats: DataTransformStats
    ) -> str:
        node_id = node_id_for(obj)
        if not pg.has_node(node_id):
            pg.add_node(
                node_id, labels={RESOURCE_LABEL}, properties={IRI_KEY: node_id}
            )
            stats.entity_nodes += 1
        return node_id

    def _literal_node(
        self, pg: PropertyGraph, literal: Literal, stats: DataTransformStats
    ) -> str:
        node_id = literal_node_id(literal)
        if pg.has_node(node_id):
            return node_id
        info = self.registry.ensure_literal_type(literal.datatype)
        properties: dict[str, object] = {
            VALUE_KEY: encode_literal_value(literal, self.options.typed_literal_values),
            DTYPE_KEY: literal.datatype,
        }
        if literal.language is not None:
            properties[LANG_KEY] = literal.language
        pg.add_node(node_id, labels={info.label}, properties=properties)
        stats.literal_nodes += 1
        return node_id

    def _add_edge(
        self,
        pg: PropertyGraph,
        src: str,
        rel_type: str,
        dst: str,
        stats: DataTransformStats,
    ) -> None:
        edge_id = edge_id_for(src, rel_type, dst)
        if edge_id in pg.edges:
            return
        pg.add_edge(src, dst, labels={rel_type}, edge_id=edge_id)
        stats.edges += 1


def transform_data(
    source: Graph | Iterable[Triple],
    schema_result: SchemaTransformResult,
    options: TransformOptions = DEFAULT_OPTIONS,
) -> TransformedGraph:
    """Module-level convenience wrapper for :class:`DataTransformer`."""
    return DataTransformer(schema_result, options).transform(source)
