"""Compaction of non-parsimonious property graphs (the paper's open question).

Section 7 leaves open "how and when to optimize" the large PGs produced by
the non-parsimonious transformation.  This module implements the natural
answer: once a graph's schema has stabilized, fold every literal-node
property that the *parsimonious* rules would have stored as a record key
back into node records, and garbage-collect the orphaned literal nodes.

The optimizer is exact: ``optimize(F_dt^np(G))`` is structurally identical
to ``F_dt^p(G)`` (checked by the test suite), so it can be applied at any
point of an incremental pipeline — convert monotonically while the graph
evolves, compact when it settles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pg.model import PropertyGraph
from .config import DEFAULT_OPTIONS, TransformOptions
from .data_transform import TransformedGraph
from .inverse import pgschema_to_shacl
from .mapping import DTYPE_KEY, LANG_KEY, VALUE_KEY
from .schema_transform import SchemaTransformer, SchemaTransformResult


@dataclass
class OptimizationStats:
    """What one compaction pass changed."""

    edges_folded: int = 0
    literal_nodes_removed: int = 0
    record_values_created: int = 0


@dataclass
class OptimizedGraph:
    """A compacted graph with its new (parsimonious) schema and mapping."""

    graph: PropertyGraph
    schema_result: SchemaTransformResult
    stats: OptimizationStats


def optimize(
    transformed: TransformedGraph,
    options: TransformOptions | None = None,
) -> OptimizedGraph:
    """Compact a (typically non-parsimonious) transformed graph in place.

    The parsimonious schema transformation is re-derived from the graph's
    own mapping (via the inverse ``N``), so no external schema is needed.
    Edges whose relationship type the parsimonious rules realize as a
    record key — and whose target literal node carries the right datatype
    and no language tag — are folded into the source node's record; the
    literal node is removed once no edge references it.

    Args:
        transformed: the graph to compact (mutated in place).
        options: options for the re-derived parsimonious schema; the
            default is :data:`DEFAULT_OPTIONS`.

    Returns:
        The compacted graph together with the parsimonious schema result
        describing it.
    """
    options = options or DEFAULT_OPTIONS
    if not options.parsimonious:
        raise ValueError("optimization target must be a parsimonious configuration")

    shacl_schema = pgschema_to_shacl(transformed.mapping)
    target = SchemaTransformer(options).transform(shacl_schema)
    # The original transformation may have monotonically extended its
    # schema with fallback predicates (e.g. rdfs:subClassOf statements)
    # and external classes; re-create them in the target so the compacted
    # graph still conforms.
    for class_mapping in transformed.mapping.classes.values():
        if not class_mapping.from_shape:
            target.registry.ensure_external_class(class_mapping.class_iri)
    for predicate in transformed.mapping.fallback:
        target.registry.fallback_property(predicate)
    graph = transformed.graph
    stats = OptimizationStats()

    # Relationship type -> the key/value mapping that replaces it.
    foldable: dict[str, object] = {}
    for class_mapping in target.mapping.classes.values():
        for prop in class_mapping.properties.values():
            if prop.is_key_value():
                # The non-parsimonious graph used the same relationship
                # name the fallback edge realization would use: the
                # resolver derives both from the predicate IRI.
                foldable[prop.pg_key] = prop

    edges_to_delete: list[str] = []
    for edge in graph.edges.values():
        rel_type = next(iter(edge.labels), None)
        prop = foldable.get(rel_type)
        if prop is None:
            continue
        target_node = graph.nodes.get(edge.dst)
        if target_node is None:
            continue
        if (
            target_node.properties.get(DTYPE_KEY) != prop.datatype
            or LANG_KEY in target_node.properties
            or VALUE_KEY not in target_node.properties
        ):
            continue
        source_node = graph.nodes.get(edge.src)
        if source_node is None:
            continue
        source_node.append_property(prop.pg_key, target_node.properties[VALUE_KEY])
        stats.record_values_created += 1
        edges_to_delete.append(edge.id)
        stats.edges_folded += 1

    referenced: set[str] = set()
    for edge_id in edges_to_delete:
        graph.remove_edge(edge_id)
    for edge in graph.edges.values():
        referenced.add(edge.dst)
        referenced.add(edge.src)
    for node_id in [
        nid for nid, node in graph.nodes.items()
        if nid.startswith("lit:") and nid not in referenced
    ]:
        graph.remove_isolated_node(node_id)
        stats.literal_nodes_removed += 1

    return OptimizedGraph(graph=graph, schema_result=target, stats=stats)
