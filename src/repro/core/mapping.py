"""The schema-transformation mapping ``F_st`` (Problem 1).

Problem 1 asks for the *pair* ``(S_PG, F_st)``: the transformed PG-Schema
plus the mapping between the two schemas.  :class:`SchemaMapping` is that
mapping, and it is what the data transformation (``F_dt[F_st]``), the
inverse mappings ``M``/``N`` (Proposition 4.1), and the SPARQL-to-Cypher
query translator all consume.

The mapping is JSON-serializable so that a transformation can be persisted
and resumed (required for the incremental/monotone workflow of Sec. 5.4).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import TransformError
from ..shacl.model import UNBOUNDED

#: Property realized as a key/value attribute inside the node record.
MODE_KEY_VALUE = "key_value"
#: Property realized as an edge (to resource nodes, literal nodes, or both).
MODE_EDGE = "edge"

#: The property key holding the original IRI on every resource node.
IRI_KEY = "iri"
#: The property key holding the literal value on literal nodes.
VALUE_KEY = "value"
#: The property key holding the datatype IRI on literal nodes.
DTYPE_KEY = "dtype"
#: The property key holding the language tag on literal nodes.
LANG_KEY = "lang"
#: Label of generic resource nodes for IRIs with no known type.
RESOURCE_LABEL = "Resource"
#: Node type name of the generic resource type.
RESOURCE_TYPE = "resourceType"


@dataclass(frozen=True)
class LiteralTypeInfo:
    """How one literal datatype is realized as a PG node type.

    Attributes:
        datatype: the datatype IRI (e.g. ``xsd:gYear``).
        type_name: the PG-Schema node type name (e.g. ``gYearType``).
        label: the node label instances carry (e.g. ``YEAR``).
        content_type: PG content type of the ``value`` property.
    """

    datatype: str
    type_name: str
    label: str
    content_type: str


@dataclass
class PropertyMapping:
    """How one property shape ``phi`` is realized in the property graph.

    Attributes:
        predicate: the property IRI ``tau_p``.
        mode: :data:`MODE_KEY_VALUE` or :data:`MODE_EDGE`.
        pg_key: record key (key/value mode only).
        rel_type: relationship label (edge mode only).
        datatype: the single literal datatype (key/value mode only).
        literal_targets: datatype IRI -> label of the literal node type,
            for edge mode with literal alternatives.
        resource_targets: class IRI -> node label, for edge mode with
            ``sh:class`` alternatives.
        shape_targets: node shape name -> node label, for edge mode with
            ``sh:node`` (shape reference) alternatives.
        min_count / max_count: the cardinality pair ``C_p``.
        array: key/value mode with max > 1 (values stored as an array).
    """

    predicate: str
    mode: str
    pg_key: str | None = None
    rel_type: str | None = None
    datatype: str | None = None
    literal_targets: dict[str, str] = field(default_factory=dict)
    resource_targets: dict[str, str] = field(default_factory=dict)
    shape_targets: dict[str, str] = field(default_factory=dict)
    min_count: int = 0
    max_count: float = UNBOUNDED
    array: bool = False

    def is_key_value(self) -> bool:
        """True for key/value (record attribute) realization."""
        return self.mode == MODE_KEY_VALUE

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "predicate": self.predicate,
            "mode": self.mode,
            "pg_key": self.pg_key,
            "rel_type": self.rel_type,
            "datatype": self.datatype,
            "literal_targets": self.literal_targets,
            "resource_targets": self.resource_targets,
            "shape_targets": self.shape_targets,
            "min_count": self.min_count,
            "max_count": None if self.max_count == UNBOUNDED else self.max_count,
            "array": self.array,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PropertyMapping":
        """Inverse of :meth:`to_dict`."""
        return cls(
            predicate=data["predicate"],
            mode=data["mode"],
            pg_key=data.get("pg_key"),
            rel_type=data.get("rel_type"),
            datatype=data.get("datatype"),
            literal_targets=dict(data.get("literal_targets", {})),
            resource_targets=dict(data.get("resource_targets", {})),
            shape_targets=dict(data.get("shape_targets", {})),
            min_count=data.get("min_count", 0),
            max_count=(
                UNBOUNDED if data.get("max_count") is None else data["max_count"]
            ),
            array=data.get("array", False),
        )


@dataclass
class ClassMapping:
    """How one node shape / target class maps to a PG node type.

    Attributes:
        class_iri: the RDF class ``tau_s``.
        shape_name: the SHACL node shape name ``s``.
        node_type_name: the PG-Schema node type name.
        label: the PG label instances carry.
        parents: parent shape names (inheritance).
        properties: predicate IRI -> :class:`PropertyMapping` (effective,
            i.e. including inherited property shapes).
        local_predicates: the predicates whose property shapes were
            declared locally on this node shape (needed by the inverse
            mapping ``N`` to reconstruct the original schema exactly).
        from_shape: True when this mapping was created from a node shape;
            False for classes only referenced by ``sh:class`` constraints.
    """

    class_iri: str
    shape_name: str
    node_type_name: str
    label: str
    parents: tuple[str, ...] = ()
    properties: dict[str, PropertyMapping] = field(default_factory=dict)
    local_predicates: tuple[str, ...] = ()
    from_shape: bool = True

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "class_iri": self.class_iri,
            "shape_name": self.shape_name,
            "node_type_name": self.node_type_name,
            "label": self.label,
            "parents": list(self.parents),
            "properties": {k: v.to_dict() for k, v in self.properties.items()},
            "local_predicates": list(self.local_predicates),
            "from_shape": self.from_shape,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClassMapping":
        """Inverse of :meth:`to_dict`."""
        return cls(
            class_iri=data["class_iri"],
            shape_name=data["shape_name"],
            node_type_name=data["node_type_name"],
            label=data["label"],
            parents=tuple(data.get("parents", ())),
            properties={
                k: PropertyMapping.from_dict(v)
                for k, v in data.get("properties", {}).items()
            },
            local_predicates=tuple(data.get("local_predicates", ())),
            from_shape=data.get("from_shape", True),
        )


class SchemaMapping:
    """The full mapping ``F_st : S_G -> S_PG``.

    Lookup directions provided:

    * class IRI -> :class:`ClassMapping` (forward, used by ``F_dt``);
    * PG label -> class IRI (backward, used by ``M`` and the translator);
    * relationship type -> predicate IRI (backward);
    * record key -> predicate IRI per label (backward);
    * datatype IRI -> :class:`LiteralTypeInfo` (both directions).
    """

    def __init__(self, parsimonious: bool = True):
        self.parsimonious = parsimonious
        self.classes: dict[str, ClassMapping] = {}
        self.literal_types: dict[str, LiteralTypeInfo] = {}
        self.class_labels: dict[str, str] = {}  # label -> class IRI
        self.rel_types: dict[str, str] = {}  # rel label -> predicate IRI
        self.pg_keys: dict[str, str] = {}  # record key -> predicate IRI
        self.fallback: dict[str, PropertyMapping] = {}  # predicate -> mapping

    # ------------------------------------------------------------------ #

    def add_class(self, mapping: ClassMapping) -> None:
        """Register a class mapping and its backward indexes."""
        self.classes[mapping.class_iri] = mapping
        self.class_labels[mapping.label] = mapping.class_iri
        for prop in mapping.properties.values():
            self._index_property(prop)

    def _index_property(self, prop: PropertyMapping) -> None:
        if prop.rel_type is not None:
            existing = self.rel_types.get(prop.rel_type)
            if existing is not None and existing != prop.predicate:
                raise TransformError(
                    f"relationship type {prop.rel_type!r} maps to two predicates: "
                    f"{existing} and {prop.predicate}"
                )
            self.rel_types[prop.rel_type] = prop.predicate
        if prop.pg_key is not None:
            existing = self.pg_keys.get(prop.pg_key)
            if existing is not None and existing != prop.predicate:
                raise TransformError(
                    f"record key {prop.pg_key!r} maps to two predicates: "
                    f"{existing} and {prop.predicate}"
                )
            self.pg_keys[prop.pg_key] = prop.predicate

    def add_literal_type(self, info: LiteralTypeInfo) -> None:
        """Register a literal node type."""
        self.literal_types[info.datatype] = info

    def add_fallback(self, prop: PropertyMapping) -> None:
        """Register a mapping for a predicate not covered by any shape."""
        self.fallback[prop.predicate] = prop
        self._index_property(prop)

    # ------------------------------------------------------------------ #
    # Forward lookups (used by F_dt)
    # ------------------------------------------------------------------ #

    def class_mapping(self, class_iri: str) -> ClassMapping | None:
        """The mapping for ``class_iri``, or None."""
        return self.classes.get(class_iri)

    def property_for(self, class_iris: list[str], predicate: str) -> PropertyMapping | None:
        """Resolve how ``predicate`` is modeled for an entity whose types
        are ``class_iris`` (first matching class in sorted order wins,
        which makes resolution deterministic)."""
        for class_iri in sorted(class_iris):
            mapping = self.classes.get(class_iri)
            if mapping is not None:
                prop = mapping.properties.get(predicate)
                if prop is not None:
                    return prop
        # No class context (untyped subject, or predicate declared on a
        # different shape): fall back to any shape declaring the predicate.
        for class_iri in sorted(self.classes):
            prop = self.classes[class_iri].properties.get(predicate)
            if prop is not None:
                return prop
        return self.fallback.get(predicate)

    def label_for_class(self, class_iri: str) -> str | None:
        """The PG label assigned to ``class_iri``, or None."""
        mapping = self.classes.get(class_iri)
        return mapping.label if mapping else None

    # ------------------------------------------------------------------ #
    # Backward lookups (used by M, N, and the query translator)
    # ------------------------------------------------------------------ #

    def class_for_label(self, label: str) -> str | None:
        """The class IRI a label stands for, or None."""
        return self.class_labels.get(label)

    def predicate_for_rel(self, rel_type: str) -> str | None:
        """The predicate IRI a relationship type stands for, or None."""
        return self.rel_types.get(rel_type)

    def predicate_for_key(self, record_key: str) -> str | None:
        """The predicate IRI a record key stands for, or None."""
        return self.pg_keys.get(record_key)

    def literal_info_for_label(self, label: str) -> LiteralTypeInfo | None:
        """The literal type whose node label is ``label``, or None."""
        for info in self.literal_types.values():
            if info.label == label:
                return info
        return None

    def datatype_for_key(self, record_key: str) -> str | None:
        """The literal datatype of a key/value property, searching all
        class mappings (they agree by construction)."""
        for mapping in self.classes.values():
            for prop in mapping.properties.values():
                if prop.pg_key == record_key and prop.datatype is not None:
                    return prop.datatype
        return None

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        """Serialize the mapping (round-trips through :meth:`from_json`)."""
        payload = {
            "parsimonious": self.parsimonious,
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "literal_types": {
                k: {
                    "datatype": v.datatype,
                    "type_name": v.type_name,
                    "label": v.label,
                    "content_type": v.content_type,
                }
                for k, v in self.literal_types.items()
            },
            "fallback": {k: v.to_dict() for k, v in self.fallback.items()},
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SchemaMapping":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        mapping = cls(parsimonious=payload.get("parsimonious", True))
        for info in payload.get("literal_types", {}).values():
            mapping.add_literal_type(LiteralTypeInfo(**info))
        for class_data in payload.get("classes", {}).values():
            mapping.add_class(ClassMapping.from_dict(class_data))
        for prop_data in payload.get("fallback", {}).values():
            mapping.add_fallback(PropertyMapping.from_dict(prop_data))
        return mapping

    def __repr__(self) -> str:
        return (
            f"<SchemaMapping classes={len(self.classes)} "
            f"literal_types={len(self.literal_types)} "
            f"parsimonious={self.parsimonious}>"
        )
