"""Inverse mappings ``M : PG -> G`` and ``N : S_PG -> S_G`` (Prop. 4.1).

Information preservation (Definition 3.1) requires computable mappings
that reconstruct the original RDF graph from the transformed property
graph and the original SHACL schema from the transformed PG-Schema.  Both
mappings are driven by the schema mapping ``F_st`` (which Problem 1
defines as part of the transformation output).

``M`` reconstruction rules:

* entity node labels -> ``rdf:type`` triples (label -> class via ``F_st``);
* ``iri`` record key -> the subject term (``_:`` prefix marks blank nodes);
* other record keys -> literal triples with the datatype recorded by the
  schema mapping; array values expand to one triple each;
* edges to entity/resource nodes -> object triples (rel type -> predicate);
* edges to literal nodes -> literal triples rebuilt from the node's
  ``value`` / ``dtype`` / ``lang`` record.
"""

from __future__ import annotations

from ..errors import TransformError
from ..namespaces import RDF_TYPE, XSD
from ..pg.model import PGNode, PropertyGraph
from ..rdf.graph import Graph
from ..rdf.terms import IRI, BlankNode, Literal, Object, Subject, Triple
from ..shacl.model import (
    UNBOUNDED,
    ClassType,
    LiteralType,
    NodeShape,
    NodeShapeRef,
    PropertyShape,
    ShapeSchema,
    ValueType,
)
from .mapping import (
    DTYPE_KEY,
    IRI_KEY,
    LANG_KEY,
    MODE_KEY_VALUE,
    RESOURCE_LABEL,
    SchemaMapping,
    VALUE_KEY,
)

_TYPE = IRI(RDF_TYPE)


def scalar_to_lexical(value: object) -> str:
    """The RDF lexical form of a PG scalar value."""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _subject_term(node: PGNode) -> Subject:
    iri_value = node.properties.get(IRI_KEY)
    if not isinstance(iri_value, str):
        raise TransformError(f"node {node.id} has no usable iri property")
    if iri_value.startswith("_:"):
        return BlankNode(iri_value[2:])
    return IRI(iri_value)


def _is_literal_node(node: PGNode) -> bool:
    return DTYPE_KEY in node.properties and VALUE_KEY in node.properties


def _literal_term(node: PGNode) -> Literal:
    dtype = node.properties[DTYPE_KEY]
    lexical = scalar_to_lexical(node.properties[VALUE_KEY])
    lang = node.properties.get(LANG_KEY)
    if lang is not None:
        return Literal(lexical, language=str(lang))
    return Literal(lexical, str(dtype))


def pg_to_rdf(graph: PropertyGraph, mapping: SchemaMapping) -> Graph:
    """The computable mapping ``M``: rebuild the RDF graph from the PG.

    Raises:
        TransformError: when the PG contains elements the mapping cannot
            attribute to an RDF construct (never happens for S3PG output).
    """
    rdf = Graph()
    subjects: dict[str, Subject] = {}
    # Record keys map to a single (predicate, datatype) by construction;
    # precompute the table instead of scanning the mapping per node key.
    key_datatypes: dict[str, str] = {}
    for class_mapping in mapping.classes.values():
        for prop in class_mapping.properties.values():
            if prop.pg_key is not None and prop.datatype is not None:
                key_datatypes.setdefault(prop.pg_key, prop.datatype)
    for node in graph.nodes.values():
        if _is_literal_node(node):
            continue
        subject = _subject_term(node)
        subjects[node.id] = subject
        for label in node.labels:
            if label == RESOURCE_LABEL:
                continue
            class_iri = mapping.class_for_label(label)
            if class_iri is None:
                raise TransformError(f"label {label!r} has no class mapping")
            rdf.add(Triple(subject, _TYPE, IRI(class_iri)))
        for key, value in node.properties.items():
            if key == IRI_KEY:
                continue
            predicate = mapping.predicate_for_key(key)
            if predicate is None:
                raise TransformError(f"record key {key!r} has no predicate mapping")
            datatype = key_datatypes.get(key, XSD.string)
            values = value if isinstance(value, list) else [value]
            for item in values:
                rdf.add(
                    Triple(
                        subject,
                        IRI(predicate),
                        Literal(scalar_to_lexical(item), datatype),
                    )
                )
    for edge in graph.edges.values():
        rel_type = edge.label()
        predicate = mapping.predicate_for_rel(rel_type)
        if predicate is None:
            raise TransformError(f"relationship {rel_type!r} has no predicate mapping")
        subject = subjects.get(edge.src)
        if subject is None:
            raise TransformError(f"edge {edge.id} starts at a literal node")
        target_node = graph.nodes[edge.dst]
        obj: Object
        if _is_literal_node(target_node):
            obj = _literal_term(target_node)
        else:
            obj = _subject_term(target_node)
        rdf.add(Triple(subject, IRI(predicate), obj))
    return rdf


def pgschema_to_shacl(mapping: SchemaMapping) -> ShapeSchema:
    """The computable mapping ``N``: rebuild the SHACL schema from ``F_st``.

    Only mappings that originate from node shapes are reconstructed;
    auxiliary types created for classes without shapes or for fallback
    predicates have no SHACL counterpart by construction.
    """
    schema = ShapeSchema()
    for class_mapping in mapping.classes.values():
        if not class_mapping.from_shape:
            continue
        property_shapes: list[PropertyShape] = []
        for predicate in class_mapping.local_predicates:
            prop = class_mapping.properties[predicate]
            value_types: list[ValueType] = []
            if prop.mode == MODE_KEY_VALUE:
                value_types.append(LiteralType(prop.datatype))
            else:
                for datatype in prop.literal_targets:
                    value_types.append(LiteralType(datatype))
                for class_iri in prop.resource_targets:
                    value_types.append(ClassType(class_iri))
                for shape_name in prop.shape_targets:
                    value_types.append(NodeShapeRef(shape_name))
            property_shapes.append(
                PropertyShape(
                    path=predicate,
                    value_types=tuple(value_types),
                    min_count=prop.min_count,
                    max_count=prop.max_count,
                )
            )
        schema.add(
            NodeShape(
                name=class_mapping.shape_name,
                target_class=(
                    class_mapping.class_iri
                    if class_mapping.class_iri != class_mapping.shape_name
                    else None
                ),
                extends=class_mapping.parents,
                property_shapes=property_shapes,
            )
        )
    return schema


def property_shapes_equivalent(a: PropertyShape, b: PropertyShape) -> bool:
    """Equality up to the ordering of ``sh:or`` alternatives."""
    return (
        a.path == b.path
        and a.min_count == b.min_count
        and a.max_count == b.max_count
        and set(a.value_types) == set(b.value_types)
    )


def shape_schemas_equivalent(a: ShapeSchema, b: ShapeSchema) -> bool:
    """Equality of shape schemas up to ordering of shapes/alternatives."""
    if set(a.names()) != set(b.names()):
        return False
    for name in a.names():
        shape_a, shape_b = a[name], b[name]
        if shape_a.target_class != shape_b.target_class:
            return False
        if set(shape_a.extends) != set(shape_b.extends):
            return False
        props_a = {phi.path: phi for phi in shape_a.property_shapes}
        props_b = {phi.path: phi for phi in shape_b.property_shapes}
        if set(props_a) != set(props_b):
            return False
        for path, phi_a in props_a.items():
            if not property_shapes_equivalent(phi_a, props_b[path]):
                return False
    return True


def rebuild_transformed(pgdir, mapping_path):
    """Rebuild a :class:`TransformedGraph` from CSV + ``mapping.json`` artifacts.

    The schema mapping records everything a fresh run needs: the model
    flavour (parsimonious or monotone), the shape-derived PG-Schema (via
    :func:`pgschema_to_shacl`), and the fallback predicates / external
    classes the original run minted.  Used by ``repro compact``,
    ``repro serve``, and checkpoint resume.
    """
    from pathlib import Path

    from ..pg.csv_io import read_csv
    from .config import DEFAULT_OPTIONS, MONOTONE_OPTIONS
    from .data_transform import TransformedGraph
    from .schema_transform import SchemaTransformer

    mapping = SchemaMapping.from_json(
        Path(mapping_path).read_text(encoding="utf-8")
    )
    options = DEFAULT_OPTIONS if mapping.parsimonious else MONOTONE_OPTIONS
    schema_result = SchemaTransformer(options).transform(
        pgschema_to_shacl(mapping)
    )
    # Re-register the fallback predicates and external classes the
    # original run added, so the rebuilt schema covers the whole graph.
    for class_mapping in mapping.classes.values():
        if not class_mapping.from_shape:
            schema_result.registry.ensure_external_class(class_mapping.class_iri)
    for predicate in mapping.fallback:
        schema_result.registry.fallback_property(predicate)
    return TransformedGraph(
        graph=read_csv(pgdir), schema_result=schema_result, options=options
    )
