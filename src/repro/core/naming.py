"""Deterministic naming of PG labels, keys, and type names from IRIs.

S3PG derives property-graph identifiers from IRIs, e.g. the class
``schema:ShoppingCenter`` becomes the label ``sch_ShoppingCenter`` and the
predicate ``dbp:address`` becomes the relationship type ``dbp_address``
(cf. the Q22 Cypher queries in Section 5.2).  Names must be deterministic
(monotonicity) and collision-free (information preservation), so the
resolver keeps a registry and disambiguates clashes with a stable hash
suffix.
"""

from __future__ import annotations

import hashlib
import re

from ..namespaces import local_name
from ..rdf.namespace import PrefixMap

_IDENTIFIER_RE = re.compile(r"[^0-9A-Za-z_]")


def sanitize(text: str) -> str:
    """Turn arbitrary text into a safe PG identifier fragment."""
    cleaned = _IDENTIFIER_RE.sub("_", text).strip("_")
    if not cleaned:
        cleaned = "x"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _short_hash(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:6]


class NameResolver:
    """Maps IRIs to unique PG names and remembers the inverse.

    Args:
        prefixes: prefix table used to derive ``prefix_local`` names.
        use_prefixes: when False, bare local names are used (Figure 2
            style); collisions are still disambiguated.
    """

    def __init__(self, prefixes: PrefixMap | None = None, use_prefixes: bool = True):
        self.prefixes = prefixes or PrefixMap.with_defaults()
        self.use_prefixes = use_prefixes
        self._iri_to_name: dict[str, str] = {}
        self._name_to_iri: dict[str, str] = {}

    def name_for(self, iri: str) -> str:
        """The stable PG name for ``iri`` (allocating it on first use)."""
        cached = self._iri_to_name.get(iri)
        if cached is not None:
            return cached
        candidate = self._base_name(iri)
        if candidate in self._name_to_iri and self._name_to_iri[candidate] != iri:
            candidate = f"{candidate}_{_short_hash(iri)}"
        self._iri_to_name[iri] = candidate
        self._name_to_iri[candidate] = iri
        return candidate

    def _base_name(self, iri: str) -> str:
        if self.use_prefixes:
            compacted = self.prefixes.compact(iri)
            if compacted != iri:
                prefix, local = compacted.split(":", 1)
                return sanitize(f"{prefix}_{local}")
        return sanitize(local_name(iri))

    def iri_for(self, name: str) -> str | None:
        """The IRI a name was allocated for, or None."""
        return self._name_to_iri.get(name)

    def known_names(self) -> dict[str, str]:
        """A copy of the name -> IRI registry."""
        return dict(self._name_to_iri)


def type_name_for(label: str) -> str:
    """Derive a PG-Schema node/edge type name from a label.

    ``Person`` -> ``personType``; ``dbp_address`` -> ``dbp_addressType``.
    """
    if not label:
        return "anonType"
    return label[0].lower() + label[1:] + "Type"
