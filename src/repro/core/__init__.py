"""The paper's contribution: S3PG schema & data transformation, inverses,
and incremental (monotone) maintenance."""

from .config import DEFAULT_OPTIONS, MONOTONE_OPTIONS, TransformOptions
from .data_transform import (
    DataTransformer,
    DataTransformStats,
    TransformedGraph,
    edge_id_for,
    encode_literal_value,
    literal_node_id,
    node_id_for,
    transform_data,
)
from .incremental import DeltaStats, IncrementalTransformer, apply_delta
from .inverse import (
    pg_to_rdf,
    pgschema_to_shacl,
    property_shapes_equivalent,
    rebuild_transformed,
    scalar_to_lexical,
    shape_schemas_equivalent,
)
from .mapping import (
    ClassMapping,
    DTYPE_KEY,
    IRI_KEY,
    LANG_KEY,
    LiteralTypeInfo,
    MODE_EDGE,
    MODE_KEY_VALUE,
    PropertyMapping,
    RESOURCE_LABEL,
    RESOURCE_TYPE,
    SchemaMapping,
    VALUE_KEY,
)
from .g2gml import render_g2gml
from .naming import NameResolver, sanitize, type_name_for
from .optimize import OptimizationStats, OptimizedGraph, optimize
from .pipeline import S3PG, TransformResult, transform, transform_file_parallel
from .schema_evolution import (
    SchemaDeltaStats,
    SchemaEvolutionConflict,
    apply_schema_delta,
    merge_shape_schemas,
)
from .streaming import StreamingDataTransformer, transform_file
from .schema_transform import (
    SchemaTransformer,
    SchemaTransformResult,
    TypeRegistry,
    transform_schema,
)

__all__ = [
    "ClassMapping",
    "DEFAULT_OPTIONS",
    "DTYPE_KEY",
    "DataTransformStats",
    "DataTransformer",
    "DeltaStats",
    "IRI_KEY",
    "IncrementalTransformer",
    "LANG_KEY",
    "LiteralTypeInfo",
    "MODE_EDGE",
    "MODE_KEY_VALUE",
    "MONOTONE_OPTIONS",
    "NameResolver",
    "OptimizationStats",
    "OptimizedGraph",
    "PropertyMapping",
    "RESOURCE_LABEL",
    "RESOURCE_TYPE",
    "S3PG",
    "SchemaDeltaStats",
    "SchemaEvolutionConflict",
    "SchemaMapping",
    "SchemaTransformResult",
    "SchemaTransformer",
    "StreamingDataTransformer",
    "TransformOptions",
    "TransformResult",
    "TransformedGraph",
    "TypeRegistry",
    "VALUE_KEY",
    "apply_delta",
    "apply_schema_delta",
    "edge_id_for",
    "encode_literal_value",
    "literal_node_id",
    "merge_shape_schemas",
    "node_id_for",
    "optimize",
    "pg_to_rdf",
    "pgschema_to_shacl",
    "property_shapes_equivalent",
    "rebuild_transformed",
    "render_g2gml",
    "sanitize",
    "scalar_to_lexical",
    "shape_schemas_equivalent",
    "transform",
    "transform_data",
    "transform_file",
    "transform_file_parallel",
    "transform_schema",
    "type_name_for",
]
