"""End-to-end S3PG pipeline: the library's main entry point.

Typical use::

    from repro import transform
    result = transform(rdf_graph, shape_schema)
    result.graph          # the property graph
    result.pg_schema      # the PG-Schema
    result.mapping        # F_st
    result.timings        # phase timings (schema / data seconds)

followed by optional loading into a store::

    store = result.load()      # indexed PropertyGraphStore

and incremental maintenance::

    from repro.core.incremental import apply_delta
    apply_delta(result.transformed, added=new_triples)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .. import obs
from ..pg.store import PropertyGraphStore
from ..pgschema.model import PGSchema
from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from ..shacl.model import ShapeSchema
from .config import DEFAULT_OPTIONS, TransformOptions
from .data_transform import DataTransformer, TransformedGraph
from .mapping import SchemaMapping
from .schema_transform import SchemaTransformer, SchemaTransformResult


@dataclass
class TransformResult:
    """Everything produced by one S3PG run."""

    transformed: TransformedGraph
    schema_result: SchemaTransformResult
    options: TransformOptions
    timings: dict[str, float] = field(default_factory=dict)
    #: Engine phase timers / shard records for parallel runs, else None.
    instrumentation: dict | None = None

    @property
    def graph(self):
        """The output property graph."""
        return self.transformed.graph

    @property
    def pg_schema(self) -> PGSchema:
        """The output PG-Schema ``S_PG``."""
        return self.schema_result.pg_schema

    @property
    def mapping(self) -> SchemaMapping:
        """The schema mapping ``F_st``."""
        return self.schema_result.mapping

    @property
    def stats(self):
        """Data-transformation counters."""
        return self.transformed.stats

    def load(self, property_indexes: tuple[str, ...] = ("iri",)) -> PropertyGraphStore:
        """Load the output graph into an indexed store (the 'L' phase of
        Table 4), recording the load time under ``timings["load_s"]``."""
        start = time.perf_counter()
        store = PropertyGraphStore(property_indexes=property_indexes)
        store.bulk_load(self.graph)
        self.timings["load_s"] = time.perf_counter() - start
        return store


class S3PG:
    """The Standardized SHACL Shapes-based PG Transformation.

    Args:
        options: parsimonious / non-parsimonious mode and related knobs.
        prefixes: prefix table used for deterministic PG naming.
    """

    def __init__(
        self,
        options: TransformOptions = DEFAULT_OPTIONS,
        prefixes: PrefixMap | None = None,
    ):
        self.options = options
        self.prefixes = prefixes

    def transform_schema(self, shape_schema: ShapeSchema) -> SchemaTransformResult:
        """Run only ``F_st`` (Problem 1)."""
        return SchemaTransformer(self.options, self.prefixes).transform(shape_schema)

    def transform(
        self,
        graph: Graph,
        shape_schema: ShapeSchema,
        parallel: int | None = None,
    ) -> TransformResult:
        """Run the full pipeline: ``F_st`` then ``F_dt`` (Problems 1 & 2).

        Args:
            graph: the RDF instance data.
            shape_schema: the SHACL shape schema.
            parallel: when set, run the data transformation through the
                sharded process-parallel engine with this many workers
                (``1`` exercises the partition/merge path in-process).
                Monotonicity guarantees the output is isomorphic to the
                serial one.
        """
        timings: dict[str, float] = {}
        with obs.span(
            "s3pg.transform",
            parsimonious=self.options.parsimonious,
            parallel=parallel or 0,
        ) as root:
            with obs.timed_span("s3pg.schema_transform") as schema_span:
                schema_result = self.transform_schema(shape_schema)
            timings["schema_s"] = schema_span.duration_s

            instrumentation: dict | None = None
            with obs.timed_span("s3pg.data_transform") as data_span:
                if parallel is not None:
                    transformed, instrumentation = self._transform_parallel(
                        graph, schema_result, parallel, timings
                    )
                else:
                    transformed = DataTransformer(
                        schema_result, self.options
                    ).transform(graph)
            timings["data_s"] = data_span.duration_s
            timings["transform_s"] = timings["schema_s"] + timings["data_s"]

            n_nodes = transformed.graph.node_count()
            n_edges = transformed.graph.edge_count()
            root.set("triples", len(graph))
            root.set("nodes", n_nodes)
            root.set("edges", n_edges)
        _publish_transform_metrics(len(graph), n_nodes, n_edges, timings)
        return TransformResult(
            transformed=transformed,
            schema_result=schema_result,
            options=self.options,
            timings=timings,
            instrumentation=instrumentation,
        )

    def _transform_parallel(
        self,
        graph: Graph,
        schema_result: SchemaTransformResult,
        workers: int,
        timings: dict[str, float],
    ) -> tuple[TransformedGraph, dict]:
        from ..engine import EngineConfig, ParallelEngine

        engine = ParallelEngine(
            schema_result, self.options, EngineConfig(max_workers=workers)
        )
        transformed = engine.transform(graph)
        for name, record in engine.instrumentation.phases.items():
            timings[f"engine_{name}_s"] = record.wall_s
        return transformed, engine.instrumentation.as_dict()


def _publish_transform_metrics(
    triples: int, n_nodes: int, n_edges: int, timings: dict[str, float]
) -> None:
    """Flush one transform run's totals into the global metrics registry."""
    metrics = obs.get_metrics()
    metrics.counter(
        "repro_transform_runs_total", help="completed S3PG transformations"
    ).inc()
    metrics.counter(
        "repro_transform_triples_total", help="RDF triples transformed"
    ).inc(triples)
    metrics.counter(
        "repro_transform_nodes_total", help="property-graph nodes produced"
    ).inc(n_nodes)
    metrics.counter(
        "repro_transform_edges_total", help="property-graph edges produced"
    ).inc(n_edges)
    seconds = metrics.histogram(
        "repro_transform_seconds", help="per-phase transform wall time"
    )
    seconds.observe(timings["schema_s"], phase="schema")
    seconds.observe(timings["data_s"], phase="data")


def transform(
    graph: Graph,
    shape_schema: ShapeSchema,
    options: TransformOptions = DEFAULT_OPTIONS,
    prefixes: PrefixMap | None = None,
    parallel: int | None = None,
) -> TransformResult:
    """Transform an RDF graph + SHACL schema into a PG + PG-Schema."""
    return S3PG(options, prefixes).transform(graph, shape_schema, parallel=parallel)


def transform_file_parallel(
    path,
    shape_schema: ShapeSchema,
    options: TransformOptions = DEFAULT_OPTIONS,
    prefixes: PrefixMap | None = None,
    workers: int | None = None,
    shards: int | None = None,
    shard_timeout_s: float | None = None,
    debug: bool = False,
) -> TransformResult:
    """Transform an N-Triples file with the sharded parallel engine.

    The file-based counterpart of ``transform(..., parallel=N)``: the
    input is split into per-shard N-Triples files (bounded memory, one
    streaming pass) and each shard is converted by a worker process.

    Args:
        path: the N-Triples document.
        shape_schema: the SHACL shape schema.
        options / prefixes: as for :func:`transform`.
        workers: worker processes (default: one per CPU).
        shards: subject-hash shards (default: ``workers``).
        shard_timeout_s: per-shard budget before retry / serial fallback.
        debug: assert the pure-union merge invariant.
    """
    from ..engine import EngineConfig, ParallelEngine

    timings: dict[str, float] = {}
    with obs.span("s3pg.transform_file", workers=workers or 0):
        with obs.timed_span("s3pg.schema_transform") as schema_span:
            schema_result = SchemaTransformer(options, prefixes).transform(
                shape_schema
            )
        timings["schema_s"] = schema_span.duration_s

        engine = ParallelEngine(
            schema_result,
            options,
            EngineConfig(
                max_workers=workers,
                shards=shards,
                shard_timeout_s=shard_timeout_s,
                debug=debug,
            ),
        )
        with obs.timed_span("s3pg.data_transform") as data_span:
            transformed = engine.transform_file(path)
        timings["data_s"] = data_span.duration_s
    timings["transform_s"] = timings["schema_s"] + timings["data_s"]
    for name, record in engine.instrumentation.phases.items():
        timings[f"engine_{name}_s"] = record.wall_s
    _publish_transform_metrics(
        engine.instrumentation.counters.get("triples", 0),
        transformed.graph.node_count(),
        transformed.graph.edge_count(),
        timings,
    )
    return TransformResult(
        transformed=transformed,
        schema_result=schema_result,
        options=options,
        timings=timings,
        instrumentation=engine.instrumentation.as_dict(),
    )
