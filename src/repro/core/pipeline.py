"""End-to-end S3PG pipeline: the library's main entry point.

Typical use::

    from repro import transform
    result = transform(rdf_graph, shape_schema)
    result.graph          # the property graph
    result.pg_schema      # the PG-Schema
    result.mapping        # F_st
    result.timings        # phase timings (schema / data seconds)

followed by optional loading into a store::

    store = result.load()      # indexed PropertyGraphStore

and incremental maintenance::

    from repro.core.incremental import apply_delta
    apply_delta(result.transformed, added=new_triples)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..pg.store import PropertyGraphStore
from ..pgschema.model import PGSchema
from ..rdf.graph import Graph
from ..rdf.namespace import PrefixMap
from ..shacl.model import ShapeSchema
from .config import DEFAULT_OPTIONS, TransformOptions
from .data_transform import DataTransformer, TransformedGraph
from .mapping import SchemaMapping
from .schema_transform import SchemaTransformer, SchemaTransformResult


@dataclass
class TransformResult:
    """Everything produced by one S3PG run."""

    transformed: TransformedGraph
    schema_result: SchemaTransformResult
    options: TransformOptions
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def graph(self):
        """The output property graph."""
        return self.transformed.graph

    @property
    def pg_schema(self) -> PGSchema:
        """The output PG-Schema ``S_PG``."""
        return self.schema_result.pg_schema

    @property
    def mapping(self) -> SchemaMapping:
        """The schema mapping ``F_st``."""
        return self.schema_result.mapping

    @property
    def stats(self):
        """Data-transformation counters."""
        return self.transformed.stats

    def load(self, property_indexes: tuple[str, ...] = ("iri",)) -> PropertyGraphStore:
        """Load the output graph into an indexed store (the 'L' phase of
        Table 4), recording the load time under ``timings["load_s"]``."""
        start = time.perf_counter()
        store = PropertyGraphStore(property_indexes=property_indexes)
        store.bulk_load(self.graph)
        self.timings["load_s"] = time.perf_counter() - start
        return store


class S3PG:
    """The Standardized SHACL Shapes-based PG Transformation.

    Args:
        options: parsimonious / non-parsimonious mode and related knobs.
        prefixes: prefix table used for deterministic PG naming.
    """

    def __init__(
        self,
        options: TransformOptions = DEFAULT_OPTIONS,
        prefixes: PrefixMap | None = None,
    ):
        self.options = options
        self.prefixes = prefixes

    def transform_schema(self, shape_schema: ShapeSchema) -> SchemaTransformResult:
        """Run only ``F_st`` (Problem 1)."""
        return SchemaTransformer(self.options, self.prefixes).transform(shape_schema)

    def transform(self, graph: Graph, shape_schema: ShapeSchema) -> TransformResult:
        """Run the full pipeline: ``F_st`` then ``F_dt`` (Problems 1 & 2)."""
        timings: dict[str, float] = {}
        start = time.perf_counter()
        schema_result = self.transform_schema(shape_schema)
        timings["schema_s"] = time.perf_counter() - start

        start = time.perf_counter()
        transformed = DataTransformer(schema_result, self.options).transform(graph)
        timings["data_s"] = time.perf_counter() - start
        timings["transform_s"] = timings["schema_s"] + timings["data_s"]
        return TransformResult(
            transformed=transformed,
            schema_result=schema_result,
            options=self.options,
            timings=timings,
        )


def transform(
    graph: Graph,
    shape_schema: ShapeSchema,
    options: TransformOptions = DEFAULT_OPTIONS,
    prefixes: PrefixMap | None = None,
) -> TransformResult:
    """Transform an RDF graph + SHACL schema into a PG + PG-Schema."""
    return S3PG(options, prefixes).transform(graph, shape_schema)
