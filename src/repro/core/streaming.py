"""File-based streaming data transformation (Algorithm 1's input model).

Algorithm 1 "takes G in the form of file F and reads F triple by triple to
process the stream of triples".  :func:`transform_file` follows that
discipline literally: the N-Triples file is scanned twice (once per phase)
and no triple set is ever materialized in memory — the peak footprint is
the output property graph plus the entity-type map, which is what lets the
paper process hundreds of millions of triples within a 32 GB budget.
"""

from __future__ import annotations

from pathlib import Path

from ..namespaces import RDF_TYPE
from ..pg.model import PropertyGraph
from ..rdf.ntriples import iter_ntriples
from ..rdf.terms import IRI, Subject
from .config import DEFAULT_OPTIONS, TransformOptions
from .data_transform import (
    DataTransformer,
    DataTransformStats,
    TransformedGraph,
)
from .schema_transform import SchemaTransformResult

_TYPE = IRI(RDF_TYPE)


class StreamingDataTransformer(DataTransformer):
    """Runs Algorithm 1 over an N-Triples file in two streaming passes."""

    def transform_file(self, path: str | Path) -> TransformedGraph:
        """Transform the triples in ``path`` without materializing them.

        Args:
            path: an N-Triples document.

        Returns:
            The transformation result; ``stats.triples_processed`` counts
            the first pass (the file is scanned twice).
        """
        path = Path(path)
        pg = PropertyGraph()
        stats = DataTransformStats()
        result = TransformedGraph(
            graph=pg, schema_result=self.schema_result,
            options=self.options, stats=stats,
        )

        # Phase 1 - stream once for rdf:type statements.
        entity_types: dict[Subject, list[IRI]] = {}
        for triple in iter_ntriples(path):
            stats.triples_processed += 1
            if triple.p == _TYPE and isinstance(triple.o, IRI):
                entity_types.setdefault(triple.s, []).append(triple.o)
        for entity, types in entity_types.items():
            self._create_entity_node(pg, entity, types, stats)

        # Phase 2 - stream again for property statements.
        type_keys = {
            entity: tuple(sorted(t.value for t in types))
            for entity, types in entity_types.items()
        }
        resolution_cache: dict = {}
        for triple in iter_ntriples(path):
            if triple.p == _TYPE and isinstance(triple.o, IRI):
                continue
            self._convert_property_triple(
                pg, triple, entity_types, type_keys, resolution_cache, stats
            )
        return result


def transform_file(
    path: str | Path,
    schema_result: SchemaTransformResult,
    options: TransformOptions = DEFAULT_OPTIONS,
) -> TransformedGraph:
    """Transform an N-Triples file with the streaming two-pass algorithm."""
    return StreamingDataTransformer(schema_result, options).transform_file(path)
