"""G2GML mapping generation from an S3PG schema mapping.

G2GML [Chiba, Yamanaka, Matsumoto; ISWC 2020] is a declarative language
mapping RDF graph patterns to property-graph elements; the paper's related
work notes that "it is possible to extend S3PG to produce G2GML mappings
as an additional output".  This module implements that extension: the
``F_st`` mapping is rendered as a G2GML document whose node maps carry the
key/value properties (with their SPARQL ``OPTIONAL`` sources) and whose
edge maps cover both resource-to-resource edges and S3PG's literal-node
materialization.

Example output::

    PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>

    # node map: Person
    (e:Person {iri: e, name: name})
        ?e rdf:type <http://x/Person> .
        OPTIONAL { ?e <http://x/name> ?name }

    # edge map: (Person)-[knows]->(Person)
    (e1:Person)-[:knows]->(e2:Person)
        ?e1 <http://x/knows> ?e2 .
"""

from __future__ import annotations

from ..namespaces import RDF
from .mapping import MODE_KEY_VALUE, SchemaMapping


def _node_map(class_mapping, mapping: SchemaMapping) -> list[str]:
    label = class_mapping.label
    key_value_props = [
        prop for prop in class_mapping.properties.values()
        if prop.mode == MODE_KEY_VALUE
    ]
    prop_parts = ["iri: e"] + [f"{p.pg_key}: {p.pg_key}" for p in key_value_props]
    lines = [f"# node map: {label}"]
    lines.append(f"(e:{label} {{{', '.join(prop_parts)}}})")
    lines.append(f"    ?e rdf:type <{class_mapping.class_iri}> .")
    for prop in key_value_props:
        clause = f"?e <{prop.predicate}> ?{prop.pg_key}"
        if prop.min_count == 0:
            lines.append(f"    OPTIONAL {{ {clause} }}")
        else:
            lines.append(f"    {clause} .")
    return lines


def _edge_maps(class_mapping, mapping: SchemaMapping) -> list[str]:
    lines: list[str] = []
    source_label = class_mapping.label
    for predicate in class_mapping.local_predicates:
        prop = class_mapping.properties[predicate]
        if prop.mode == MODE_KEY_VALUE:
            continue
        targets = {
            **{anchor: label for anchor, label in prop.resource_targets.items()},
            **{anchor: label for anchor, label in prop.shape_targets.items()},
        }
        for anchor, target_label in sorted(targets.items()):
            lines.append(
                f"# edge map: ({source_label})-[{prop.rel_type}]->({target_label})"
            )
            lines.append(
                f"(e1:{source_label})-[:{prop.rel_type}]->(e2:{target_label})"
            )
            lines.append(f"    ?e1 <{predicate}> ?e2 .")
        for datatype, literal_label in sorted(prop.literal_targets.items()):
            lines.append(
                f"# edge map: ({source_label})-[{prop.rel_type}]->"
                f"({literal_label} literal node, datatype <{datatype}>)"
            )
            lines.append(
                f"(e1:{source_label})-[:{prop.rel_type}]->"
                f"(v:{literal_label} {{value: v}})"
            )
            lines.append(f"    ?e1 <{predicate}> ?v .")
            lines.append(f"    FILTER(datatype(?v) = <{datatype}>)")
    return lines


def render_g2gml(mapping: SchemaMapping) -> str:
    """Render the schema mapping as a G2GML document.

    Node maps are emitted for every shape-derived class; edge maps for
    every edge-realized property, one per target alternative (resource
    targets map node-to-node, literal targets map to S3PG's value nodes
    with a ``datatype()`` filter selecting the alternative).
    """
    lines = [f"PREFIX rdf: <{RDF.base}>", ""]
    for class_iri in sorted(mapping.classes):
        class_mapping = mapping.classes[class_iri]
        if not class_mapping.from_shape:
            continue
        lines.extend(_node_map(class_mapping, mapping))
        lines.append("")
    for class_iri in sorted(mapping.classes):
        class_mapping = mapping.classes[class_iri]
        if not class_mapping.from_shape:
            continue
        edge_lines = _edge_maps(class_mapping, mapping)
        if edge_lines:
            lines.extend(edge_lines)
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"
