"""Incremental (monotone) maintenance of a transformed property graph.

Section 4.2.1 / 5.4: when the source RDF graph evolves, S3PG converts only
the delta instead of re-running the whole transformation.  Because every
generated identifier is a deterministic function of the input terms (see
:mod:`repro.core.data_transform`), adding the conversion of
``G_delta`` to the conversion of ``G`` yields exactly the conversion of
``G ∪ G_delta`` — this is Definition 3.4, and the test suite checks it
structurally.

Deletions are supported as the natural inverse: key/values and edges
introduced by removed triples are retracted, and literal/resource nodes
are garbage-collected once orphaned.  Deltas are expected to be
*effective* with respect to the source graph — an "added" triple must be
genuinely new and a "removed" triple genuinely present — since re-adding
an existing key/value triple would duplicate the value (the CDC pipeline
filters deltas down to their effective part before applying them).

When the maintained graph is served through a
:class:`~repro.pg.store.PropertyGraphStore`, pass the store to the
transformer: every mutation is then routed through the store's
index-consistent mutators, so the label/adjacency/property indexes, the
planner statistics (``rel_count``), and the store's mutation ``version``
advance with each delta.  Without this, plan-cache entries keyed on the
old catalog version would keep serving plans costed against stale
statistics.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..errors import TransformError
from ..namespaces import RDF_TYPE
from ..pg.model import PGNode, PropertyGraph
from ..pg.store import PropertyGraphStore
from ..rdf.terms import IRI, BlankNode, Literal, Triple
from .config import TransformOptions
from .data_transform import (
    DataTransformStats,
    TransformedGraph,
    edge_id_for,
    encode_literal_value,
    literal_node_id,
    node_id_for,
)
from .mapping import IRI_KEY, RESOURCE_LABEL


@dataclass
class DeltaStats:
    """Counters for one incremental update."""

    added_triples: int = 0
    removed_triples: int = 0
    nodes_added: int = 0
    nodes_removed: int = 0
    edges_added: int = 0
    edges_removed: int = 0


class IncrementalTransformer:
    """Applies RDF-level deltas to an existing :class:`TransformedGraph`.

    Args:
        transformed: a previous transformation result to maintain in place.
        store: optional :class:`PropertyGraphStore` wrapping the same
            graph; when given, all mutations go through the store so its
            indexes, planner statistics, and ``version`` stay consistent.
    """

    def __init__(
        self,
        transformed: TransformedGraph,
        store: PropertyGraphStore | None = None,
    ):
        self.transformed = transformed
        self.graph = transformed.graph
        if store is not None and store.graph is not transformed.graph:
            raise TransformError(
                "store must wrap the transformed graph it maintains"
            )
        self.store = store
        self.mapping = transformed.mapping
        self.registry = transformed.schema_result.registry
        self.options: TransformOptions = transformed.options
        # Incident-edge counts, maintained across updates so orphan
        # detection does not need to scan the edge set.
        self._degree: dict[str, int] = {}
        for edge in self.graph.edges.values():
            self._degree[edge.src] = self._degree.get(edge.src, 0) + 1
            self._degree[edge.dst] = self._degree.get(edge.dst, 0) + 1

    # ------------------------------------------------------------------ #
    # Store-aware mutation primitives
    # ------------------------------------------------------------------ #

    def _create_node(self, node_id, labels, properties) -> PGNode:
        if self.store is not None:
            return self.store.add_node(node_id, labels, properties)
        return self.graph.add_node(node_id, labels=labels, properties=properties)

    def _add_label(self, node: PGNode, label: str) -> None:
        if label in node.labels:
            return
        if self.store is not None:
            self.store.add_label(node.id, label)
        else:
            node.labels.add(label)

    def _discard_label(self, node: PGNode, label: str) -> None:
        if label not in node.labels:
            return
        if self.store is not None:
            self.store.remove_label(node.id, label)
        else:
            node.labels.discard(label)

    def _set_property(self, node: PGNode, key: str, value) -> None:
        if self.store is not None:
            self.store.set_node_property(node.id, key, value)
        else:
            node.set_property(key, value)

    def _delete_property(self, node: PGNode, key: str) -> None:
        if self.store is not None:
            self.store.delete_node_property(node.id, key)
        else:
            node.properties.pop(key, None)

    def _create_edge(self, src: str, rel_type: str, dst: str, edge_id: str) -> None:
        if self.store is not None:
            self.store.add_edge(src, dst, labels={rel_type}, edge_id=edge_id)
        else:
            self.graph.add_edge(src, dst, labels={rel_type}, edge_id=edge_id)

    def _delete_edge(self, edge_id: str) -> None:
        if self.store is not None:
            self.store.remove_edge(edge_id)
        else:
            self.graph.remove_edge(edge_id)

    def _delete_isolated_node(self, node_id: str) -> None:
        if self.store is not None:
            self.store.remove_node(node_id)
        else:
            self.graph.remove_isolated_node(node_id)

    # ------------------------------------------------------------------ #
    # Additions
    # ------------------------------------------------------------------ #

    def apply_additions(self, triples: Iterable[Triple]) -> DeltaStats:
        """Convert and merge a batch of added triples (monotone).

        The batch is processed with the same two-phase discipline as the
        full Algorithm 1: type triples first (so that new entities in the
        delta are known before their properties are converted).
        """
        stats = DeltaStats()
        materialized = list(triples)
        type_triples = [
            t for t in materialized if t.p == _TYPE and isinstance(t.o, IRI)
        ]
        other_triples = [
            t for t in materialized if not (t.p == _TYPE and isinstance(t.o, IRI))
        ]

        for triple in type_triples:
            stats.added_triples += 1
            self._add_type(triple, stats)
        for triple in other_triples:
            stats.added_triples += 1
            self._add_property(triple, stats)
        return stats

    def probe_additions(self, triples: Iterable[Triple]) -> None:
        """Resolve a batch of additions without mutating anything.

        Raises:
            TransformError: when the batch contains a construct the
                mapping cannot resolve under ``on_unknown="error"`` — the
                same error :meth:`apply_additions` would raise mid-batch.
                Probing first keeps poison deltas from leaving the graph
                half-updated.
        """
        for triple in triples:
            if triple.p == _TYPE and isinstance(triple.o, IRI):
                self._label_for_class(triple.o.value)
                continue
            types: list[str] = []
            src_id = node_id_for(triple.s)
            if self.graph.has_node(src_id):
                types = self._entity_classes(self.graph.get_node(src_id).labels)
            prop = self.mapping.property_for(types, triple.p.value)
            if prop is None and self.options.on_unknown == "error":
                raise TransformError(
                    f"no property shape covers predicate {triple.p.value}"
                )

    def _add_type(self, triple: Triple, stats: DeltaStats) -> None:
        node_id = node_id_for(triple.s)
        if self.graph.has_node(node_id):
            node = self.graph.get_node(node_id)
            self._discard_label(node, RESOURCE_LABEL)
        else:
            node = self._create_node(node_id, (), {IRI_KEY: node_id})
            stats.nodes_added += 1
        label = self._label_for_class(triple.o.value)
        if label is not None:
            self._add_label(node, label)

    def _label_for_class(self, class_iri: str) -> str | None:
        label = self.mapping.label_for_class(class_iri)
        if label is not None:
            return label
        if self.options.on_unknown == "error":
            raise TransformError(f"no shape targets class {class_iri}")
        if self.options.on_unknown == "skip":
            return None
        return self.registry.ensure_external_class(class_iri)

    def _entity_classes(self, node_labels: set[str]) -> list[str]:
        classes = []
        for label in node_labels:
            class_iri = self.mapping.class_for_label(label)
            if class_iri is not None:
                classes.append(class_iri)
        return classes

    def _add_property(self, triple: Triple, stats: DeltaStats) -> None:
        src_id = node_id_for(triple.s)
        if self.graph.has_node(src_id):
            node = self.graph.get_node(src_id)
        else:
            node = self._create_node(
                src_id, {RESOURCE_LABEL}, {IRI_KEY: src_id}
            )
            stats.nodes_added += 1
        types = self._entity_classes(node.labels)
        prop = self.mapping.property_for(types, triple.p.value)
        if prop is None:
            if self.options.on_unknown == "error":
                raise TransformError(
                    f"no property shape covers predicate {triple.p.value}"
                )
            if self.options.on_unknown == "skip":
                return
            prop = self.registry.fallback_property(triple.p.value)

        obj = triple.o
        if isinstance(obj, (IRI, BlankNode)):
            dst_id = node_id_for(obj)
            # An IRI object that is a typed entity node, or becomes a
            # generic resource node.
            if not self.graph.has_node(dst_id):
                self._create_node(dst_id, {RESOURCE_LABEL}, {IRI_KEY: dst_id})
                stats.nodes_added += 1
            rel_type = prop.rel_type or self.registry.fallback_property(
                triple.p.value
            ).rel_type
            self._ensure_edge(src_id, rel_type, dst_id, stats)
            return
        if prop.is_key_value() and obj.datatype == prop.datatype:
            value = encode_literal_value(obj, self.options.typed_literal_values)
            key = prop.pg_key
            if key not in node.properties:
                self._set_property(node, key, value)
            else:
                current = node.properties[key]
                if isinstance(current, list):
                    self._set_property(node, key, current + [value])
                else:
                    self._set_property(node, key, [current, value])
            return
        rel_type = prop.rel_type or self.registry.fallback_property(
            triple.p.value
        ).rel_type
        dst_id = self._ensure_literal_node(obj, stats)
        self._ensure_edge(src_id, rel_type, dst_id, stats)

    def _ensure_literal_node(self, literal: Literal, stats: DeltaStats) -> str:
        dst_id = literal_node_id(literal)
        if not self.graph.has_node(dst_id):
            info = self.registry.ensure_literal_type(literal.datatype)
            properties: dict[str, object] = {
                "value": encode_literal_value(
                    literal, self.options.typed_literal_values
                ),
                "dtype": literal.datatype,
            }
            if literal.language is not None:
                properties["lang"] = literal.language
            self._create_node(dst_id, {info.label}, properties)
            stats.nodes_added += 1
        return dst_id

    def _ensure_edge(self, src: str, rel_type: str, dst: str, stats: DeltaStats) -> None:
        edge_id = edge_id_for(src, rel_type, dst)
        if edge_id not in self.graph.edges:
            self._create_edge(src, rel_type, dst, edge_id)
            self._degree[src] = self._degree.get(src, 0) + 1
            self._degree[dst] = self._degree.get(dst, 0) + 1
            stats.edges_added += 1

    # ------------------------------------------------------------------ #
    # Deletions
    # ------------------------------------------------------------------ #

    def apply_deletions(self, triples: Iterable[Triple]) -> DeltaStats:
        """Retract the PG elements introduced by the given triples."""
        stats = DeltaStats()
        for triple in triples:
            stats.removed_triples += 1
            self._remove_triple(triple, stats)
        return stats

    def _remove_triple(self, triple: Triple, stats: DeltaStats) -> None:
        src_id = node_id_for(triple.s)
        if not self.graph.has_node(src_id):
            return
        node = self.graph.get_node(src_id)
        if triple.p == _TYPE and isinstance(triple.o, IRI):
            label = self.mapping.label_for_class(triple.o.value)
            if label is not None:
                self._discard_label(node, label)
            self._gc_node(src_id, stats)
            # A de-typed entity that still carries data must fall back to
            # the generic resource label, exactly as a from-scratch
            # transformation of the remaining triples would label it.
            self._restore_resource_label(src_id)
            return
        types = self._entity_classes(node.labels)
        prop = self.mapping.property_for(types, triple.p.value)
        obj = triple.o
        if (
            prop is not None
            and prop.is_key_value()
            and isinstance(obj, Literal)
            and obj.datatype == prop.datatype
            and prop.pg_key in node.properties
        ):
            value = encode_literal_value(obj, self.options.typed_literal_values)
            current = node.properties[prop.pg_key]
            if isinstance(current, list):
                if value in current:
                    rest = list(current)
                    rest.remove(value)
                    if not rest:
                        self._delete_property(node, prop.pg_key)
                    elif len(rest) == 1:
                        # A from-scratch transform stores a single value
                        # as a scalar; demote so remove matches it.
                        self._set_property(node, prop.pg_key, rest[0])
                    else:
                        self._set_property(node, prop.pg_key, rest)
            elif current == value:
                self._delete_property(node, prop.pg_key)
            self._gc_node(src_id, stats)
            return
        rel_type = (
            prop.rel_type
            if prop is not None and prop.rel_type is not None
            else self.registry.fallback_property(triple.p.value).rel_type
        )
        if isinstance(obj, Literal):
            dst_id = literal_node_id(obj)
        else:
            dst_id = node_id_for(obj)
        edge_id = edge_id_for(src_id, rel_type, dst_id)
        if edge_id in self.graph.edges:
            self._delete_edge(edge_id)
            self._degree[src_id] = self._degree.get(src_id, 1) - 1
            self._degree[dst_id] = self._degree.get(dst_id, 1) - 1
            stats.edges_removed += 1
        self._gc_node(dst_id, stats)
        # The subject may have been an untyped resource node kept alive
        # only by this edge; collect it too (a from-scratch transform of
        # the remaining triples would not materialize it).
        self._gc_node(src_id, stats)

    def _restore_resource_label(self, node_id: str) -> None:
        if not self.graph.has_node(node_id):
            return
        node = self.graph.get_node(node_id)
        if node_id.startswith("lit:"):
            return
        if not (node.labels - {RESOURCE_LABEL}):
            self._add_label(node, RESOURCE_LABEL)

    def _gc_node(self, node_id: str, stats: DeltaStats) -> None:
        """Remove a node once it carries no information of its own."""
        if not self.graph.has_node(node_id):
            return
        node = self.graph.get_node(node_id)
        entity_labels = node.labels - {RESOURCE_LABEL}
        is_literal_node = node_id.startswith("lit:")
        has_entity_payload = bool(entity_labels) and not is_literal_node
        extra_props = set(node.properties) - {IRI_KEY, "value", "dtype", "lang"}
        if has_entity_payload or extra_props:
            return
        if self._degree.get(node_id, 0) > 0:
            return
        self._delete_isolated_node(node_id)
        self._degree.pop(node_id, None)
        stats.nodes_removed += 1


_TYPE = IRI(RDF_TYPE)


def apply_delta(
    transformed: TransformedGraph,
    added: Iterable[Triple] = (),
    removed: Iterable[Triple] = (),
    store: PropertyGraphStore | None = None,
) -> DeltaStats:
    """Apply an (added, removed) delta to a transformed graph in place."""
    incremental = IncrementalTransformer(transformed, store=store)
    stats = incremental.apply_deletions(removed)
    add_stats = incremental.apply_additions(added)
    stats.added_triples = add_stats.added_triples
    stats.nodes_added = add_stats.nodes_added
    stats.edges_added = add_stats.edges_added
    return stats
