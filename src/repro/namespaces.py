"""Well-known IRI namespaces used throughout the library.

A :class:`Namespace` is a thin helper that concatenates a base IRI with a
local name, so that ``XSD.string`` or ``SH.targetClass`` read like the
qualified names in the paper and in W3C documents.
"""

from __future__ import annotations


class Namespace:
    """A base IRI that can be extended with local names.

    Examples:
        >>> XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
        >>> XSD.string
        'http://www.w3.org/2001/XMLSchema#string'
        >>> XSD["language"]
        'http://www.w3.org/2001/XMLSchema#language'
    """

    __slots__ = ("_base",)

    def __init__(self, base: str):
        self._base = base

    @property
    def base(self) -> str:
        """The base IRI of this namespace."""
        return self._base

    def term(self, local: str) -> str:
        """Return the full IRI for ``local`` within this namespace."""
        return self._base + local

    def __getattr__(self, local: str) -> str:
        if local.startswith("_"):
            raise AttributeError(local)
        return self._base + local

    def __getitem__(self, local: str) -> str:
        return self._base + local

    def __contains__(self, iri: str) -> bool:
        return isinstance(iri, str) and iri.startswith(self._base)

    def local_name(self, iri: str) -> str:
        """Strip the namespace base from ``iri``.

        Raises:
            ValueError: if ``iri`` does not start with this namespace's base.
        """
        if iri not in self:
            raise ValueError(f"{iri!r} is not in namespace {self._base!r}")
        return iri[len(self._base):]

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self) -> int:
        return hash(("Namespace", self._base))


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
SH = Namespace("http://www.w3.org/ns/shacl#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")

# Namespaces used by the synthetic datasets.
EX = Namespace("http://example.org/")
UNI = Namespace("http://example.org/university#")
DBO = Namespace("http://dbpedia.org/ontology/")
DBP = Namespace("http://dbpedia.org/property/")
DBR = Namespace("http://dbpedia.org/resource/")
SCHEMA = Namespace("http://schema.org/")
CT = Namespace("http://bio2rdf.org/clinicaltrials_vocabulary:")
CTR = Namespace("http://bio2rdf.org/clinicaltrials:")
SHAPES = Namespace("http://example.org/shapes#")

#: ``rdf:type`` — the type predicate *a* from Definition 2.1.
RDF_TYPE = RDF.type

#: Default prefix table used by parsers and serializers.
WELL_KNOWN_PREFIXES: dict[str, str] = {
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "xsd": XSD.base,
    "sh": SH.base,
    "owl": OWL.base,
    "ex": EX.base,
    "uni": UNI.base,
    "dbo": DBO.base,
    "dbp": DBP.base,
    "dbr": DBR.base,
    "schema": SCHEMA.base,
    "ct": CT.base,
    "ctr": CTR.base,
    "shapes": SHAPES.base,
}


def split_iri(iri: str) -> tuple[str, str]:
    """Split an IRI into (namespace, local-name) at the last ``#`` or ``/``.

    Falls back to splitting at the last ``:`` for URN-style IRIs.

    Examples:
        >>> split_iri("http://example.org/ns#Person")
        ('http://example.org/ns#', 'Person')
    """
    for sep in ("#", "/"):
        idx = iri.rfind(sep)
        if 0 <= idx < len(iri) - 1:
            return iri[: idx + 1], iri[idx + 1:]
    idx = iri.rfind(":")
    if 0 <= idx < len(iri) - 1:
        return iri[: idx + 1], iri[idx + 1:]
    return "", iri


def local_name(iri: str) -> str:
    """Return the local-name part of an IRI (see :func:`split_iri`)."""
    return split_iri(iri)[1]
