"""Checkpoint/resume for the CDC pipeline.

A checkpoint directory is a self-contained snapshot of the pipeline's
durable state, written atomically enough for crash-stop recovery (the
watermark file is written last, so a torn checkpoint is simply invisible
to :func:`load_checkpoint`):

* ``nodes.csv`` / ``edges.csv`` — the materialized property graph, in
  the same CSV codec ``repro transform`` emits;
* ``mapping.json`` — the schema mapping ``F_st`` (enough to rebuild the
  :class:`TransformedGraph` via :func:`repro.core.rebuild_transformed`);
* ``source.nt`` — the tracked RDF source graph (needed to compute
  effective deltas and to revalidate after resume);
* ``report.json`` — the standing conformance snapshot, informational;
* ``watermark.json`` — the highest applied sequence number plus summary
  counts; its presence marks the checkpoint as complete.

Resume protocol: load the checkpoint, re-open the delta log with
``start_after=watermark``, and continue.  Deltas at or below the
watermark are also skipped by the pipeline itself, so replaying an
overlapping log is harmless (apply is idempotent per sequence number).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ChangefeedError
from ..pg.csv_io import write_csv
from ..rdf.ntriples import parse_ntriples, write_ntriples

__all__ = ["CheckpointState", "has_checkpoint", "load_checkpoint", "save_checkpoint"]

_WATERMARK_FILE = "watermark.json"


class CheckpointState:
    """Everything :func:`load_checkpoint` recovers from a directory."""

    def __init__(self, transformed, source_graph, watermark: int, meta: dict):
        self.transformed = transformed
        self.source_graph = source_graph
        self.watermark = watermark
        self.meta = meta


def save_checkpoint(directory: str | Path, pipeline) -> Path:
    """Write ``pipeline``'s durable state into ``directory``.

    Returns the directory path.  Safe to call repeatedly; each call
    overwrites the previous checkpoint in place, watermark last.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    watermark_path = directory / _WATERMARK_FILE
    # Invalidate the old checkpoint before mutating its files, so a
    # crash mid-write leaves no complete-looking stale snapshot.
    watermark_path.unlink(missing_ok=True)
    write_csv(pipeline.transformed.graph, directory)
    (directory / "mapping.json").write_text(
        pipeline.transformed.mapping.to_json(), encoding="utf-8"
    )
    write_ntriples(pipeline.graph, directory / "source.nt")
    if pipeline.validator is not None:
        report = {
            "conforms": pipeline.validator.conforms,
            "focus_count": pipeline.validator.focus_count,
            "violations": pipeline.validator.snapshot(),
        }
    else:
        report = None
    (directory / "report.json").write_text(
        json.dumps(report, indent=2, sort_keys=True), encoding="utf-8"
    )
    stats = pipeline.stats
    meta = {
        "watermark": pipeline.watermark,
        "deltas_applied": stats.deltas_applied,
        "deltas_quarantined": stats.deltas_quarantined,
        "triples_added": stats.triples_added,
        "triples_removed": stats.triples_removed,
        "nodes": pipeline.transformed.graph.node_count(),
        "edges": pipeline.transformed.graph.edge_count(),
        "conforms": None if report is None else report["conforms"],
    }
    watermark_path.write_text(
        json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8"
    )
    return directory


def has_checkpoint(directory: str | Path) -> bool:
    """Whether ``directory`` holds a complete checkpoint."""
    return (Path(directory) / _WATERMARK_FILE).is_file()


def load_checkpoint(directory: str | Path) -> CheckpointState:
    """Recover pipeline state from a checkpoint directory.

    Raises:
        ChangefeedError: when the directory holds no complete checkpoint
            or its contents are inconsistent.
    """
    from ..core.inverse import rebuild_transformed

    directory = Path(directory)
    watermark_path = directory / _WATERMARK_FILE
    if not watermark_path.is_file():
        raise ChangefeedError(f"no checkpoint in {directory}")
    try:
        meta = json.loads(watermark_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ChangefeedError(f"corrupt watermark in {directory}: {exc}") from exc
    watermark = meta.get("watermark")
    if not isinstance(watermark, int):
        raise ChangefeedError(f"checkpoint in {directory} has no watermark")
    transformed = rebuild_transformed(directory, directory / "mapping.json")
    source_graph = parse_ntriples(
        (directory / "source.nt").read_text(encoding="utf-8")
    )
    return CheckpointState(
        transformed=transformed,
        source_graph=source_graph,
        watermark=watermark,
        meta=meta,
    )
