"""``repro.cdc`` — the always-on incremental transformation service.

Turns the one-shot library into a long-running ingest daemon: an async
pipeline consumes an ordered **changefeed** of RDF deltas, maintains the
materialized property graph through the store-aware
:class:`~repro.core.IncrementalTransformer` (S3PG's monotonicity,
Prop. 4.3, is what makes per-delta maintenance sound), keeps a standing
SHACL conformance report fresh with delta-scoped revalidation
(:class:`~repro.shacl.DeltaValidator`), and survives restarts via
watermarked checkpoints.  ``repro serve`` is the CLI front-end.
"""

from .changefeed import (
    BadDelta,
    Delta,
    JsonlChangefeed,
    MemoryChangefeed,
    append_delta,
    delta_from_json,
    delta_to_json,
    read_delta_log,
    write_delta_log,
)
from .checkpoint import (
    CheckpointState,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from .pipeline import CDCConfig, CDCPipeline, PipelineStats, replay_deltas

__all__ = [
    "BadDelta",
    "CDCConfig",
    "CDCPipeline",
    "CheckpointState",
    "Delta",
    "JsonlChangefeed",
    "MemoryChangefeed",
    "PipelineStats",
    "append_delta",
    "delta_from_json",
    "delta_to_json",
    "has_checkpoint",
    "load_checkpoint",
    "read_delta_log",
    "replay_deltas",
    "save_checkpoint",
    "write_delta_log",
]
