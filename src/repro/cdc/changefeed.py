"""Changefeed sources: ordered streams of RDF deltas.

A **delta** is one atomic unit of source-database change: a batch of
added and removed triples stamped with a monotonically increasing
sequence number.  Two sources are provided:

* :class:`MemoryChangefeed` — an in-process async queue, for embedding
  the pipeline in another program (and for the tests/fuzzers);
* :class:`JsonlChangefeed` — a replayable JSON-lines delta log on disk,
  optionally tailed (``follow=True``) like a WAL.

The on-disk format is one JSON object per line::

    {"seq": 7, "add": ["<s> <p> <o> ."], "remove": ["<s> <q> \\"v\\" ."]}

with each triple encoded as a single N-Triples statement.  A line that
fails to decode is surfaced as a :class:`BadDelta` instead of aborting
the stream — the pipeline routes those straight to quarantine, so one
corrupt record never stalls ingest.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from ..errors import ChangefeedError, ParseError
from ..rdf.ntriples import parse_line
from ..rdf.terms import Triple

__all__ = [
    "BadDelta",
    "Delta",
    "JsonlChangefeed",
    "MemoryChangefeed",
    "append_delta",
    "delta_from_json",
    "delta_to_json",
    "read_delta_log",
    "write_delta_log",
]


@dataclass(frozen=True)
class Delta:
    """One unit of source change: triples added/removed at sequence ``seq``."""

    seq: int
    added: tuple[Triple, ...] = ()
    removed: tuple[Triple, ...] = ()

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)


@dataclass(frozen=True)
class BadDelta:
    """A changefeed record that could not be decoded into a :class:`Delta`."""

    line_number: int
    text: str
    error: str


# --------------------------------------------------------------------- #
# JSONL codec
# --------------------------------------------------------------------- #

def _parse_statement(statement: str, context: str) -> Triple:
    triple = parse_line(statement.strip())
    if triple is None:
        raise ChangefeedError(f"{context}: empty N-Triples statement")
    return triple


def delta_to_json(delta: Delta) -> str:
    """Encode a delta as one JSON line (without trailing newline)."""
    return json.dumps(
        {
            "seq": delta.seq,
            "add": [t.n3() for t in delta.added],
            "remove": [t.n3() for t in delta.removed],
        },
        ensure_ascii=False,
    )


def delta_from_json(line: str) -> Delta:
    """Decode one JSON line into a :class:`Delta`.

    Raises:
        ChangefeedError: when the line is not valid JSON, lacks a
            usable ``seq``, or contains an unparsable statement.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ChangefeedError(f"invalid JSON in delta log: {exc}") from exc
    if not isinstance(record, dict):
        raise ChangefeedError("delta record is not a JSON object")
    seq = record.get("seq")
    if not isinstance(seq, int):
        raise ChangefeedError(f"delta record has no integer seq: {seq!r}")
    try:
        added = tuple(
            _parse_statement(s, f"delta {seq} add") for s in record.get("add", ())
        )
        removed = tuple(
            _parse_statement(s, f"delta {seq} remove")
            for s in record.get("remove", ())
        )
    except ParseError as exc:
        raise ChangefeedError(f"delta {seq}: {exc}") from exc
    return Delta(seq=seq, added=added, removed=removed)


def write_delta_log(deltas, path: str | Path) -> int:
    """Write a delta log file; returns the number of records written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for delta in deltas:
            handle.write(delta_to_json(delta))
            handle.write("\n")
            count += 1
    return count


def append_delta(path: str | Path, delta: Delta) -> None:
    """Append one record to a delta log file (creating it if needed)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(delta_to_json(delta))
        handle.write("\n")


def read_delta_log(path: str | Path) -> list[Delta]:
    """Read a whole delta log strictly (raises on the first bad record)."""
    deltas = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                deltas.append(delta_from_json(line))
    return deltas


# --------------------------------------------------------------------- #
# Async sources
# --------------------------------------------------------------------- #

class MemoryChangefeed:
    """A bounded in-process changefeed backed by an async queue.

    Producers ``await put(delta)``; when the queue is full the producer
    blocks (backpressure) until the pipeline drains it.  ``close()``
    ends the stream after the enqueued deltas are consumed.
    """

    def __init__(self, maxsize: int = 0):
        self._items: deque = deque()
        self._maxsize = maxsize
        self._readable = asyncio.Event()
        self._writable = asyncio.Event()
        self._writable.set()
        self._closed = False
        #: Number of times a producer had to wait for queue space.
        self.backpressure_waits = 0

    def __len__(self) -> int:
        return len(self._items)

    async def put(self, delta: Delta | BadDelta) -> None:
        if self._closed:
            raise ChangefeedError("changefeed is closed")
        while self._maxsize and len(self._items) >= self._maxsize:
            self.backpressure_waits += 1
            self._writable.clear()
            await self._writable.wait()
        self._items.append(delta)
        self._readable.set()

    def close(self) -> None:
        self._closed = True
        self._readable.set()

    async def __aiter__(self):
        while True:
            while not self._items:
                if self._closed:
                    return
                self._readable.clear()
                await self._readable.wait()
            item = self._items.popleft()
            if not self._maxsize or len(self._items) < self._maxsize:
                self._writable.set()
            yield item


class JsonlChangefeed:
    """A replayable delta-log file source.

    Args:
        path: the JSONL delta log.
        start_after: skip records with ``seq <= start_after`` (resume
            from a checkpoint watermark).
        follow: keep polling the file for appended records after EOF
            (call :meth:`stop` to end the stream); when False the stream
            ends at EOF — the ``repro serve --once`` replay mode.
        poll_interval: seconds between polls in follow mode.
    """

    def __init__(
        self,
        path: str | Path,
        start_after: int = -1,
        follow: bool = False,
        poll_interval: float = 0.1,
    ):
        self.path = Path(path)
        self.start_after = start_after
        self.follow = follow
        self.poll_interval = poll_interval
        self._stopped = False

    def stop(self) -> None:
        """End a ``follow=True`` stream at the next poll."""
        self._stopped = True

    async def __aiter__(self):
        line_number = 0
        with open(self.path, encoding="utf-8") as handle:
            while True:
                position = handle.tell()
                line = handle.readline()
                if not line:
                    if not self.follow or self._stopped:
                        return
                    await asyncio.sleep(self.poll_interval)
                    continue
                if not line.strip():
                    line_number += 1
                    continue
                if self.follow and not line.endswith("\n"):
                    # A partially written record: rewind and retry once
                    # the writer finishes the line.
                    handle.seek(position)
                    await asyncio.sleep(self.poll_interval)
                    continue
                line_number += 1
                try:
                    delta = delta_from_json(line)
                except ChangefeedError as exc:
                    yield BadDelta(line_number, line.rstrip("\n"), str(exc))
                    continue
                if delta.seq <= self.start_after:
                    continue
                yield delta
