"""The CDC ingest pipeline: changefeed -> incremental transform -> revalidate.

The pipeline is the always-on counterpart of the one-shot
:func:`repro.core.apply_delta`.  It consumes deltas from a changefeed,
filters them down to their *effective* part against the tracked source
graph (so replayed or duplicate records are harmless), pushes them
through a store-aware :class:`IncrementalTransformer`, and keeps a
standing SHACL conformance report fresh with a
:class:`~repro.shacl.DeltaValidator` that rechecks only the focus nodes
each batch can affect.

Operational behaviour:

* **Batching** — deltas are grouped up to ``max_batch_size`` or until
  ``max_linger_s`` has passed since the first pending delta, whichever
  comes first; a batch shares one revalidation pass.
* **Backpressure** — a bounded internal buffer between the feed reader
  and the applier; when the applier falls behind, the reader (and, for
  in-memory feeds, the producer) blocks instead of buffering unboundedly.
* **Retry & quarantine** — each delta is probed (dry-run resolution)
  before any state is mutated; failures are retried with exponential
  backoff and, if persistent, appended to a dead-letter log so one
  poison delta never stalls the stream.
* **Checkpointing** — every ``checkpoint_every`` applied deltas (and at
  shutdown) the watermark + snapshots are written via
  :mod:`repro.cdc.checkpoint`.
* **Observability** — end-to-end delta latency histogram, staleness
  gauge, queue-depth gauge, backpressure/quarantine/retry counters, and
  ``cdc.batch`` spans, all through :mod:`repro.obs`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from pathlib import Path

from .. import obs
from ..core.incremental import IncrementalTransformer
from ..core.data_transform import TransformedGraph
from ..errors import ReproError
from ..pg.store import PropertyGraphStore
from ..rdf.graph import Graph
from ..shacl.validator import DeltaValidator
from .changefeed import BadDelta, Delta, MemoryChangefeed, delta_to_json

__all__ = ["CDCConfig", "CDCPipeline", "PipelineStats", "replay_deltas"]

_EOF = object()


@dataclass
class CDCConfig:
    """Tunables for one :class:`CDCPipeline`."""

    #: Deltas applied per batch at most.
    max_batch_size: int = 64
    #: Seconds a batch may wait for more deltas after its first one.
    max_linger_s: float = 0.05
    #: Bounded-buffer capacity between feed reader and applier.
    queue_maxsize: int = 256
    #: Retries per delta before quarantine.
    max_retries: int = 3
    #: Base of the exponential backoff (seconds): base * 2**attempt.
    retry_base_s: float = 0.01
    #: Backoff ceiling (seconds).
    retry_cap_s: float = 1.0
    #: Write a checkpoint every N applied deltas (0 disables periodic
    #: checkpoints; a final one is still written when a dir is set).
    checkpoint_every: int = 0
    #: Maintain the standing SHACL report (requires a validator).
    validate: bool = True


@dataclass
class PipelineStats:
    """Counters accumulated over a pipeline's lifetime."""

    deltas_applied: int = 0
    deltas_skipped: int = 0
    deltas_quarantined: int = 0
    retries: int = 0
    batches: int = 0
    triples_added: int = 0
    triples_removed: int = 0
    focus_rechecked: int = 0
    checkpoints: int = 0
    backpressure_waits: int = 0
    #: End-to-end latency samples (seconds), newest last; bounded.
    latencies: list[float] = field(default_factory=list)
    #: Staleness samples (seconds) taken after each batch; bounded.
    staleness: list[float] = field(default_factory=list)


_MAX_SAMPLES = 100_000


class CDCPipeline:
    """Applies a changefeed to a transformed graph, store, and validator.

    Args:
        transformed: the maintained transformation result.
        source_graph: the RDF graph the deltas evolve; kept in sync so
            effective deltas and revalidation are computable.
        store: optional store wrapping ``transformed.graph`` — mutations
            then keep its indexes/statistics/version fresh.
        validator: optional :class:`DeltaValidator` over ``source_graph``.
        config: batching/backpressure/retry/checkpoint tunables.
        quarantine_path: dead-letter JSONL file for poison deltas.
        checkpoint_dir: directory for watermark + snapshots.
        watermark: highest already-applied sequence number (resume).
    """

    def __init__(
        self,
        transformed: TransformedGraph,
        source_graph: Graph,
        store: PropertyGraphStore | None = None,
        validator: DeltaValidator | None = None,
        config: CDCConfig | None = None,
        quarantine_path: str | Path | None = None,
        checkpoint_dir: str | Path | None = None,
        watermark: int = -1,
    ):
        self.transformed = transformed
        self.graph = source_graph
        self.store = store
        self.validator = validator
        self.config = config or CDCConfig()
        self.quarantine_path = Path(quarantine_path) if quarantine_path else None
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.watermark = watermark
        self.stats = PipelineStats()
        self._inc = IncrementalTransformer(transformed, store=store)
        self._since_checkpoint = 0
        metrics = obs.get_metrics()
        self._m_latency = metrics.histogram(
            "repro_cdc_delta_latency_seconds",
            boundaries=obs.LATENCY_BOUNDARIES,
            help="end-to-end delta latency (arrival to applied)",
        )
        self._m_staleness = metrics.gauge(
            "repro_cdc_staleness_seconds",
            help="lag of the materialized PG behind the stream head",
        )
        self._m_queue = metrics.gauge(
            "repro_cdc_queue_depth", help="deltas buffered awaiting apply"
        )
        self._m_deltas = metrics.counter(
            "repro_cdc_deltas_total", help="deltas by outcome"
        )
        self._m_triples = metrics.counter(
            "repro_cdc_triples_total", help="effective triples by op"
        )
        self._m_backpressure = metrics.counter(
            "repro_cdc_backpressure_waits_total",
            help="times the feed reader blocked on a full buffer",
        )
        self._m_retries = metrics.counter(
            "repro_cdc_retries_total", help="delta apply retries"
        )
        self._m_quarantined = metrics.counter(
            "repro_cdc_quarantined_total", help="deltas sent to dead-letter"
        )
        self._m_revalidated = metrics.counter(
            "repro_cdc_revalidated_focus_total",
            help="focus nodes rechecked by delta-scoped revalidation",
        )
        self._m_checkpoints = metrics.counter(
            "repro_cdc_checkpoints_total", help="checkpoints written"
        )
        self._m_batch = metrics.histogram(
            "repro_cdc_batch_seconds",
            boundaries=obs.LATENCY_BOUNDARIES,
            help="wall time per applied CDC batch",
        )
        self._m_store_nodes = metrics.gauge(
            "repro_store_nodes", help="nodes in the maintained property graph"
        )
        self._m_store_edges = metrics.gauge(
            "repro_store_edges", help="edges in the maintained property graph"
        )
        self._m_graph_triples = metrics.gauge(
            "repro_graph_triples", help="triples in the tracked source graph"
        )
        self._update_size_gauges()

    def _store_sizes(self) -> tuple[int, int, int]:
        if self.store is not None:
            nodes, edges = self.store.node_count(), self.store.edge_count()
        else:
            graph = self.transformed.graph
            nodes, edges = len(graph.nodes), len(graph.edges)
        return nodes, edges, len(self.graph)

    def _update_size_gauges(self) -> None:
        nodes, edges, triples = self._store_sizes()
        self._m_store_nodes.set(nodes)
        self._m_store_edges.set(edges)
        self._m_graph_triples.set(triples)

    def health_snapshot(self) -> dict:
        """Liveness summary for the ops endpoint's ``/healthz``."""
        stats = self.stats
        nodes, edges, triples = self._store_sizes()
        return {
            "watermark": self.watermark,
            "store_nodes": nodes,
            "store_edges": edges,
            "graph_triples": triples,
            "deltas_applied": stats.deltas_applied,
            "deltas_skipped": stats.deltas_skipped,
            "deltas_quarantined": stats.deltas_quarantined,
            "batches": stats.batches,
            "staleness_s": stats.staleness[-1] if stats.staleness else None,
            "conforms": (
                self.validator.conforms if self.validator is not None else None
            ),
        }

    # ------------------------------------------------------------------ #
    # Stream consumption
    # ------------------------------------------------------------------ #

    async def run(self, feed) -> PipelineStats:
        """Consume ``feed`` until it ends; returns the final stats.

        ``feed`` is any async iterable of :class:`Delta` / :class:`BadDelta`
        (both changefeed classes qualify).
        """
        buffer = MemoryChangefeed(maxsize=self.config.queue_maxsize)
        reader = asyncio.create_task(self._pump(feed, buffer))
        try:
            await self._drain(buffer)
        finally:
            reader.cancel()
            try:
                await reader
            except asyncio.CancelledError:
                pass
        if self.checkpoint_dir is not None:
            self._checkpoint()
        return self.stats

    async def _pump(self, feed, buffer: MemoryChangefeed) -> None:
        try:
            async for item in feed:
                before = buffer.backpressure_waits
                await buffer.put((item, time.monotonic()))
                waited = buffer.backpressure_waits - before
                if waited:
                    self.stats.backpressure_waits += waited
                    self._m_backpressure.inc(waited)
                self._m_queue.set(len(buffer))
        finally:
            buffer.close()

    async def _drain(self, buffer: MemoryChangefeed) -> None:
        iterator = buffer.__aiter__()
        done = False
        while not done:
            try:
                first = await iterator.__anext__()
            except StopAsyncIteration:
                break
            batch = [first]
            deadline = time.monotonic() + self.config.max_linger_s
            while len(batch) < self.config.max_batch_size:
                timeout = deadline - time.monotonic()
                if timeout <= 0 and self.config.max_linger_s > 0:
                    break
                if not len(buffer) and self.config.max_linger_s <= 0:
                    break
                try:
                    item = await asyncio.wait_for(
                        _anext_or_eof(iterator),
                        timeout=None if self.config.max_linger_s <= 0 else timeout,
                    )
                except asyncio.TimeoutError:
                    break
                if item is _EOF:
                    done = True
                    break
                batch.append(item)
            self._m_queue.set(len(buffer))
            await self._process_batch(batch)

    # ------------------------------------------------------------------ #
    # Batch application
    # ------------------------------------------------------------------ #

    async def _process_batch(self, batch) -> None:
        config = self.config
        batch_start = time.perf_counter()
        with obs.span("cdc.batch", size=len(batch)) as span:
            added_effective = []
            removed_effective = []
            applied = 0
            for item, arrival in batch:
                if isinstance(item, BadDelta):
                    self._quarantine(
                        seq=None, payload=item.text, error=item.error, attempts=0
                    )
                    continue
                if item.seq <= self.watermark:
                    self.stats.deltas_skipped += 1
                    self._m_deltas.inc(status="skipped")
                    continue
                outcome = await self._apply_delta(item)
                if outcome is None:
                    continue
                added, removed = outcome
                added_effective.extend(added)
                removed_effective.extend(removed)
                self.watermark = item.seq
                applied += 1
                self.stats.deltas_applied += 1
                self._since_checkpoint += 1
                self._m_deltas.inc(status="applied")
                latency = time.monotonic() - arrival
                self._m_latency.observe(latency)
                if len(self.stats.latencies) < _MAX_SAMPLES:
                    self.stats.latencies.append(latency)
            if (added_effective or removed_effective) and (
                config.validate and self.validator is not None
            ):
                revalidate_start = time.perf_counter()
                rechecked = self.validator.apply_delta(
                    added=added_effective, removed=removed_effective
                )
                self.stats.focus_rechecked += rechecked
                self._m_revalidated.inc(rechecked)
                # Revalidation probes are workload too: when a query log
                # is capturing, they appear as non-query events so a
                # replayed capture can account for ingest-time checks.
                obs.log_workload_event({
                    "lang": "cdc",
                    "kind": "revalidate",
                    "watermark": self.watermark,
                    "focus_rechecked": rechecked,
                    "triples_added": len(added_effective),
                    "triples_removed": len(removed_effective),
                    "duration_ms": round(
                        (time.perf_counter() - revalidate_start) * 1000.0, 3
                    ),
                })
            if applied:
                staleness = time.monotonic() - min(
                    arrival for _, arrival in batch
                )
                self._m_staleness.set(staleness)
                if len(self.stats.staleness) < _MAX_SAMPLES:
                    self.stats.staleness.append(staleness)
            self.stats.batches += 1
            if applied:
                self._update_size_gauges()
            span.set("applied", applied)
            span.set("triples_added", len(added_effective))
            span.set("triples_removed", len(removed_effective))
            if (
                self.checkpoint_dir is not None
                and config.checkpoint_every > 0
                and self._since_checkpoint >= config.checkpoint_every
            ):
                self._checkpoint()
        batch_s = time.perf_counter() - batch_start
        self._m_batch.observe(batch_s)
        # Slow batches land in the flight recorder's slow-op log (when
        # one is installed) so /debug/slow covers ingest, not just queries.
        obs.record_op(
            "cdc.batch",
            f"batch@{self.watermark}",
            batch_s,
            detail={
                "size": len(batch),
                "applied": applied,
                "triples_added": len(added_effective),
                "triples_removed": len(removed_effective),
                "watermark": self.watermark,
            },
        )

    async def _apply_delta(self, delta: Delta):
        """Apply one delta; returns (added, removed) effective triples.

        Returns None when the delta was quarantined.
        """
        config = self.config
        attempt = 0
        while True:
            try:
                # Dry-run the additions first: a poison delta must fail
                # before any shared state is touched.
                self._inc.probe_additions(delta.added)
                break
            except ReproError as exc:
                if attempt >= config.max_retries:
                    self._quarantine(
                        seq=delta.seq,
                        payload=delta_to_json(delta),
                        error=str(exc),
                        attempts=attempt + 1,
                    )
                    return None
                self.stats.retries += 1
                self._m_retries.inc()
                backoff = min(
                    config.retry_cap_s, config.retry_base_s * (2 ** attempt)
                )
                await asyncio.sleep(backoff)
                attempt += 1
        # Reduce to the effective delta against the tracked source graph:
        # removals of absent triples and re-adds of present ones are
        # no-ops for a from-scratch transform, so they must be no-ops
        # here too (Graph.remove/add report actual presence changes).
        removed = [t for t in delta.removed if self.graph.remove(t)]
        added = [t for t in delta.added if self.graph.add(t)]
        self._inc.apply_deletions(removed)
        self._inc.apply_additions(added)
        self.stats.triples_added += len(added)
        self.stats.triples_removed += len(removed)
        if added:
            self._m_triples.inc(len(added), op="add")
        if removed:
            self._m_triples.inc(len(removed), op="remove")
        return added, removed

    # ------------------------------------------------------------------ #
    # Quarantine & checkpoint
    # ------------------------------------------------------------------ #

    def _quarantine(
        self, seq: int | None, payload: str, error: str, attempts: int
    ) -> None:
        self.stats.deltas_quarantined += 1
        self._m_deltas.inc(status="quarantined")
        self._m_quarantined.inc()
        if self.quarantine_path is None:
            return
        import json

        record = {
            "seq": seq,
            "error": error,
            "attempts": attempts,
            "payload": payload,
        }
        with open(self.quarantine_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, ensure_ascii=False))
            handle.write("\n")

    def _checkpoint(self) -> None:
        from .checkpoint import save_checkpoint

        save_checkpoint(self.checkpoint_dir, self)
        self._since_checkpoint = 0
        self.stats.checkpoints += 1
        self._m_checkpoints.inc()


async def _anext_or_eof(iterator):
    try:
        return await iterator.__anext__()
    except StopAsyncIteration:
        return _EOF


def replay_deltas(pipeline: CDCPipeline, deltas) -> PipelineStats:
    """Synchronously run ``pipeline`` over an in-memory delta sequence."""

    async def _run() -> PipelineStats:
        feed = MemoryChangefeed()
        for delta in deltas:
            await feed.put(delta)
        feed.close()
        return await pipeline.run(feed)

    return asyncio.run(_run())
