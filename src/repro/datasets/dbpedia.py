"""DBpedia-like synthetic knowledge graphs (the paper's main datasets).

Two variants mirror the paper's snapshots:

* :func:`dbpedia2022_spec` — the December-2022-style graph: rich class
  hierarchy, and property shapes in *all five* taxonomy categories,
  including the ``dbp:writer`` / ``dbp:address``-style heterogeneous
  properties (mixed string/integer/IRI values) that break the baselines;
* :func:`dbpedia2020_spec` — the 2020-style graph: smaller, and with **no**
  multi-type-homogeneous-literal and **no** heterogeneous property shapes
  (matching the zero entries of its Table 3 row).

Each heterogeneous property has its own literal/IRI mix so that per-query
baseline accuracies vary across queries, as in Table 6 (rdf2pg's accuracy
on an MT-hetero query is essentially its property's IRI share).
"""

from __future__ import annotations

from ..namespaces import DBO, DBP, DBR, SCHEMA, XSD
from ..rdf.graph import Graph
from .common import (
    ClassSpec,
    DatasetSpec,
    MT_HETERO,
    MT_HOMO_L,
    MT_HOMO_NL,
    PropertyTemplate,
    ST_LITERAL,
    ST_NON_LITERAL,
    generate,
)


def dbpedia2022_spec() -> DatasetSpec:
    """The DBpedia-2022-style dataset declaration."""
    classes = [
        ClassSpec(
            iri=DBO.Agent, weight=0.0,  # abstract: instances come from subclasses
        ),
        ClassSpec(
            iri=DBO.Person,
            weight=2.0,
            parents=(DBO.Agent,),
            properties=(
                PropertyTemplate(DBP.name, ST_LITERAL, (XSD.string,),
                                 lang_tag_ratio=0.006),
                PropertyTemplate(DBO.birthYear, ST_LITERAL, (XSD.gYear,),
                                 presence=0.9),
                PropertyTemplate(
                    DBP.birthDate, MT_HOMO_L,
                    (XSD.date, XSD.gYear, XSD.string),
                    primary_share=0.9, presence=0.8, multiplicity=1,
                ),
                PropertyTemplate(
                    DBO.birthPlace, ST_NON_LITERAL,
                    target_classes=(DBO.Settlement,), presence=0.85,
                ),
                PropertyTemplate(
                    DBO.influenced, MT_HOMO_NL,
                    target_classes=(DBO.Person, DBO.MusicalArtist),
                    presence=0.25, multiplicity=2,
                ),
            ),
        ),
        ClassSpec(
            iri=DBO.MusicalArtist,
            weight=0.6,
            parents=(DBO.Person,),
            properties=(
                PropertyTemplate(
                    DBO.associatedBand, MT_HOMO_NL,
                    target_classes=(DBO.Band, DBO.MusicalArtist),
                    presence=0.5, multiplicity=3,
                ),
                PropertyTemplate(
                    DBP.genre, MT_HETERO, (XSD.string,),
                    target_classes=(DBO.Genre,), literal_ratio=0.55,
                    presence=0.8, multiplicity=2, lang_tag_ratio=0.01,
                    collision_ratio=0.03,
                ),
            ),
        ),
        ClassSpec(
            iri=DBO.Band,
            weight=0.4,
            parents=(DBO.Agent,),
            properties=(
                PropertyTemplate(DBP.name, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    DBO.hometown, ST_NON_LITERAL,
                    target_classes=(DBO.Settlement,), presence=0.7,
                ),
            ),
        ),
        ClassSpec(
            iri=DBO.Album,
            weight=1.5,
            properties=(
                PropertyTemplate(DBP.title, ST_LITERAL, (XSD.string,),
                                 lang_tag_ratio=0.005),
                PropertyTemplate(
                    DBP.released, MT_HOMO_L,
                    (XSD.date, XSD.gYear, XSD.string),
                    primary_share=0.85, presence=0.9, multiplicity=2,
                    collision_ratio=0.02,
                ),
                PropertyTemplate(
                    DBP.writer, MT_HETERO, (XSD.string,),
                    target_classes=(DBO.Person, DBO.MusicalArtist),
                    literal_ratio=0.4, presence=0.9, multiplicity=3,
                    collision_ratio=0.04,
                ),
                PropertyTemplate(
                    DBP.producer, MT_HETERO, (XSD.string,),
                    target_classes=(DBO.Person,),
                    literal_ratio=0.25, presence=0.7, multiplicity=2,
                    collision_ratio=0.02,
                ),
                PropertyTemplate(
                    DBO.artist, ST_NON_LITERAL,
                    target_classes=(DBO.MusicalArtist,), presence=0.95,
                ),
            ),
        ),
        ClassSpec(
            iri=DBO.Settlement,
            weight=1.2,
            parents=(DBO.Place,),
            properties=(
                PropertyTemplate(DBP.name, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    DBO.populationTotal, ST_LITERAL, (XSD.integer,),
                    presence=0.8,
                ),
                PropertyTemplate(
                    DBP.area, MT_HOMO_L, (XSD.double, XSD.integer, XSD.string),
                    primary_share=0.8, presence=0.6, multiplicity=1,
                ),
                PropertyTemplate(
                    DBO.country, ST_NON_LITERAL,
                    target_classes=(DBO.Country,), presence=0.95,
                ),
                PropertyTemplate(
                    DBO.twinCity, MT_HOMO_NL,
                    target_classes=(DBO.Settlement, DBO.Country),
                    presence=0.2, multiplicity=2,
                ),
            ),
        ),
        ClassSpec(iri=DBO.Place, weight=0.0),
        ClassSpec(
            iri=DBO.Country,
            weight=0.05,
            parents=(DBO.Place,),
            properties=(
                PropertyTemplate(DBP.name, ST_LITERAL, (XSD.string,)),
            ),
        ),
        ClassSpec(
            iri=DBO.Genre,
            weight=0.08,
            properties=(
                PropertyTemplate(DBP.name, ST_LITERAL, (XSD.string,)),
            ),
        ),
        ClassSpec(
            iri=SCHEMA.ShoppingCenter,
            weight=0.3,
            parents=(DBO.Place,),
            properties=(
                PropertyTemplate(DBP.name, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    DBP.address, MT_HETERO, (XSD.string, XSD.integer),
                    target_classes=(DBO.Settlement,),
                    literal_ratio=0.7, primary_share=0.75,
                    presence=0.9, multiplicity=2, collision_ratio=0.05,
                ),
                PropertyTemplate(
                    DBP.location, MT_HETERO, (XSD.string,),
                    target_classes=(DBO.Settlement, DBO.Country),
                    literal_ratio=0.2, presence=0.8, multiplicity=2,
                    collision_ratio=0.02,
                ),
            ),
        ),
        ClassSpec(
            iri=DBO.Film,
            weight=0.8,
            properties=(
                PropertyTemplate(DBP.title, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    DBO.director, MT_HETERO, (XSD.string,),
                    target_classes=(DBO.Person,), literal_ratio=0.1,
                    presence=0.95, multiplicity=2, collision_ratio=0.01,
                ),
                PropertyTemplate(
                    DBO.starring, MT_HOMO_NL,
                    target_classes=(DBO.Person, DBO.MusicalArtist),
                    presence=0.9, multiplicity=4,
                ),
                PropertyTemplate(
                    DBP.runtime, MT_HOMO_L, (XSD.integer, XSD.string),
                    primary_share=0.9, presence=0.7,
                ),
            ),
        ),
        ClassSpec(
            iri=DBO.Book,
            weight=0.6,
            properties=(
                PropertyTemplate(DBP.title, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    DBP.author, MT_HETERO, (XSD.string,),
                    target_classes=(DBO.Person,), literal_ratio=0.7,
                    presence=0.95, multiplicity=2, lang_tag_ratio=0.01,
                    collision_ratio=0.05,
                ),
                PropertyTemplate(
                    DBO.numberOfPages, ST_LITERAL, (XSD.integer,),
                    presence=0.75,
                ),
            ),
        ),
        ClassSpec(
            iri=DBO.University,
            weight=0.25,
            parents=(DBO.Agent,),
            properties=(
                PropertyTemplate(DBP.name, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    DBO.city, ST_NON_LITERAL,
                    target_classes=(DBO.Settlement,), presence=0.9,
                ),
                PropertyTemplate(
                    DBP.established, MT_HOMO_L, (XSD.gYear, XSD.date, XSD.string),
                    primary_share=0.8, presence=0.85, collision_ratio=0.03,
                ),
            ),
        ),
    ]
    return DatasetSpec(
        name="dbpedia2022",
        entity_namespace=DBR.base,
        classes=classes,
    )


def dbpedia2020_spec() -> DatasetSpec:
    """The DBpedia-2020-style dataset: no MT-homo-literal, no heterogeneous
    property shapes, fewer classes (its Table 3 row)."""
    classes = [
        ClassSpec(iri=DBO.Agent, weight=0.0),
        ClassSpec(
            iri=DBO.Person,
            weight=2.0,
            parents=(DBO.Agent,),
            properties=(
                PropertyTemplate(DBP.name, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(DBO.birthYear, ST_LITERAL, (XSD.gYear,),
                                 presence=0.9),
                PropertyTemplate(
                    DBO.birthPlace, ST_NON_LITERAL,
                    target_classes=(DBO.Settlement,), presence=0.85,
                ),
            ),
        ),
        ClassSpec(
            iri=DBO.Album,
            weight=1.2,
            properties=(
                PropertyTemplate(DBP.title, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    DBO.artist, MT_HOMO_NL,
                    target_classes=(DBO.Person,), presence=0.95,
                    multiplicity=2,
                ),
            ),
        ),
        ClassSpec(
            iri=DBO.Settlement,
            weight=1.0,
            parents=(DBO.Place,),
            properties=(
                PropertyTemplate(DBP.name, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    DBO.populationTotal, ST_LITERAL, (XSD.integer,),
                    presence=0.8,
                ),
                PropertyTemplate(
                    DBO.country, ST_NON_LITERAL,
                    target_classes=(DBO.Country,), presence=0.95,
                ),
            ),
        ),
        ClassSpec(iri=DBO.Place, weight=0.0),
        ClassSpec(
            iri=DBO.Country,
            weight=0.05,
            parents=(DBO.Place,),
            properties=(
                PropertyTemplate(DBP.name, ST_LITERAL, (XSD.string,)),
            ),
        ),
        ClassSpec(
            iri=DBO.Film,
            weight=0.6,
            properties=(
                PropertyTemplate(DBP.title, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    DBO.starring, MT_HOMO_NL,
                    target_classes=(DBO.Person,), presence=0.9,
                    multiplicity=4,
                ),
            ),
        ),
    ]
    return DatasetSpec(
        name="dbpedia2020",
        entity_namespace=DBR.base,
        classes=classes,
    )


def build_dbpedia2022(base_entities: int = 400, seed: int = 42) -> Graph:
    """Generate the DBpedia-2022-like graph."""
    return generate(dbpedia2022_spec(), base_entities=base_entities, seed=seed)


def build_dbpedia2020(base_entities: int = 200, seed: int = 7) -> Graph:
    """Generate the DBpedia-2020-like graph."""
    return generate(dbpedia2020_spec(), base_entities=base_entities, seed=seed)
