"""Evolving-graph snapshots for the monotonicity experiment (Section 5.4).

The paper compares two DBpedia snapshots (March vs December 2022) whose
delta adds ~5.2% and deletes ~1.8% of triples, then shows that applying
only the delta with the non-parsimonious model is ~70% cheaper than a full
re-conversion.  :func:`make_evolution_pair` synthesizes an equivalent pair
from any base graph: the "old" snapshot, the "new" snapshot, and the exact
added/removed triple sets between them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..namespaces import RDF_TYPE
from ..rdf.graph import Graph
from ..rdf.terms import IRI, Literal, Triple
from .common import DatasetSpec, generate


@dataclass
class EvolutionPair:
    """Two graph snapshots plus their delta.

    Invariants: ``new == (old - removed) + added`` and
    ``added ∩ old == ∅``, ``removed ⊆ old``.
    """

    old: Graph
    new: Graph
    added: Graph
    removed: Graph

    def check_invariants(self) -> bool:
        """Verify the snapshot algebra (used by the tests)."""
        reconstructed = (self.old - self.removed) | self.added
        return reconstructed == self.new


def make_evolution_pair(
    base: Graph,
    add_fraction: float = 0.052,
    delete_fraction: float = 0.018,
    seed: int = 99,
) -> EvolutionPair:
    """Derive an (old, new) snapshot pair from ``base``.

    The *new* snapshot is ``base`` itself; the *old* snapshot is obtained
    by removing a random ``add_fraction`` of base triples (those become
    the additions) and adding back ``delete_fraction`` fresh triples
    (those become the deletions) — mirroring how the paper's March
    snapshot relates to its December snapshot.

    Type triples (``rdf:type``) are kept in the old snapshot whenever the
    entity keeps other triples, so the delta is dominated by property
    changes, as in real DBpedia deltas.
    """
    rng = random.Random(seed)
    type_pred = IRI(RDF_TYPE)

    all_triples = sorted(base, key=lambda t: t.n3())
    non_type = [t for t in all_triples if t.p != type_pred]
    n_add = int(len(all_triples) * add_fraction)
    added_list = rng.sample(non_type, min(n_add, len(non_type)))
    added = Graph(added_list)

    old = base - added

    # Synthesize "deleted" triples: extra literal values on existing
    # subjects that exist only in the old snapshot.
    n_delete = int(len(all_triples) * delete_fraction)
    removed = Graph()
    subjects = [t for t in non_type if isinstance(t.o, Literal)]
    for i in range(n_delete):
        template = rng.choice(subjects)
        stale = Triple(
            template.s,
            template.p,
            Literal(f"stale value {i}", template.o.datatype),
        )
        if stale not in base:
            removed.add(stale)
    old.update(removed)

    return EvolutionPair(old=old, new=base.copy(), added=added, removed=removed)


def make_snapshots(
    spec: DatasetSpec,
    base_entities: int = 200,
    seed: int = 42,
    add_fraction: float = 0.052,
    delete_fraction: float = 0.018,
) -> EvolutionPair:
    """Generate a dataset and derive an evolution pair from it."""
    base = generate(spec, base_entities=base_entities, seed=seed)
    return make_evolution_pair(
        base, add_fraction=add_fraction, delete_fraction=delete_fraction,
        seed=seed + 1,
    )
