"""The paper's running example (Figure 2): a small university KG.

Provides the RDF graph of Figure 2a and the SHACL shape schema of
Figure 2b as in-code fixtures, used by the quickstart example and by the
unit tests that check the Figure 2c/2d transformation output.
"""

from __future__ import annotations

from ..rdf.graph import Graph
from ..rdf.turtle import parse_turtle
from ..shacl.model import ShapeSchema
from ..shacl.parser import parse_shacl

#: Figure 2b — SHACL shapes for the university schema.
UNIVERSITY_SHAPES_TTL = """
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://example.org/university#> .
@prefix shapes: <http://example.org/shapes#> .

shapes:Person a sh:NodeShape ;
  sh:property [ sh:path :name ; sh:nodeKind sh:Literal ;
                sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :dob ;
      sh:or ( [ sh:nodeKind sh:Literal ; sh:datatype xsd:string ]
              [ sh:nodeKind sh:Literal ; sh:datatype xsd:date ]
              [ sh:nodeKind sh:Literal ; sh:datatype xsd:gYear ] ) ;
      sh:minCount 0 ] ;
  sh:targetClass :Person .

shapes:Student a sh:NodeShape ;
  sh:property [ sh:path :regNo ; sh:nodeKind sh:Literal ;
                sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :advisedBy ;
      sh:or ( [ sh:nodeKind sh:IRI ; sh:class :Person ]
              [ sh:nodeKind sh:IRI ; sh:class :Professor ]
              [ sh:nodeKind sh:IRI ; sh:class :Faculty ] ) ;
      sh:minCount 0 ] ;
  sh:targetClass :Student ;
  sh:node shapes:Person .

shapes:GraduateStudent a sh:NodeShape ;
  sh:property [ sh:path :takesCourse ;
      sh:or ( [ sh:nodeKind sh:IRI ; sh:class :Course ]
              [ sh:nodeKind sh:Literal ; sh:datatype xsd:string ]
              [ sh:nodeKind sh:IRI ; sh:class :GraduateCourse ] ) ;
      sh:minCount 1 ] ;
  sh:targetClass :GraduateStudent ;
  sh:node shapes:Student .

shapes:Faculty a sh:NodeShape ;
  sh:targetClass :Faculty ;
  sh:node shapes:Person .

shapes:Professor a sh:NodeShape ;
  sh:property [ sh:path :worksFor ; sh:nodeKind sh:IRI ;
                sh:class :Department ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:targetClass :Professor ;
  sh:node shapes:Faculty .

shapes:Department a sh:NodeShape ;
  sh:property [ sh:path :name ; sh:nodeKind sh:Literal ;
                sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :partOf ; sh:nodeKind sh:IRI ;
                sh:class :University ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:targetClass :Department .

shapes:University a sh:NodeShape ;
  sh:property [ sh:path :name ; sh:nodeKind sh:Literal ;
                sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:targetClass :University .

shapes:Course a sh:NodeShape ;
  sh:property [ sh:path :name ; sh:nodeKind sh:Literal ;
                sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:targetClass :Course .

shapes:GraduateCourse a sh:NodeShape ;
  sh:targetClass :GraduateCourse ;
  sh:node shapes:Course .
"""

#: Figure 2a — the instance data (Bob, Alice, the DB course, ...).
UNIVERSITY_DATA_TTL = """
@prefix : <http://example.org/university#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

:bob a :Person, :Student, :GraduateStudent ;
     :name "Bob" ;
     :regNo "Bs12" ;
     :dob "1999"^^xsd:gYear ;
     :advisedBy :alice ;
     :takesCourse :db, "Intro to Logic" .

:alice a :Person, :Faculty, :Professor ;
       :name "Alice" ;
       :dob "1980-02-01"^^xsd:date ;
       :worksFor :cs .

:db a :Course, :GraduateCourse ;
    :name "Advanced Databases" .

:cs a :Department ;
    :name "Computer Science" ;
    :partOf :aau .

:aau a :University ;
     :name "Aalborg University" .
"""


def university_shapes() -> ShapeSchema:
    """Parse the Figure 2b shape schema."""
    return parse_shacl(UNIVERSITY_SHAPES_TTL)


def university_graph() -> Graph:
    """Parse the Figure 2a instance data."""
    return parse_turtle(UNIVERSITY_DATA_TTL)
