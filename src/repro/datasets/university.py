"""The paper's running example (Figure 2): a small university KG.

Provides the RDF graph of Figure 2a and the SHACL shape schema of
Figure 2b as in-code fixtures, used by the quickstart example and by the
unit tests that check the Figure 2c/2d transformation output.  A seeded
scale-parameterised generator (:func:`generate_university`) grows the
same schema to benchmark size, and :func:`university_workload` provides
the star/chain join queries of the planner ablation.
"""

from __future__ import annotations

import random

from ..namespaces import RDF_TYPE, XSD
from ..rdf.graph import Graph
from ..rdf.terms import IRI, Literal, Triple
from ..rdf.turtle import parse_turtle
from ..shacl.model import ShapeSchema
from ..shacl.parser import parse_shacl

#: Figure 2b — SHACL shapes for the university schema.
UNIVERSITY_SHAPES_TTL = """
@prefix sh: <http://www.w3.org/ns/shacl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
@prefix : <http://example.org/university#> .
@prefix shapes: <http://example.org/shapes#> .

shapes:Person a sh:NodeShape ;
  sh:property [ sh:path :name ; sh:nodeKind sh:Literal ;
                sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :dob ;
      sh:or ( [ sh:nodeKind sh:Literal ; sh:datatype xsd:string ]
              [ sh:nodeKind sh:Literal ; sh:datatype xsd:date ]
              [ sh:nodeKind sh:Literal ; sh:datatype xsd:gYear ] ) ;
      sh:minCount 0 ] ;
  sh:targetClass :Person .

shapes:Student a sh:NodeShape ;
  sh:property [ sh:path :regNo ; sh:nodeKind sh:Literal ;
                sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :advisedBy ;
      sh:or ( [ sh:nodeKind sh:IRI ; sh:class :Person ]
              [ sh:nodeKind sh:IRI ; sh:class :Professor ]
              [ sh:nodeKind sh:IRI ; sh:class :Faculty ] ) ;
      sh:minCount 0 ] ;
  sh:targetClass :Student ;
  sh:node shapes:Person .

shapes:GraduateStudent a sh:NodeShape ;
  sh:property [ sh:path :takesCourse ;
      sh:or ( [ sh:nodeKind sh:IRI ; sh:class :Course ]
              [ sh:nodeKind sh:Literal ; sh:datatype xsd:string ]
              [ sh:nodeKind sh:IRI ; sh:class :GraduateCourse ] ) ;
      sh:minCount 1 ] ;
  sh:targetClass :GraduateStudent ;
  sh:node shapes:Student .

shapes:Faculty a sh:NodeShape ;
  sh:targetClass :Faculty ;
  sh:node shapes:Person .

shapes:Professor a sh:NodeShape ;
  sh:property [ sh:path :worksFor ; sh:nodeKind sh:IRI ;
                sh:class :Department ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:targetClass :Professor ;
  sh:node shapes:Faculty .

shapes:Department a sh:NodeShape ;
  sh:property [ sh:path :name ; sh:nodeKind sh:Literal ;
                sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:property [ sh:path :partOf ; sh:nodeKind sh:IRI ;
                sh:class :University ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:targetClass :Department .

shapes:University a sh:NodeShape ;
  sh:property [ sh:path :name ; sh:nodeKind sh:Literal ;
                sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:targetClass :University .

shapes:Course a sh:NodeShape ;
  sh:property [ sh:path :name ; sh:nodeKind sh:Literal ;
                sh:datatype xsd:string ; sh:minCount 1 ; sh:maxCount 1 ] ;
  sh:targetClass :Course .

shapes:GraduateCourse a sh:NodeShape ;
  sh:targetClass :GraduateCourse ;
  sh:node shapes:Course .
"""

#: Figure 2a — the instance data (Bob, Alice, the DB course, ...).
UNIVERSITY_DATA_TTL = """
@prefix : <http://example.org/university#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

:bob a :Person, :Student, :GraduateStudent ;
     :name "Bob" ;
     :regNo "Bs12" ;
     :dob "1999"^^xsd:gYear ;
     :advisedBy :alice ;
     :takesCourse :db, "Intro to Logic" .

:alice a :Person, :Faculty, :Professor ;
       :name "Alice" ;
       :dob "1980-02-01"^^xsd:date ;
       :worksFor :cs .

:db a :Course, :GraduateCourse ;
    :name "Advanced Databases" .

:cs a :Department ;
    :name "Computer Science" ;
    :partOf :aau .

:aau a :University ;
     :name "Aalborg University" .
"""


def university_shapes() -> ShapeSchema:
    """Parse the Figure 2b shape schema."""
    return parse_shacl(UNIVERSITY_SHAPES_TTL)


def university_graph() -> Graph:
    """Parse the Figure 2a instance data."""
    return parse_turtle(UNIVERSITY_DATA_TTL)


# --------------------------------------------------------------------- #
# Scalable generator + query workload (planner benchmarks)
# --------------------------------------------------------------------- #

_UNI = "http://example.org/university#"
_TYPE = IRI(RDF_TYPE)

_FIRST_NAMES = (
    "Ada", "Bob", "Cleo", "Dana", "Edgar", "Fay", "Gus", "Hana",
    "Ivan", "Jun", "Kira", "Liam", "Mona", "Nils", "Olga", "Pia",
)
_TOPICS = (
    "Databases", "Logic", "Graphs", "Compilers", "Networks", "Algebra",
    "Statistics", "Semantics", "Systems", "Geometry",
)


def _iri(local: str) -> IRI:
    return IRI(f"{_UNI}{local}")


def generate_university(scale: float = 1.0, seed: int = 42) -> Graph:
    """A deterministic university KG conforming to the Figure 2b shapes.

    Scales the Figure 2 schema to benchmark size: universities contain
    departments, professors work for departments, students are advised
    by professors, and graduate students take courses.  Every entity is
    fully typed (including inherited classes), so the instance conforms
    to :func:`university_shapes` and transforms without fallbacks.

    Args:
        scale: multiplies every entity count (1.0 ≈ 2.6k triples).
        seed: RNG seed; identical (scale, seed) pairs give identical
            graphs, triple for triple.
    """
    rng = random.Random(seed)
    n_universities = max(1, round(2 * scale))
    n_departments = max(2, round(8 * scale))
    n_professors = max(3, round(40 * scale))
    n_courses = max(3, round(30 * scale))
    n_students = max(10, round(300 * scale))

    graph = Graph()

    def add(s: IRI, p: IRI, o) -> None:
        graph.add(Triple(s, p, o))

    name, dob, reg_no = _iri("name"), _iri("dob"), _iri("regNo")
    advised_by, takes, works_for, part_of = (
        _iri("advisedBy"), _iri("takesCourse"), _iri("worksFor"),
        _iri("partOf"),
    )

    universities = [_iri(f"uni{i}") for i in range(n_universities)]
    for i, uni in enumerate(universities):
        add(uni, _TYPE, _iri("University"))
        add(uni, name, Literal(f"University {i}"))

    departments = [_iri(f"dept{i}") for i in range(n_departments)]
    for i, dept in enumerate(departments):
        add(dept, _TYPE, _iri("Department"))
        add(dept, name, Literal(f"Dept of {_TOPICS[i % len(_TOPICS)]} {i}"))
        add(dept, part_of, rng.choice(universities))

    professors = [_iri(f"prof{i}") for i in range(n_professors)]
    for i, prof in enumerate(professors):
        for cls in ("Person", "Faculty", "Professor"):
            add(prof, _TYPE, _iri(cls))
        add(prof, name, Literal(f"Prof {_FIRST_NAMES[i % len(_FIRST_NAMES)]} {i}"))
        if rng.random() < 0.5:
            add(prof, dob, Literal(str(rng.randrange(1950, 1990)), XSD.gYear))
        add(prof, works_for, rng.choice(departments))

    courses = [_iri(f"course{i}") for i in range(n_courses)]
    for i, course in enumerate(courses):
        add(course, _TYPE, _iri("Course"))
        if i % 3 == 0:
            add(course, _TYPE, _iri("GraduateCourse"))
        add(course, name, Literal(f"{_TOPICS[i % len(_TOPICS)]} {i}"))

    for i in range(n_students):
        student = _iri(f"student{i}")
        graduate = rng.random() < 0.4
        classes = ["Person", "Student"] + (["GraduateStudent"] if graduate else [])
        for cls in classes:
            add(student, _TYPE, _iri(cls))
        add(student, name, Literal(f"{_FIRST_NAMES[i % len(_FIRST_NAMES)]} {i}"))
        add(student, reg_no, Literal(f"S{i:06d}"))
        if rng.random() < 0.3:
            add(student, dob, Literal(str(rng.randrange(1995, 2008)), XSD.gYear))
        if rng.random() < 0.7:
            add(student, advised_by, rng.choice(professors))
        if graduate:
            for course in rng.sample(courses, k=rng.randrange(1, 4)):
                add(student, takes, course)
    return graph


#: (qid, category, SPARQL) — the planner-ablation workload.  The join
#: queries type every variable, the LUBM-style shape on which the naive
#: evaluator's concreteness heuristic ties between a selective join
#: probe and an unselective type rescan; cardinality-based ordering is
#: what avoids the resulting cartesian blowup.  All LIMIT-free so
#: planner-on and planner-off results are comparable as bags.
UNIVERSITY_WORKLOAD: tuple[tuple[str, str, str], ...] = (
    ("U1", "lookup",
     "SELECT ?s ?n WHERE { ?s a :Student ; :name ?n . }"),
    ("U2", "chain",
     "SELECT ?s ?p WHERE { ?s a :Student . ?p a :Professor . "
     "?s :advisedBy ?p . }"),
    ("U3", "chain",
     "SELECT ?s ?d WHERE { ?s a :Student . ?p a :Professor . "
     "?d a :Department . ?s :advisedBy ?p . ?p :worksFor ?d . }"),
    ("U4", "chain",
     "SELECT ?s ?u WHERE { ?s :advisedBy ?p . ?p :worksFor ?d . "
     "?d :partOf ?u . }"),
    ("U5", "star",
     "SELECT ?p ?n ?d WHERE { ?p a :Professor ; :name ?n ; "
     ":worksFor ?d . ?d a :Department . }"),
    ("U6", "star",
     "SELECT ?s ?c ?p WHERE { ?s a :GraduateStudent . ?c a :Course . "
     "?s :takesCourse ?c . ?s :advisedBy ?p . }"),
    ("U7", "star",
     "SELECT (COUNT(*) AS ?n) WHERE { ?s a :Student . ?p a :Professor . "
     "?s :advisedBy ?p . ?p :worksFor ?d . }"),
)


def university_workload() -> list[tuple[str, str, str]]:
    """The planner-ablation workload with the prefix expanded."""
    prolog = f"PREFIX : <{_UNI}>\n"
    return [(qid, category, prolog + text)
            for qid, category, text in UNIVERSITY_WORKLOAD]


#: (qid, category, Cypher) — native Cypher companion workload over the
#: S3PG-transformed university PG (labels carry the ``uni_`` prefix of
#: the transformation).  The paths are deliberately written in orders
#: the naive left-to-right evaluator handles badly — unlabeled seed
#: nodes and disconnected path pairs — which the planner's seed
#: selection, pivoted expansion, and hash joins avoid.
UNIVERSITY_CYPHER_WORKLOAD: tuple[tuple[str, str, str], ...] = (
    ("C1", "chain",
     "MATCH (p)-[:uni_worksFor]->(d:uni_Department) "
     "RETURN p.iri AS p, d.iri AS d"),
    ("C2", "chain",
     "MATCH (s)-[:uni_advisedBy]->(p), (p)-[:uni_worksFor]->(d:uni_Department) "
     "RETURN s.iri AS s, d.iri AS d"),
    ("C3", "star",
     "MATCH (s)-[:uni_takesCourse]->(c:uni_GraduateCourse), "
     "(s)-[:uni_advisedBy]->(p) RETURN s.iri AS s, p.iri AS p"),
    ("C4", "cartesian",
     "MATCH (s:uni_Student)-[:uni_advisedBy]->(p), "
     "(d:uni_Department)-[:uni_partOf]->(u:uni_University) "
     "RETURN p.iri AS p, u.iri AS u"),
)
