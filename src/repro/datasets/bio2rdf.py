"""Bio2RDF Clinical Trials-like synthetic knowledge graph.

A domain-specific KG mirroring the Bio2RDF CT characteristics of Tables
2-3: a modest number of classes (the real dump has 65, we model the core
entities), a property mix dominated by single-type shapes, a healthy share
of multi-type homogeneous non-literal shapes, and only a *few*
heterogeneous shapes (the real dataset has 3).
"""

from __future__ import annotations

from ..namespaces import CT, CTR, XSD
from ..rdf.graph import Graph
from .common import (
    ClassSpec,
    DatasetSpec,
    MT_HETERO,
    MT_HOMO_L,
    MT_HOMO_NL,
    PropertyTemplate,
    ST_LITERAL,
    ST_NON_LITERAL,
    generate,
)


def bio2rdf_spec() -> DatasetSpec:
    """The Bio2RDF-CT-style dataset declaration."""
    classes = [
        ClassSpec(
            iri=CT.ClinicalStudy,
            weight=1.5,
            properties=(
                PropertyTemplate(CT.briefTitle, ST_LITERAL, (XSD.string,),
                                 lang_tag_ratio=0.003),
                PropertyTemplate(CT.nctId, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    CT.enrollment, ST_LITERAL, (XSD.integer,), presence=0.85,
                ),
                PropertyTemplate(
                    CT.startDate, MT_HOMO_L, (XSD.date, XSD.gYear, XSD.string),
                    primary_share=0.92, presence=0.9, collision_ratio=0.01,
                ),
                PropertyTemplate(
                    CT.completionDate, MT_HOMO_L, (XSD.date, XSD.string),
                    primary_share=0.95, presence=0.8,
                ),
                PropertyTemplate(
                    CT.intervention, MT_HOMO_NL,
                    target_classes=(CT.Intervention, CT.DrugIntervention),
                    presence=0.95, multiplicity=3,
                ),
                PropertyTemplate(
                    CT.condition, ST_NON_LITERAL,
                    target_classes=(CT.Condition,), presence=0.95,
                    multiplicity=2,
                ),
                PropertyTemplate(
                    CT.sponsor, MT_HETERO, (XSD.string,),
                    target_classes=(CT.Sponsor,), literal_ratio=0.15,
                    presence=0.9, multiplicity=2,
                ),
                PropertyTemplate(
                    CT.collaborator, MT_HETERO, (XSD.string,),
                    target_classes=(CT.Sponsor,), literal_ratio=0.3,
                    presence=0.4, multiplicity=2, collision_ratio=0.02,
                ),
                PropertyTemplate(
                    CT.outcome, MT_HOMO_NL,
                    target_classes=(CT.PrimaryOutcome, CT.SecondaryOutcome),
                    presence=0.9, multiplicity=3,
                ),
            ),
        ),
        ClassSpec(
            iri=CT.Intervention,
            weight=1.0,
            properties=(
                PropertyTemplate(CT.interventionName, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    CT.interventionType, ST_LITERAL, (XSD.string,), presence=0.95,
                ),
            ),
        ),
        ClassSpec(
            iri=CT.DrugIntervention,
            weight=0.6,
            parents=(CT.Intervention,),
            properties=(
                PropertyTemplate(
                    CT.dosage, MT_HOMO_L, (XSD.string, XSD.integer),
                    primary_share=0.85, presence=0.8,
                ),
            ),
        ),
        ClassSpec(
            iri=CT.Condition,
            weight=0.8,
            properties=(
                PropertyTemplate(CT.conditionName, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    CT.meshTerm, ST_NON_LITERAL,
                    target_classes=(CT.MeshTerm,), presence=0.7, multiplicity=2,
                ),
            ),
        ),
        ClassSpec(
            iri=CT.MeshTerm,
            weight=0.4,
            properties=(
                PropertyTemplate(CT.termLabel, ST_LITERAL, (XSD.string,)),
            ),
        ),
        ClassSpec(
            iri=CT.Sponsor,
            weight=0.3,
            properties=(
                PropertyTemplate(CT.agencyName, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    CT.agencyClass, ST_LITERAL, (XSD.string,), presence=0.9,
                ),
            ),
        ),
        ClassSpec(
            iri=CT.PrimaryOutcome,
            weight=0.9,
            parents=(CT.Outcome,),
            properties=(
                PropertyTemplate(CT.measure, ST_LITERAL, (XSD.string,)),
                PropertyTemplate(
                    CT.timeFrame, MT_HOMO_L, (XSD.string, XSD.integer),
                    primary_share=0.9, presence=0.85,
                ),
            ),
        ),
        ClassSpec(
            iri=CT.SecondaryOutcome,
            weight=0.7,
            parents=(CT.Outcome,),
            properties=(
                PropertyTemplate(CT.measure, ST_LITERAL, (XSD.string,)),
            ),
        ),
        ClassSpec(iri=CT.Outcome, weight=0.0),
        ClassSpec(
            iri=CT.Eligibility,
            weight=1.0,
            properties=(
                PropertyTemplate(
                    CT.minimumAge, ST_LITERAL, (XSD.integer,), presence=0.9,
                ),
                PropertyTemplate(
                    CT.criteria, ST_LITERAL, (XSD.string,), presence=0.95,
                ),
                PropertyTemplate(
                    CT.studyRef, ST_NON_LITERAL,
                    target_classes=(CT.ClinicalStudy,), presence=1.0,
                ),
            ),
        ),
    ]
    return DatasetSpec(
        name="bio2rdf_ct",
        entity_namespace=CTR.base,
        classes=classes,
    )


def build_bio2rdf(base_entities: int = 300, seed: int = 17) -> Graph:
    """Generate the Bio2RDF-CT-like graph."""
    return generate(bio2rdf_spec(), base_entities=base_entities, seed=seed)
