"""Shared machinery for the synthetic knowledge-graph generators.

The paper evaluates on DBpedia (2020/2022) and Bio2RDF Clinical Trials —
hundreds of millions of triples we cannot ship.  The generators in this
package produce *behaviour-equivalent* synthetic KGs: seeded, scale-
parameterised graphs whose property-shape taxonomy mix (Table 3), value
heterogeneity (literal/IRI mixes, datatype collisions, language tags) and
class hierarchies exercise exactly the code paths and loss modes the
evaluation measures.

A dataset is declared as a list of :class:`ClassSpec`, each with
:class:`PropertyTemplate` entries covering the five Figure 3 categories;
:func:`generate` materializes the RDF graph deterministically from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..namespaces import RDF_TYPE, RDFS, XSD, local_name
from ..rdf.graph import Graph
from ..rdf.terms import IRI, Literal, Triple

_TYPE = IRI(RDF_TYPE)
_SUBCLASS = IRI(RDFS.subClassOf)

#: Property categories (matching the Figure 3 taxonomy leaves).
ST_LITERAL = "single-type-literal"
ST_NON_LITERAL = "single-type-non-literal"
MT_HOMO_L = "multi-type-homogeneous-literal"
MT_HOMO_NL = "multi-type-homogeneous-non-literal"
MT_HETERO = "multi-type-heterogeneous"

CATEGORIES = (ST_LITERAL, ST_NON_LITERAL, MT_HOMO_L, MT_HOMO_NL, MT_HETERO)

_WORDS = (
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
    "hotel", "india", "juliet", "kilo", "lima", "mike", "november",
    "oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
    "victor", "whiskey", "xray", "yankee", "zulu",
)


@dataclass(frozen=True)
class PropertyTemplate:
    """How one predicate's values are generated for a class.

    Attributes:
        predicate: the property IRI.
        category: one of the five taxonomy categories above.
        datatypes: literal datatypes drawn from (weighted uniformly; the
            first is the *primary* — the majority datatype).
        primary_share: fraction of literal values using the primary
            datatype (the rest spread over the other datatypes).
        target_classes: classes of IRI-valued targets.
        literal_ratio: fraction of values that are literals (only
            meaningful for MT_HETERO; 1.0 for literal categories, 0.0 for
            non-literal ones).
        presence: fraction of entities carrying the property at all.
        multiplicity: max number of values per entity (each entity gets
            1..multiplicity values, uniformly).
        lang_tag_ratio: fraction of string values carrying a language tag.
        collision_ratio: fraction of non-primary literal values that reuse
            a lexical form also used under the primary datatype (the
            datatype-erasure collision that loses data in NeoSemantics).
    """

    predicate: str
    category: str
    datatypes: tuple[str, ...] = (XSD.string,)
    primary_share: float = 0.85
    target_classes: tuple[str, ...] = ()
    literal_ratio: float = 1.0
    presence: float = 1.0
    multiplicity: int = 1
    lang_tag_ratio: float = 0.0
    collision_ratio: float = 0.0


@dataclass(frozen=True)
class ClassSpec:
    """One class in the synthetic schema.

    Attributes:
        iri: the class IRI.
        weight: relative instance count (multiplied by the scale's base).
        parents: superclass IRIs (instances are typed with all ancestors,
            as DBpedia instances are).
        properties: the property templates of this class.
    """

    iri: str
    weight: float
    parents: tuple[str, ...] = ()
    properties: tuple[PropertyTemplate, ...] = ()


@dataclass
class DatasetSpec:
    """A complete synthetic dataset declaration."""

    name: str
    entity_namespace: str
    classes: list[ClassSpec] = field(default_factory=list)

    def class_spec(self, iri: str) -> ClassSpec:
        """The spec of ``iri``; raises KeyError when absent."""
        for spec in self.classes:
            if spec.iri == iri:
                return spec
        raise KeyError(iri)

    def properties_by_category(self, category: str) -> list[tuple[ClassSpec, PropertyTemplate]]:
        """All (class, property) pairs of a taxonomy category."""
        return [
            (cls, prop)
            for cls in self.classes
            for prop in cls.properties
            if prop.category == category
        ]


def _entity_iri(namespace: str, class_iri: str, index: int) -> str:
    return f"{namespace}{local_name(class_iri)}_{index}"


def _random_words(rng: random.Random, n: int = 2) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(n)).title()


def _literal_for(
    rng: random.Random,
    datatype: str,
    template: PropertyTemplate,
    primary: bool,
) -> Literal:
    """Generate one literal of the given datatype."""
    if datatype == XSD.integer:
        return Literal(str(rng.randrange(1, 1_000_000)), XSD.integer)
    if datatype == XSD.gYear:
        lexical = str(rng.randrange(1900, 2024))
        return Literal(lexical, XSD.gYear)
    if datatype == XSD.date:
        year = rng.randrange(1900, 2024)
        month = rng.randrange(1, 13)
        day = rng.randrange(1, 29)
        return Literal(f"{year:04d}-{month:02d}-{day:02d}", XSD.date)
    if datatype == XSD.double:
        return Literal(f"{rng.uniform(0, 1000):.2f}", XSD.double)
    if datatype == XSD.boolean:
        return Literal(rng.choice(("true", "false")), XSD.boolean)
    # Default: a short string, occasionally language-tagged.
    text = _random_words(rng)
    if (
        datatype == XSD.string
        and template.lang_tag_ratio > 0
        and rng.random() < template.lang_tag_ratio
    ):
        return Literal(text, language=rng.choice(("en", "de", "fr")))
    return Literal(text, datatype)


def _pick_datatype(rng: random.Random, template: PropertyTemplate) -> tuple[str, bool]:
    """Choose a datatype; returns (datatype, is_primary)."""
    if len(template.datatypes) == 1 or rng.random() < template.primary_share:
        return template.datatypes[0], True
    return rng.choice(template.datatypes[1:]), False


def generate(spec: DatasetSpec, base_entities: int = 100, seed: int = 42) -> Graph:
    """Materialize the dataset: a deterministic function of (spec, size, seed).

    Args:
        spec: the dataset declaration.
        base_entities: instances for a class of weight 1.0.
        seed: RNG seed; same seed, same graph.
    """
    rng = random.Random(seed)
    graph = Graph()

    # Class hierarchy triples.
    class_iris = {cls.iri for cls in spec.classes}
    for cls in spec.classes:
        for parent in cls.parents:
            graph.add(Triple(IRI(cls.iri), _SUBCLASS, IRI(parent)))

    # Pass 1: entity counts per class (so IRI targets can be chosen).
    counts = {
        cls.iri: max(1, int(cls.weight * base_entities)) for cls in spec.classes
    }

    ancestors: dict[str, list[str]] = {}

    def collect_ancestors(iri: str) -> list[str]:
        if iri in ancestors:
            return ancestors[iri]
        result: list[str] = []
        for cls in spec.classes:
            if cls.iri == iri:
                for parent in cls.parents:
                    if parent in class_iris:
                        result.append(parent)
                        result.extend(collect_ancestors(parent))
        ancestors[iri] = list(dict.fromkeys(result))
        return ancestors[iri]

    spec_by_iri = {cls.iri: cls for cls in spec.classes}

    def effective_templates(cls: ClassSpec) -> list[PropertyTemplate]:
        """The class's templates plus inherited ones (child wins per
        predicate) — subclass instances carry their ancestors' properties,
        as DBpedia MusicalArtists carry Person's name/birthDate."""
        templates: dict[str, PropertyTemplate] = {
            t.predicate: t for t in cls.properties
        }
        for ancestor in collect_ancestors(cls.iri):
            ancestor_spec = spec_by_iri.get(ancestor)
            if ancestor_spec is None:
                continue
            for template in ancestor_spec.properties:
                templates.setdefault(template.predicate, template)
        return list(templates.values())

    # Pass 2: entities with types and property values.
    for cls in spec.classes:
        n = counts[cls.iri]
        templates = effective_templates(cls)
        for index in range(n):
            entity = IRI(_entity_iri(spec.entity_namespace, cls.iri, index))
            graph.add(Triple(entity, _TYPE, IRI(cls.iri)))
            for ancestor in collect_ancestors(cls.iri):
                graph.add(Triple(entity, _TYPE, IRI(ancestor)))
            for template in templates:
                if rng.random() >= template.presence:
                    continue
                n_values = rng.randrange(1, template.multiplicity + 1)
                values = []
                for _ in range(n_values):
                    value = _generate_value(rng, spec, template, counts)
                    if value is not None:
                        values.append(value)
                # Intra-entity datatype collision: re-emit a primary-typed
                # lexical under a secondary datatype on the same entity
                # (lost by datatype-erasing transformations, kept by S3PG).
                if (
                    template.collision_ratio > 0
                    and rng.random() < template.collision_ratio
                ):
                    primary_literals = [
                        v
                        for v in values
                        if isinstance(v, Literal)
                        and v.datatype == template.datatypes[0]
                        and v.language is None
                    ]
                    if primary_literals:
                        source = rng.choice(primary_literals)
                        if len(template.datatypes) > 1:
                            other_dt = rng.choice(template.datatypes[1:])
                            values.append(Literal(source.lexical, other_dt))
                        else:
                            # Same lexical, language-tagged: distinct RDF
                            # literals that collide after tag stripping.
                            values.append(Literal(source.lexical, language="en"))
                for value in values:
                    graph.add(Triple(entity, IRI(template.predicate), value))
    return graph


def _generate_value(
    rng: random.Random,
    spec: DatasetSpec,
    template: PropertyTemplate,
    counts: dict[str, int],
):
    make_literal = rng.random() < template.literal_ratio
    if template.category in (ST_NON_LITERAL, MT_HOMO_NL):
        make_literal = False
    elif template.category in (ST_LITERAL, MT_HOMO_L):
        make_literal = True

    if not make_literal:
        if not template.target_classes:
            return None
        target_class = rng.choice(template.target_classes)
        target_count = counts.get(target_class)
        if not target_count:
            return None
        target_index = rng.randrange(target_count)
        return IRI(_entity_iri(spec.entity_namespace, target_class, target_index))

    datatype, primary = _pick_datatype(rng, template)
    return _literal_for(rng, datatype, template, primary)
