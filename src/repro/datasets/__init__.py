"""Synthetic datasets: the Figure 2 fixture, DBpedia- and Bio2RDF-like
generators, evolution snapshots, and the benchmark query workloads."""

from .bio2rdf import bio2rdf_spec, build_bio2rdf
from .common import (
    CATEGORIES,
    ClassSpec,
    DatasetSpec,
    MT_HETERO,
    MT_HOMO_L,
    MT_HOMO_NL,
    PropertyTemplate,
    ST_LITERAL,
    ST_NON_LITERAL,
    generate,
)
from .dbpedia import (
    build_dbpedia2020,
    build_dbpedia2022,
    dbpedia2020_spec,
    dbpedia2022_spec,
)
from .evolution import EvolutionPair, make_evolution_pair, make_snapshots
from .university import (
    UNIVERSITY_DATA_TTL,
    UNIVERSITY_SHAPES_TTL,
    university_graph,
    university_shapes,
)
from .workloads import (
    WorkloadQuery,
    bio2rdf_workload,
    build_workload,
    dbpedia_workload,
)

__all__ = [
    "CATEGORIES",
    "ClassSpec",
    "DatasetSpec",
    "EvolutionPair",
    "MT_HETERO",
    "MT_HOMO_L",
    "MT_HOMO_NL",
    "PropertyTemplate",
    "ST_LITERAL",
    "ST_NON_LITERAL",
    "UNIVERSITY_DATA_TTL",
    "UNIVERSITY_SHAPES_TTL",
    "WorkloadQuery",
    "bio2rdf_spec",
    "bio2rdf_workload",
    "build_bio2rdf",
    "build_dbpedia2020",
    "build_dbpedia2022",
    "build_workload",
    "dbpedia2020_spec",
    "dbpedia2022_spec",
    "dbpedia_workload",
    "generate",
    "make_evolution_pair",
    "make_snapshots",
    "university_graph",
    "university_shapes",
]
