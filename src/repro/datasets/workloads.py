"""Benchmark query workloads (Tables 6-7, Figure 6).

The paper's accuracy/runtime queries follow one canonical shape — the
published Q22::

    SELECT ?e ?p WHERE { ?e a schema:ShoppingCenter ; dbp:address ?p . }

This module derives such (class, predicate) queries from a synthetic
dataset spec, one group per taxonomy category: single-type (ST),
multi-type homogeneous literal (MT-Homo L), multi-type homogeneous
non-literal (MT-Homo NL), and multi-type heterogeneous (MT-Hetero L+NL).
Heterogeneous pairs are additionally queried through ancestor classes
(e.g. ``dbp:genre`` via ``dbo:Person``), which is how the paper reaches 15
heterogeneous queries over a handful of properties with per-query
accuracy differences.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import (
    CATEGORIES,
    ClassSpec,
    DatasetSpec,
    MT_HETERO,
    MT_HOMO_L,
    MT_HOMO_NL,
    PropertyTemplate,
    ST_LITERAL,
    ST_NON_LITERAL,
)


@dataclass(frozen=True)
class WorkloadQuery:
    """One benchmark query.

    Attributes:
        qid: the query identifier (``Q1`` ...).
        category: taxonomy category of the queried property.
        class_iri: the queried class (``?e a <class_iri>``).
        predicate: the queried property.
        sparql: the ground-truth SPARQL text.
    """

    qid: str
    category: str
    class_iri: str
    predicate: str
    sparql: str


def _sparql_for(class_iri: str, predicate: str) -> str:
    return (
        f"SELECT ?e ?p WHERE {{ ?e a <{class_iri}> ; <{predicate}> ?p . }}"
    )


def _ancestor_chain(spec: DatasetSpec, class_iri: str) -> list[str]:
    chain: list[str] = []
    current = class_iri
    seen = {class_iri}
    while True:
        try:
            cls = spec.class_spec(current)
        except KeyError:
            break
        advanced = False
        for parent in cls.parents:
            if parent not in seen:
                chain.append(parent)
                seen.add(parent)
                current = parent
                advanced = True
                break
        if not advanced:
            break
    return chain


def _category_pairs(
    spec: DatasetSpec, category: str, include_ancestors: bool
) -> list[tuple[str, str]]:
    pairs: list[tuple[str, str]] = []
    for cls, prop in spec.properties_by_category(category):
        pairs.append((cls.iri, prop.predicate))
        if include_ancestors:
            for ancestor in _ancestor_chain(spec, cls.iri):
                pairs.append((ancestor, prop.predicate))
    return pairs


def build_workload(
    spec: DatasetSpec,
    n_single: int = 5,
    n_mt_homo_l: int = 5,
    n_mt_homo_nl: int = 5,
    n_hetero: int = 15,
) -> list[WorkloadQuery]:
    """Build the four query groups for a dataset spec.

    Group sizes are capped by the number of distinct (class, predicate)
    pairs the spec offers, so no query is a duplicate of another.
    """
    queries: list[WorkloadQuery] = []
    qid = 1

    def add_group(category: str, pairs: list[tuple[str, str]], limit: int) -> None:
        nonlocal qid
        for class_iri, predicate in pairs[:limit]:
            queries.append(
                WorkloadQuery(
                    qid=f"Q{qid}",
                    category=category,
                    class_iri=class_iri,
                    predicate=predicate,
                    sparql=_sparql_for(class_iri, predicate),
                )
            )
            qid += 1

    # Interleave literal and non-literal single-type pairs so both kinds
    # are represented in the group.
    literal_pairs = _category_pairs(spec, ST_LITERAL, include_ancestors=False)
    non_literal_pairs = _category_pairs(spec, ST_NON_LITERAL, include_ancestors=False)
    single_pairs = []
    for index in range(max(len(literal_pairs), len(non_literal_pairs))):
        if index < len(literal_pairs):
            single_pairs.append(literal_pairs[index])
        if index < len(non_literal_pairs):
            single_pairs.append(non_literal_pairs[index])
    add_group("Single Type", single_pairs, n_single)
    add_group(
        "MT-Homo (L)",
        _category_pairs(spec, MT_HOMO_L, include_ancestors=False),
        n_mt_homo_l,
    )
    add_group(
        "MT-Homo (NL)",
        _category_pairs(spec, MT_HOMO_NL, include_ancestors=False),
        n_mt_homo_nl,
    )
    add_group(
        "MT-Hetero (L+NL)",
        _category_pairs(spec, MT_HETERO, include_ancestors=True),
        n_hetero,
    )
    return queries


def dbpedia_workload(spec: DatasetSpec) -> list[WorkloadQuery]:
    """The 30-query DBpedia-style workload (Table 6 layout)."""
    return build_workload(spec, 5, 5, 5, 15)


def bio2rdf_workload(spec: DatasetSpec) -> list[WorkloadQuery]:
    """The 12-query Bio2RDF-style workload (Table 7 layout)."""
    return build_workload(spec, 3, 3, 3, 3)
