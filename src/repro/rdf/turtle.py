"""A Turtle parser and serializer for the subset used by SHACL documents.

Supported syntax: ``@prefix``/``PREFIX`` directives, ``@base``, prefixed
names, IRIs, the ``a`` keyword, string literals (single/triple quoted) with
language tags and datatypes, numeric and boolean shorthand, labelled and
anonymous blank nodes (``[ ... ]``), RDF collections (``( ... )``), and the
``;`` / ``,`` predicate-object shorthand.  This covers every construct in
the paper's Figure 4 shapes and all shapes emitted by our extractor.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from ..errors import ParseError
from ..namespaces import RDF, XSD
from .graph import Graph
from .namespace import PrefixMap
from .terms import IRI, BlankNode, Literal, Object, Subject, Triple

_RDF_FIRST = IRI(RDF.first)
_RDF_REST = IRI(RDF.rest)
_RDF_NIL = IRI(RDF.nil)
_RDF_TYPE = IRI(RDF.type)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>"{}|^`\\\s]*>)
  | (?P<triple_string>\"\"\"(?:[^"\\]|\\.|\"(?!\"\"))*\"\"\")
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<prefix_directive>@prefix\b|@base\b|PREFIX\b|BASE\b)
  | (?P<langtag>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<dtype_marker>\^\^)
  | (?P<double>[-+]?(?:\d+\.\d*|\.\d+|\d+)[eE][-+]?\d+)
  | (?P<decimal>[-+]?\d*\.\d+)
  | (?P<integer>[-+]?\d+)
  | (?P<boolean>\btrue\b|\bfalse\b)
  | (?P<a_kw>\ba\b)
  | (?P<bnode>_:[A-Za-z0-9_][A-Za-z0-9_.-]*)
  | (?P<pname>[A-Za-z_][\w.-]*)?:(?:[A-Za-z0-9_%][\w.%-]*)?
  | (?P<punct>[;,.\[\]()])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.text!r}, line={self.line})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", line=line)
        line += text[pos:match.end()].count("\n")
        kind = match.lastgroup
        token_text = match.group()
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        if kind is None:
            # The pname alternative has no group name when only the bare
            # colon form matches; normalize it.
            kind = "pname"
        tokens.append(_Token(kind, token_text, line))
    tokens.append(_Token("eof", "", line))
    return tokens


class TurtleParser:
    """Recursive-descent parser producing a :class:`Graph`.

    Args:
        prefixes: initial prefix bindings (the document's own ``@prefix``
            directives extend/override these).
    """

    def __init__(self, prefixes: PrefixMap | None = None):
        self.prefixes = prefixes or PrefixMap.with_defaults()
        self.base = ""
        self._tokens: list[_Token] = []
        self._index = 0
        self._graph = Graph()
        self._bnode_counter = 0

    # ------------------------------------------------------------------ #

    def parse(self, text: str) -> Graph:
        """Parse a Turtle document and return the resulting graph."""
        self._tokens = _tokenize(text)
        self._index = 0
        self._graph = Graph()
        while not self._at("eof"):
            if self._at("prefix_directive"):
                self._parse_directive()
            else:
                self._parse_statement()
        return self._graph

    # ------------------------------------------------------------------ #

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _at(self, kind: str) -> bool:
        return self._peek().kind == kind

    def _at_punct(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "punct" and token.text == text

    def _expect_punct(self, text: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != text:
            raise ParseError(f"expected {text!r}, found {token.text!r}", line=token.line)

    def _fresh_bnode(self) -> BlankNode:
        self._bnode_counter += 1
        return BlankNode(f"ttl{self._bnode_counter}")

    # ------------------------------------------------------------------ #

    def _parse_directive(self) -> None:
        directive = self._next()
        keyword = directive.text.lower().lstrip("@")
        if keyword == "prefix":
            pname = self._next()
            if pname.kind != "pname":
                raise ParseError("expected prefix name after @prefix", line=pname.line)
            prefix = pname.text[:-1] if pname.text.endswith(":") else pname.text.split(":")[0]
            iri_tok = self._next()
            if iri_tok.kind != "iri":
                raise ParseError("expected IRI after prefix name", line=iri_tok.line)
            self.prefixes.bind(prefix, iri_tok.text[1:-1])
        elif keyword == "base":
            iri_tok = self._next()
            if iri_tok.kind != "iri":
                raise ParseError("expected IRI after @base", line=iri_tok.line)
            self.base = iri_tok.text[1:-1]
        else:  # pragma: no cover - regex only matches prefix/base
            raise ParseError(f"unknown directive {directive.text!r}", line=directive.line)
        if directive.text.startswith("@"):
            self._expect_punct(".")
        elif self._at_punct("."):
            self._next()

    def _parse_statement(self) -> None:
        subject = self._parse_subject()
        self._parse_predicate_object_list(subject)
        self._expect_punct(".")

    def _parse_subject(self) -> Subject:
        token = self._peek()
        if token.kind == "iri":
            return self._parse_iri()
        if token.kind == "pname":
            return self._parse_pname()
        if token.kind == "bnode":
            self._next()
            return BlankNode(token.text[2:])
        if token.kind == "punct" and token.text == "[":
            return self._parse_bnode_property_list()
        if token.kind == "punct" and token.text == "(":
            return self._parse_collection()
        raise ParseError(f"invalid subject {token.text!r}", line=token.line)

    def _parse_iri(self) -> IRI:
        token = self._next()
        value = token.text[1:-1]
        if self.base and not re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", value):
            value = self.base + value
        return IRI(value)

    def _parse_pname(self) -> IRI:
        token = self._next()
        try:
            return IRI(self.prefixes.expand(token.text))
        except ParseError as exc:
            raise ParseError(str(exc), line=token.line) from exc

    def _parse_predicate(self) -> IRI:
        token = self._peek()
        if token.kind == "a_kw":
            self._next()
            return _RDF_TYPE
        if token.kind == "iri":
            return self._parse_iri()
        if token.kind == "pname":
            return self._parse_pname()
        raise ParseError(f"invalid predicate {token.text!r}", line=token.line)

    def _parse_predicate_object_list(self, subject: Subject) -> None:
        while True:
            predicate = self._parse_predicate()
            while True:
                obj = self._parse_object()
                self._graph.add(Triple(subject, predicate, obj))
                if self._at_punct(","):
                    self._next()
                    continue
                break
            if self._at_punct(";"):
                self._next()
                # A ';' may be trailing (immediately followed by '.' or ']').
                if self._at_punct(".") or self._at_punct("]") or self._at_punct(";"):
                    while self._at_punct(";"):
                        self._next()
                    return
                continue
            return

    def _parse_object(self) -> Object:
        token = self._peek()
        if token.kind == "iri":
            return self._parse_iri()
        if token.kind == "pname":
            return self._parse_pname()
        if token.kind == "bnode":
            self._next()
            return BlankNode(token.text[2:])
        if token.kind in ("string", "triple_string"):
            return self._parse_literal()
        if token.kind == "integer":
            self._next()
            return Literal(token.text, XSD.integer)
        if token.kind == "decimal":
            self._next()
            return Literal(token.text, XSD.decimal)
        if token.kind == "double":
            self._next()
            return Literal(token.text, XSD.double)
        if token.kind == "boolean":
            self._next()
            return Literal(token.text, XSD.boolean)
        if token.kind == "punct" and token.text == "[":
            return self._parse_bnode_property_list()
        if token.kind == "punct" and token.text == "(":
            return self._parse_collection()
        raise ParseError(f"invalid object {token.text!r}", line=token.line)

    def _parse_literal(self) -> Literal:
        token = self._next()
        if token.kind == "triple_string":
            raw = token.text[3:-3]
        else:
            raw = token.text[1:-1]
        lexical = _unescape_string(raw, token.line)
        nxt = self._peek()
        if nxt.kind == "langtag":
            self._next()
            return Literal(lexical, language=nxt.text[1:])
        if nxt.kind == "dtype_marker":
            self._next()
            dtype_token = self._peek()
            if dtype_token.kind == "iri":
                datatype = self._parse_iri()
            elif dtype_token.kind == "pname":
                datatype = self._parse_pname()
            else:
                raise ParseError("expected datatype IRI after ^^", line=dtype_token.line)
            return Literal(lexical, datatype.value)
        return Literal(lexical)

    def _parse_bnode_property_list(self) -> BlankNode:
        self._expect_punct("[")
        node = self._fresh_bnode()
        if not self._at_punct("]"):
            self._parse_predicate_object_list(node)
        self._expect_punct("]")
        return node

    def _parse_collection(self) -> Object:
        self._expect_punct("(")
        items: list[Object] = []
        while not self._at_punct(")"):
            items.append(self._parse_object())
        self._expect_punct(")")
        if not items:
            return _RDF_NIL
        head = self._fresh_bnode()
        current = head
        for index, item in enumerate(items):
            self._graph.add(Triple(current, _RDF_FIRST, item))
            if index + 1 < len(items):
                nxt = self._fresh_bnode()
                self._graph.add(Triple(current, _RDF_REST, nxt))
                current = nxt
            else:
                self._graph.add(Triple(current, _RDF_REST, _RDF_NIL))
        return head


def _unescape_string(raw: str, line: int) -> str:
    if "\\" not in raw:
        return raw
    out: list[str] = []
    i = 0
    escapes = {"t": "\t", "n": "\n", "r": "\r", '"': '"', "\\": "\\", "'": "'",
               "b": "\b", "f": "\f"}
    while i < len(raw):
        ch = raw[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(raw):
            raise ParseError("dangling escape in string", line=line)
        esc = raw[i + 1]
        if esc in escapes:
            out.append(escapes[esc])
            i += 2
        elif esc in "uU":
            width = 4 if esc == "u" else 8
            hexdigits = raw[i + 2:i + 2 + width]
            if len(hexdigits) != width:
                raise ParseError("truncated unicode escape", line=line)
            out.append(chr(int(hexdigits, 16)))
            i += 2 + width
        else:
            raise ParseError(f"invalid escape \\{esc}", line=line)
    return "".join(out)


def parse_turtle(text: str, prefixes: PrefixMap | None = None) -> Graph:
    """Parse a Turtle document into a :class:`Graph`."""
    from .. import obs

    with obs.span("rdf.parse_turtle") as span:
        graph = TurtleParser(prefixes).parse(text)
        span.set("triples", len(graph))
    obs.get_metrics().counter(
        "repro_parse_triples_total", help="RDF triples parsed"
    ).inc(len(graph), format="turtle")
    return graph


def rdf_list_items(graph: Graph, head: Object) -> list[Object]:
    """Materialize an RDF collection starting at ``head`` into a list."""
    items: list[Object] = []
    seen: set[Object] = set()
    current = head
    while current != _RDF_NIL:
        if not isinstance(current, (IRI, BlankNode)) or current in seen:
            raise ParseError("malformed RDF collection")
        seen.add(current)
        first = graph.value(current, _RDF_FIRST)
        if first is None:
            raise ParseError("RDF collection node missing rdf:first")
        items.append(first)
        rest = graph.value(current, _RDF_REST)
        if rest is None:
            raise ParseError("RDF collection node missing rdf:rest")
        current = rest
    return items


def serialize_turtle(
    graph: Graph | Iterable[Triple],
    prefixes: PrefixMap | None = None,
) -> str:
    """Serialize triples as Turtle, grouping by subject with ';' shorthand.

    Blank-node structures are emitted with explicit ``_:`` labels (not
    nested ``[ ]``), which is always valid Turtle and round-trips exactly.
    """
    pm = prefixes or PrefixMap.with_defaults()
    triples = list(graph)
    used_prefixes: set[str] = set()

    def term_text(term: object) -> str:
        if isinstance(term, IRI):
            compacted = pm.compact(term.value)
            if compacted != term.value:
                used_prefixes.add(compacted.split(":", 1)[0])
                return compacted
            return f"<{term.value}>"
        if isinstance(term, BlankNode):
            return f"_:{term.label}"
        if isinstance(term, Literal):
            if term.language is None and term.datatype not in (XSD.string,):
                compacted = pm.compact(term.datatype)
                if compacted != term.datatype:
                    used_prefixes.add(compacted.split(":", 1)[0])
                    body = term.n3().rsplit("^^", 1)[0]
                    return f"{body}^^{compacted}"
            return term.n3()
        raise TypeError(f"not an RDF term: {term!r}")

    by_subject: dict[str, list[tuple[str, str]]] = {}
    subject_order: list[str] = []
    for t in sorted(triples, key=lambda t: (t.s.n3(), t.p.n3(), t.o.n3())):
        s_text = term_text(t.s)
        if s_text not in by_subject:
            by_subject[s_text] = []
            subject_order.append(s_text)
        by_subject[s_text].append((term_text(t.p), term_text(t.o)))

    body_lines: list[str] = []
    for s_text in subject_order:
        pairs = by_subject[s_text]
        by_pred: dict[str, list[str]] = {}
        pred_order: list[str] = []
        for p_text, o_text in pairs:
            if p_text not in by_pred:
                by_pred[p_text] = []
                pred_order.append(p_text)
            by_pred[p_text].append(o_text)
        parts = []
        for p_text in pred_order:
            display_p = "a" if p_text == "rdf:type" else p_text
            parts.append(f"{display_p} {', '.join(by_pred[p_text])}")
        body_lines.append(f"{s_text} " + " ;\n    ".join(parts) + " .")

    header_lines = [
        f"@prefix {prefix}: <{pm.namespaces()[prefix]}> ."
        for prefix in sorted(used_prefixes | ({"rdf"} if any("a " in line or " a " in line for line in body_lines) else set()))
        if prefix in pm.namespaces()
    ]
    sections = []
    if header_lines:
        sections.append("\n".join(header_lines))
    sections.append("\n\n".join(body_lines))
    return "\n\n".join(sections) + "\n"
